#!/usr/bin/env python
"""Byte-compare two runner ``--json`` reports modulo execution-side keys.

The determinism contract says serial, parallel, batched, cached, sharded —
and pure- vs compiled-tier — execution produce *the same report*.  The only
permitted differences are the execution-side top-level blocks: ``cache``
(this process's hit/miss/store traffic, present only under ``--cache``) and
``kernel`` (the executing kernel tier + compiler tag), both of which
describe how the campaign ran rather than what it computed.  This tool
strips exactly those blocks from both documents, canonicalises them (sorted
keys, tight separators — the same encoding the spec layer hashes), and
compares the resulting bytes.  When the two reports ran on different kernel
tiers a note is printed (comparison proceeds normally — cross-tier identity
is the point of the contract).

Exit status 0 means identical; 1 means divergent, with the differing
top-level experiments named so a CI log points straight at the culprit.

Usage::

    PYTHONPATH=src python tools/compare_reports.py serial.json sharded.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

#: Top-level report keys describing *how* the campaign ran rather than what
#: it computed; everything else must match byte for byte.  ``cache`` is the
#: per-process hit/miss summary of ``--cache`` runs; ``kernel`` records the
#: executing kernel tier (+ compiler tag), which legitimately differs when
#: the same campaign is run on the pure and the compiled tier; ``memos`` is
#: the artifact-memo hit/miss tally, which legitimately differs between
#: cold (serial/parallel) and warm (batched/multiplexed) execution.
EXECUTION_KEYS = ("cache", "kernel", "memos")


def cross_tier_note(reference: Dict[str, Any],
                    candidate: Dict[str, Any]) -> Optional[str]:
    """A warning line when the two reports ran on different kernel tiers.

    Cross-tier comparison is exactly what the byte-identity contract is
    *for*, so this never fails the comparison — but a CI log should say so
    explicitly, because an unexpected tier (e.g. a compiled-tier artifact in
    a pure-tier lane) usually means the environment, not the code, changed.
    """
    ref_kernel = reference.get("kernel")
    cand_kernel = candidate.get("kernel")
    if not isinstance(ref_kernel, dict) or not isinstance(cand_kernel, dict):
        return None
    ref_tier = ref_kernel.get("tier")
    cand_tier = cand_kernel.get("tier")
    if ref_tier == cand_tier:
        return None
    return (f"note: cross-tier comparison (reference ran on "
            f"{ref_tier!r}, candidate on {cand_tier!r}); kernel blocks are "
            "execution-side and excluded from the byte comparison")


def normalize(document: Dict[str, Any]) -> str:
    """The canonical byte form of a report, execution-side keys removed."""
    trimmed = {key: value for key, value in document.items()
               if key not in EXECUTION_KEYS}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


def _load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: top level must be an object, "
                         f"got {type(document).__name__}")
    return document


def divergences(reference: Dict[str, Any],
                candidate: Dict[str, Any]) -> List[str]:
    """Human-readable description of where two trimmed reports differ."""
    problems: List[str] = []
    ref_experiments = reference.get("experiments")
    cand_experiments = candidate.get("experiments")
    if isinstance(ref_experiments, dict) and isinstance(cand_experiments, dict):
        only_ref = sorted(set(ref_experiments) - set(cand_experiments))
        only_cand = sorted(set(cand_experiments) - set(ref_experiments))
        if only_ref:
            problems.append(f"experiments only in reference: {only_ref}")
        if only_cand:
            problems.append(f"experiments only in candidate: {only_cand}")
        for name in sorted(set(ref_experiments) & set(cand_experiments)):
            a = json.dumps(ref_experiments[name], sort_keys=True)
            b = json.dumps(cand_experiments[name], sort_keys=True)
            if a != b:
                problems.append(f"experiment {name!r} differs")
    for key in sorted(set(reference) | set(candidate)):
        if key in EXECUTION_KEYS or key == "experiments":
            continue
        if reference.get(key) != candidate.get(key):
            problems.append(
                f"top-level {key!r} differs: {reference.get(key)!r} "
                f"vs {candidate.get(key)!r}")
    return problems or ["documents differ (no per-experiment attribution)"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reference", help="the report to compare against "
                                          "(e.g. the serial run)")
    parser.add_argument("candidate", help="the report under test "
                                          "(e.g. the sharded run)")
    args = parser.parse_args(argv)
    reference = _load(args.reference)
    candidate = _load(args.candidate)
    note = cross_tier_note(reference, candidate)
    if note is not None:
        print(note, file=sys.stderr)
    ref_bytes = normalize(reference)
    cand_bytes = normalize(candidate)
    if ref_bytes == cand_bytes:
        print(f"identical: {args.reference} == {args.candidate} "
              f"({len(ref_bytes)} canonical bytes, "
              f"{'/'.join(EXECUTION_KEYS)} excluded)")
        return 0
    print(f"DIVERGENT: {args.reference} != {args.candidate}",
          file=sys.stderr)
    for problem in divergences(reference, candidate):
        print(f"  {problem}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())

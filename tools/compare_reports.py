#!/usr/bin/env python
"""Byte-compare two runner ``--json`` reports modulo execution-side keys.

The determinism contract says serial, parallel, batched, cached and sharded
execution produce *the same report*.  The one permitted difference is the
top-level ``cache`` block: it summarises this process's hit/miss/store
traffic (and is only present at all when the run used ``--cache``), so it
legitimately differs between a cold serial run and a sharded run over a
shared store.  This tool strips exactly that block from both documents,
canonicalises them (sorted keys, tight separators — the same encoding the
spec layer hashes), and compares the resulting bytes.

Exit status 0 means identical; 1 means divergent, with the differing
top-level experiments named so a CI log points straight at the culprit.

Usage::

    PYTHONPATH=src python tools/compare_reports.py serial.json sharded.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

#: Top-level report keys describing *how* the campaign ran rather than what
#: it computed; everything else must match byte for byte.
EXECUTION_KEYS = ("cache",)


def normalize(document: Dict[str, Any]) -> str:
    """The canonical byte form of a report, execution-side keys removed."""
    trimmed = {key: value for key, value in document.items()
               if key not in EXECUTION_KEYS}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


def _load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: top level must be an object, "
                         f"got {type(document).__name__}")
    return document


def divergences(reference: Dict[str, Any],
                candidate: Dict[str, Any]) -> List[str]:
    """Human-readable description of where two trimmed reports differ."""
    problems: List[str] = []
    ref_experiments = reference.get("experiments")
    cand_experiments = candidate.get("experiments")
    if isinstance(ref_experiments, dict) and isinstance(cand_experiments, dict):
        only_ref = sorted(set(ref_experiments) - set(cand_experiments))
        only_cand = sorted(set(cand_experiments) - set(ref_experiments))
        if only_ref:
            problems.append(f"experiments only in reference: {only_ref}")
        if only_cand:
            problems.append(f"experiments only in candidate: {only_cand}")
        for name in sorted(set(ref_experiments) & set(cand_experiments)):
            a = json.dumps(ref_experiments[name], sort_keys=True)
            b = json.dumps(cand_experiments[name], sort_keys=True)
            if a != b:
                problems.append(f"experiment {name!r} differs")
    for key in sorted(set(reference) | set(candidate)):
        if key in EXECUTION_KEYS or key == "experiments":
            continue
        if reference.get(key) != candidate.get(key):
            problems.append(
                f"top-level {key!r} differs: {reference.get(key)!r} "
                f"vs {candidate.get(key)!r}")
    return problems or ["documents differ (no per-experiment attribution)"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reference", help="the report to compare against "
                                          "(e.g. the serial run)")
    parser.add_argument("candidate", help="the report under test "
                                          "(e.g. the sharded run)")
    args = parser.parse_args(argv)
    reference = _load(args.reference)
    candidate = _load(args.candidate)
    ref_bytes = normalize(reference)
    cand_bytes = normalize(candidate)
    if ref_bytes == cand_bytes:
        print(f"identical: {args.reference} == {args.candidate} "
              f"({len(ref_bytes)} canonical bytes, "
              f"{'/'.join(EXECUTION_KEYS)} excluded)")
        return 0
    print(f"DIVERGENT: {args.reference} != {args.candidate}",
          file=sys.stderr)
    for problem in divergences(reference, candidate):
        print(f"  {problem}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())

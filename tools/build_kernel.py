#!/usr/bin/env python3
"""Build the optional compiled kernel tier (``repro._ckernel``) in place.

The extension is a single hand-written C file (``src/repro/_ckernelmodule.c``)
with no dependencies beyond a C compiler and the CPython headers.  Building
it is the opt-in act for the compiled tier: once the ``.so`` sits next to the
package, ``REPRO_KERNEL=auto`` (the default) picks it up; removing the
``.so`` (``--clean``) restores the pure tier.  Nothing in the repository
requires this script to succeed — every code path falls back to pure Python.

Usage::

    python tools/build_kernel.py            # compile in place
    python tools/build_kernel.py --clean    # remove built artifacts
    python tools/build_kernel.py --verify   # build, then import + report

Equivalent to ``python setup.py build_ext --inplace``, but with a clearer
failure story (exit code 2 and a one-line reason when no compiler is
available) so CI and humans can tell "broken build" from "no toolchain".
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE = os.path.join(REPO_ROOT, "src", "repro", "_ckernelmodule.c")


def _artifacts() -> list:
    pattern = os.path.join(REPO_ROOT, "src", "repro", "_ckernel*.so")
    return sorted(glob.glob(pattern))


def clean() -> int:
    removed = 0
    for path in _artifacts():
        os.remove(path)
        print(f"removed {os.path.relpath(path, REPO_ROOT)}")
        removed += 1
    build_dir = os.path.join(REPO_ROOT, "build")
    if os.path.isdir(build_dir):
        import shutil

        shutil.rmtree(build_dir)
        print("removed build/")
    if not removed:
        print("nothing to clean")
    return 0


def build() -> int:
    if not os.path.exists(SOURCE):
        print(f"error: missing {SOURCE}", file=sys.stderr)
        return 1
    # Run setup.py build_ext --inplace in a subprocess so a failed build
    # cannot leave half-initialised distutils state in this interpreter.
    cmd = [sys.executable, "setup.py", "build_ext", "--inplace"]
    proc = subprocess.run(cmd, cwd=REPO_ROOT)
    if proc.returncode != 0:
        print(
            "build failed — the compiled tier is optional; the pure tier "
            "keeps working (REPRO_KERNEL=auto falls back silently)",
            file=sys.stderr,
        )
        return 2
    built = _artifacts()
    if not built:
        print("build reported success but produced no extension",
              file=sys.stderr)
        return 2
    for path in built:
        print(f"built {os.path.relpath(path, REPO_ROOT)}")
    return 0


def verify() -> int:
    # Import in a fresh interpreter so a stale in-process module cannot mask
    # a broken build.
    code = (
        "from repro import kernel\n"
        "info = kernel.kernel_info()\n"
        "assert info['compiled_available'], info\n"
        "print('kernel tier:', info['tier'], '|', info.get('compiler'))\n"
    )
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=REPO_ROOT)
    return proc.returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clean", action="store_true",
                        help="remove built extension artifacts")
    parser.add_argument("--verify", action="store_true",
                        help="after building, import the extension and "
                             "report the active tier")
    args = parser.parse_args(argv)
    if args.clean:
        return clean()
    rc = build()
    if rc == 0 and args.verify:
        rc = verify()
    return rc


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Measure kernel performance and maintain ``BENCH_kernel.json``.

The committed ``BENCH_kernel.json`` at the repo root is the project's
performance trajectory: a ``baseline`` section (the numbers measured before
the kernel overhaul of PR 2, on the pre-overhaul code) and a ``current``
section (the latest measured numbers), plus the derived speedups.  CI runs
``--quick --compare BENCH_kernel.json`` after every change and prints the
delta against the committed numbers — non-gating, because absolute wall
-clock depends on the runner, but a sustained regression is visible in the
artifact history.

Usage::

    PYTHONPATH=src python tools/perf_report.py                # full suite
    PYTHONPATH=src python tools/perf_report.py --quick        # CI-sized
    PYTHONPATH=src python tools/perf_report.py --only event_queue undo_log
    PYTHONPATH=src python tools/perf_report.py --output BENCH_kernel.json \
        --baseline-from old_numbers.json                      # refresh file
    PYTHONPATH=src python tools/perf_report.py --quick --compare BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from benchmarks.bench_kernel import BENCHMARKS, run_all  # noqa: E402

SCHEMA = "repro.bench_kernel/v1"

#: Benchmark-result keys that carry throughput (higher is better) and cost
#: (lower is better), used for speedup derivation and delta printing.
RATE_KEYS = ("events_per_sec", "references_per_sec", "records_per_sec",
             "decisions_per_sec", "batched_speedup")
COST_KEYS = ("wall_seconds",)


def _walk_metrics(results: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten benchmark results into {"bench.metric": value} for comparison."""
    out: Dict[str, float] = {}
    for key, value in results.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_walk_metrics(value, prefix=f"{path}."))
        elif key in RATE_KEYS or key in COST_KEYS:
            out[path] = float(value)
    return out


def derive_speedups(baseline: Dict[str, Any],
                    current: Dict[str, Any]) -> Dict[str, float]:
    """Speedup of ``current`` over ``baseline`` per metric (>1 is faster)."""
    base = _walk_metrics(baseline)
    cur = _walk_metrics(current)
    speedups: Dict[str, float] = {}
    for path in sorted(set(base) & set(cur)):
        b, c = base[path], cur[path]
        if b <= 0 or c <= 0:
            continue
        leaf = path.rsplit(".", 1)[-1]
        speedups[path] = round(b / c if leaf in COST_KEYS else c / b, 3)
    return speedups


def print_delta(reference: Dict[str, Any], measured: Dict[str, Any], *,
                rates_only: bool = False) -> None:
    """Print measured-vs-reference deltas, one line per metric.

    ``rates_only`` drops the cost metrics (wall_seconds): when the two runs
    used different input sizes (quick vs full), absolute wall-clock is
    incomparable but throughput rates still are.
    """
    speedups = derive_speedups(reference, measured)
    if rates_only:
        speedups = {path: s for path, s in speedups.items()
                    if path.rsplit(".", 1)[-1] not in COST_KEYS}
    if not speedups:
        print("no overlapping metrics to compare")
        return
    width = max(len(path) for path in speedups)
    for path, speedup in speedups.items():
        marker = "+" if speedup >= 1.0 else "-"
        print(f"  {path:<{width}}  {speedup:6.2f}x {marker}")


def check_document(path: str) -> List[str]:
    """Validate a committed BENCH document; returns problems (empty = OK).

    The delta step of the CI perf job is non-gating, but a *malformed*
    committed baseline would silently break every future comparison, so its
    structure is checked gatingly: valid JSON, the expected schema tag,
    dict-shaped ``baseline``/``current`` sections, and at least one numeric
    rate or cost metric in ``current``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"{path}: top level must be an object, got {type(document).__name__}"]
    if document.get("schema") != SCHEMA:
        problems.append(f"{path}: schema is {document.get('schema')!r}, "
                        f"expected {SCHEMA!r}")
    for section in ("baseline", "current"):
        if not isinstance(document.get(section), dict):
            problems.append(f"{path}: missing or non-object {section!r} section")
    current = document.get("current")
    if isinstance(current, dict):
        metrics = _walk_metrics(current)
        if not metrics:
            problems.append(f"{path}: 'current' contains no rate/cost metrics")
        bad = [k for k, v in metrics.items()
               if not isinstance(v, (int, float)) or v != v or v < 0]
        problems.extend(f"{path}: metric {k} has invalid value" for k in bad)
    return problems


def machine_info() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized inputs (seconds, noisier numbers)")
    parser.add_argument("--only", nargs="+", metavar="BENCH",
                        choices=sorted(BENCHMARKS),
                        help="run only these benchmarks")
    parser.add_argument("--output", metavar="FILE",
                        help="write the full BENCH document to FILE")
    parser.add_argument("--baseline-from", metavar="FILE",
                        help="take the 'baseline' section from FILE (a prior "
                             "--output document or raw results)")
    parser.add_argument("--compare", metavar="FILE",
                        help="print speedup of this run vs FILE's 'current' "
                             "(or 'baseline') section; never gates")
    parser.add_argument("--check", metavar="FILE",
                        help="validate FILE's structure and exit (no "
                             "benchmarks run); non-zero on a malformed file")
    args = parser.parse_args(argv)

    if args.check:
        problems = check_document(args.check)
        if problems:
            for problem in problems:
                print(f"MALFORMED: {problem}", file=sys.stderr)
            return 1
        print(f"{args.check} is well-formed ({SCHEMA})")
        return 0

    results = run_all(quick=args.quick, only=args.only)
    print(json.dumps(results, indent=2, sort_keys=True))

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
        reference = committed.get("current") or committed.get("baseline") or committed
        size_mismatch = committed.get("quick") is not None \
            and bool(committed.get("quick")) != args.quick
        note = ""
        if size_mismatch:
            note = ("; input sizes differ (quick vs full), comparing "
                    "throughput rates only")
        print(f"\ndelta vs {args.compare} "
              f"({'quick' if args.quick else 'full'} inputs; >1.00x is faster"
              f"{note}):")
        print_delta(reference, results, rates_only=size_mismatch)

    if args.output:
        baseline: Dict[str, Any] = {}
        if args.baseline_from:
            with open(args.baseline_from, "r", encoding="utf-8") as handle:
                prior = json.load(handle)
            baseline = prior.get("baseline") or prior.get("results") or prior
        elif os.path.exists(args.output):
            with open(args.output, "r", encoding="utf-8") as handle:
                baseline = json.load(handle).get("baseline", {})
        document = {
            "schema": SCHEMA,
            "quick": args.quick,
            "machine": machine_info(),
            "baseline": baseline,
            "current": results,
            "speedup_vs_baseline": derive_speedups(baseline, results),
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

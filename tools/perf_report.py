#!/usr/bin/env python
"""Measure kernel performance and maintain ``BENCH_kernel.json``.

The committed ``BENCH_kernel.json`` at the repo root is the project's
performance trajectory, tracked **per kernel tier**: a ``tiers`` map with one
section per tier (``pure``, ``compiled``), each holding its own ``baseline``
(the numbers that opened that tier's trajectory), ``current`` (the latest
measured numbers) and derived speedups, plus a ``machine`` block recording
``kernel_tier`` and — for the compiled tier — the compiler that built the
extension.  Tiers are never compared against each other: a compiled run only
ever diffs against compiled history, pure against pure.  CI runs ``--quick
--compare BENCH_kernel.json`` after every change and prints the same-tier
delta — non-gating, because absolute wall-clock depends on the runner, but a
sustained regression is visible in the artifact history.

Usage::

    PYTHONPATH=src python tools/perf_report.py                # full suite
    PYTHONPATH=src python tools/perf_report.py --quick        # CI-sized
    PYTHONPATH=src python tools/perf_report.py --only event_queue undo_log
    PYTHONPATH=src python tools/perf_report.py --tier compiled \
        --output BENCH_kernel.json                 # refresh one tier section
    PYTHONPATH=src python tools/perf_report.py --quick --compare BENCH_kernel.json
    PYTHONPATH=src python tools/perf_report.py --quick --profile \
        --only fig4_macro                      # cProfile attribution tables
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from benchmarks.bench_kernel import BENCHMARKS, run_all  # noqa: E402
from repro import kernel  # noqa: E402

#: v2: per-tier sections under "tiers" so pure / compiled trajectories are
#: tracked independently and never compared across tiers.
SCHEMA = "repro.bench_kernel/v2"
SCHEMA_V1 = "repro.bench_kernel/v1"

#: Benchmark-result keys that carry throughput (higher is better) and cost
#: (lower is better), used for speedup derivation and delta printing.
RATE_KEYS = ("events_per_sec", "references_per_sec", "records_per_sec",
             "decisions_per_sec", "batched_speedup", "multiplex_speedup",
             "sharded_speedup")
COST_KEYS = ("wall_seconds",)

#: Parallel-speedup metrics whose ceiling is ``min(workers, cpus)``: on a
#: machine whose recorded ``cpus`` field is 1, a sub-1.0 value is the
#: *expected* outcome (process spawn + store polling with zero extra
#: parallelism), so the regression surface skips them there.
PARALLEL_SPEEDUP_KEYS = ("batched_speedup", "multiplex_speedup",
                         "sharded_speedup")

#: ``--check`` warns (never gates) when a ``speedup_vs_baseline`` entry sits
#: below this: quick-sized CI numbers are noisy, so only a pronounced drop
#: is worth a log line.
REGRESSION_WARN_BELOW = 0.90


def parallel_gated_paths(results: Dict[str, Any]) -> set:
    """Metric paths to exempt from regression surfaces on this machine.

    A benchmark that records ``cpus`` (the campaign benchmarks) declares its
    own parallelism ceiling; with fewer than two usable CPUs its
    ``*_speedup`` metrics cannot exceed 1 and are exempt.
    """
    gated = set()
    for bench, payload in results.items():
        if not isinstance(payload, dict):
            continue
        cpus = payload.get("cpus")
        if isinstance(cpus, int) and cpus < 2:
            gated.update(f"{bench}.{key}" for key in PARALLEL_SPEEDUP_KEYS
                         if key in payload)
    return gated


def _walk_metrics(results: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
    """Flatten benchmark results into {"bench.metric": value} for comparison."""
    out: Dict[str, float] = {}
    for key, value in results.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(_walk_metrics(value, prefix=f"{path}."))
        elif key in RATE_KEYS or key in COST_KEYS:
            out[path] = float(value)
    return out


def derive_speedups(baseline: Dict[str, Any],
                    current: Dict[str, Any]) -> Dict[str, float]:
    """Speedup of ``current`` over ``baseline`` per metric (>1 is faster)."""
    base = _walk_metrics(baseline)
    cur = _walk_metrics(current)
    speedups: Dict[str, float] = {}
    for path in sorted(set(base) & set(cur)):
        b, c = base[path], cur[path]
        if b <= 0 or c <= 0:
            continue
        leaf = path.rsplit(".", 1)[-1]
        speedups[path] = round(b / c if leaf in COST_KEYS else c / b, 3)
    return speedups


def print_delta(reference: Dict[str, Any], measured: Dict[str, Any], *,
                rates_only: bool = False) -> None:
    """Print measured-vs-reference deltas, one line per metric.

    ``rates_only`` drops the cost metrics (wall_seconds): when the two runs
    used different input sizes (quick vs full), absolute wall-clock is
    incomparable but throughput rates still are.
    """
    speedups = derive_speedups(reference, measured)
    if rates_only:
        speedups = {path: s for path, s in speedups.items()
                    if path.rsplit(".", 1)[-1] not in COST_KEYS}
    gated = parallel_gated_paths(measured) | parallel_gated_paths(reference)
    skipped = sorted(path for path in speedups if path in gated)
    if skipped:
        speedups = {path: s for path, s in speedups.items()
                    if path not in gated}
        print(f"  (skipping {', '.join(skipped)}: recorded cpus < 2 caps "
              "the parallel-speedup ceiling at 1)")
    if not speedups:
        print("no overlapping metrics to compare")
        return
    width = max(len(path) for path in speedups)
    for path, speedup in speedups.items():
        marker = "+" if speedup >= 1.0 else "-"
        print(f"  {path:<{width}}  {speedup:6.2f}x {marker}")


def _check_tier_section(path: str, tier: str, section: Dict[str, Any],
                        warnings: List[str]) -> List[str]:
    """Validate one tier's {machine, baseline, current, speedup} block."""
    problems: List[str] = []
    machine = section.get("machine")
    if not isinstance(machine, dict):
        problems.append(f"{path}: tier {tier!r} missing 'machine' block")
    elif machine.get("kernel_tier") != tier:
        problems.append(
            f"{path}: tier {tier!r} machine block records kernel_tier="
            f"{machine.get('kernel_tier')!r}; entries must never mix tiers")
    for part in ("baseline", "current"):
        if not isinstance(section.get(part), dict):
            problems.append(f"{path}: tier {tier!r} missing or non-object "
                            f"{part!r} section")
    current = section.get("current")
    if isinstance(current, dict):
        metrics = _walk_metrics(current)
        if not metrics:
            problems.append(f"{path}: tier {tier!r} 'current' contains no "
                            "rate/cost metrics")
        bad = [k for k, v in metrics.items()
               if not isinstance(v, (int, float)) or v != v or v < 0]
        problems.extend(f"{path}: tier {tier!r} metric {k} has invalid value"
                        for k in bad)
        # Regression surface (warn-only): a speedup_vs_baseline entry well
        # below 1 usually means the committed 'current' numbers regressed —
        # except for parallel-speedup metrics on a machine whose recorded
        # ``cpus`` field caps their ceiling at 1 (single-CPU CI runners),
        # which are exempt rather than false-flagged.
        gated = parallel_gated_paths(current)
        speedups = section.get("speedup_vs_baseline")
        if isinstance(speedups, dict):
            for metric, value in sorted(speedups.items()):
                if metric in gated:
                    continue
                if (isinstance(value, (int, float)) and value == value
                        and 0 < value < REGRESSION_WARN_BELOW):
                    warnings.append(
                        f"{path}: tier {tier!r} metric {metric} at "
                        f"{value:.3f}x of its baseline")
    return problems


def check_document(path: str,
                   warnings: Optional[List[str]] = None) -> List[str]:
    """Validate a committed BENCH document; returns problems (empty = OK).

    The delta step of the CI perf job is non-gating, but a *malformed*
    committed baseline would silently break every future comparison, so its
    structure is checked gatingly: valid JSON, the expected schema tag, a
    per-tier ``tiers`` map whose sections each carry a matching
    ``machine.kernel_tier`` tag plus dict-shaped ``baseline``/``current``
    sections with at least one numeric rate or cost metric.

    ``warnings`` (when a list is passed) collects non-gating observations:
    committed ``speedup_vs_baseline`` entries below
    ``REGRESSION_WARN_BELOW``, excluding parallel-speedup metrics whose
    recorded ``cpus`` field shows a single-CPU machine (their ceiling is
    ``min(workers, cpus)``, so a sub-1.0 value there is expected).
    """
    if warnings is None:
        warnings = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"{path}: top level must be an object, got {type(document).__name__}"]
    if document.get("schema") != SCHEMA:
        problems.append(f"{path}: schema is {document.get('schema')!r}, "
                        f"expected {SCHEMA!r}")
        return problems
    tiers = document.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        return problems + [f"{path}: missing or empty 'tiers' map"]
    for tier, section in tiers.items():
        if tier not in ("pure", "compiled"):
            problems.append(f"{path}: unknown tier {tier!r}")
            continue
        if not isinstance(section, dict):
            problems.append(f"{path}: tier {tier!r} section must be an object")
            continue
        problems.extend(_check_tier_section(path, tier, section, warnings))
    return problems


def machine_info() -> Dict[str, str]:
    info = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "kernel_tier": kernel.active_tier(),
    }
    if info["kernel_tier"] == "compiled":
        compiler = kernel.compiler_tag()
        if compiler is not None:
            info["kernel_compiler"] = compiler
    return info


def tier_section(document: Dict[str, Any], tier: str) -> Optional[Dict[str, Any]]:
    """The same-tier section of a BENCH document (v1 files count as pure).

    Returns ``None`` when the document has no entries for ``tier`` — the
    caller must then skip the comparison rather than fall back to another
    tier's numbers.
    """
    if document.get("schema") == SCHEMA_V1 or "tiers" not in document:
        # Legacy single-tier layout: everything in it was measured on the
        # pure tier (the compiled tier did not exist yet).
        return document if tier == "pure" else None
    tiers = document.get("tiers")
    if not isinstance(tiers, dict):
        return None
    section = tiers.get(tier)
    return section if isinstance(section, dict) else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized inputs (seconds, noisier numbers)")
    parser.add_argument("--only", nargs="+", metavar="BENCH",
                        choices=sorted(BENCHMARKS),
                        help="run only these benchmarks")
    parser.add_argument("--tier", choices=sorted(kernel.TIERS),
                        help="kernel tier to benchmark (default: the "
                             "REPRO_KERNEL selection); results land in the "
                             "matching per-tier section of the document")
    parser.add_argument("--output", metavar="FILE",
                        help="write the full BENCH document to FILE")
    parser.add_argument("--baseline-from", metavar="FILE",
                        help="take the 'baseline' section from FILE (a prior "
                             "--output document or raw results)")
    parser.add_argument("--compare", metavar="FILE",
                        help="print speedup of this run vs FILE's 'current' "
                             "(or 'baseline') section; never gates")
    parser.add_argument("--check", metavar="FILE",
                        help="validate FILE's structure and exit (no "
                             "benchmarks run); non-zero on a malformed file; "
                             "sub-baseline speedups print as warnings (cpus"
                             "-gated, never fail the check)")
    parser.add_argument("--profile", action="store_true",
                        help="run every benchmark under cProfile and write "
                             "the top-N cumulative tables next to the BENCH "
                             "artifact (numbers carry tracing overhead: for "
                             "attribution, not for the committed trajectory)")
    args = parser.parse_args(argv)

    if args.check:
        warnings: List[str] = []
        problems = check_document(args.check, warnings)
        for warning in warnings:
            print(f"WARNING: {warning}", file=sys.stderr)
        if problems:
            for problem in problems:
                print(f"MALFORMED: {problem}", file=sys.stderr)
            return 1
        print(f"{args.check} is well-formed ({SCHEMA})")
        return 0

    if args.tier is not None:
        kernel.set_kernel_tier(args.tier)
    # Resolve before benchmarking so REPRO_KERNEL=compiled without the
    # extension fails loudly here instead of silently measuring pure.
    tier = kernel.active_tier()
    print(f"kernel tier: {tier}")
    # Capture machine provenance now, while the resolved tier is pinned
    # (run_all restores the process selection on exit).
    machine = machine_info()
    profiles: Optional[Dict[str, str]] = {} if args.profile else None
    results = run_all(quick=args.quick, only=args.only, tier=tier,
                      profiles=profiles)
    print(json.dumps(results, indent=2, sort_keys=True))

    if profiles is not None:
        profile_path = (os.path.splitext(args.output)[0] + ".profile.txt"
                        if args.output else "BENCH_kernel.profile.txt")
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(f"# kernel tier: {tier}\n")
            handle.write("# cProfile attribution (top cumulative); "
                         "wall-clock here carries tracing overhead.\n")
            for name, table in profiles.items():
                handle.write(f"\n=== {name} ===\n{table}")
        print(f"\nwrote {profile_path} ({len(profiles)} profiles)")

    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as handle:
            committed = json.load(handle)
        reference_section = tier_section(committed, tier)
        if reference_section is None:
            # Numbers from a different tier are not a regression baseline.
            print(f"\n{args.compare} has no {tier!r}-tier entries; "
                  "skipping delta (tiers are never compared across)")
        else:
            reference = (reference_section.get("current")
                         or reference_section.get("baseline")
                         or reference_section)
            size_mismatch = committed.get("quick") is not None \
                and bool(committed.get("quick")) != args.quick
            note = ""
            if size_mismatch:
                note = ("; input sizes differ (quick vs full), comparing "
                        "throughput rates only")
            print(f"\ndelta vs {args.compare} [{tier} tier] "
                  f"({'quick' if args.quick else 'full'} inputs; >1.00x is "
                  f"faster{note}):")
            print_delta(reference, results, rates_only=size_mismatch)

    if args.output:
        prior_tiers: Dict[str, Any] = {}
        prior_quick = args.quick
        if os.path.exists(args.output):
            with open(args.output, "r", encoding="utf-8") as handle:
                prior_doc = json.load(handle)
            prior_pure = tier_section(prior_doc, "pure")
            if prior_pure is not None and "tiers" not in prior_doc:
                # Migrate a v1 single-tier file: it was all pure-tier data.
                prior_tiers = {"pure": {
                    "machine": dict(prior_doc.get("machine", {}),
                                    kernel_tier="pure"),
                    "baseline": prior_doc.get("baseline", {}),
                    "current": prior_doc.get("current", {}),
                    "speedup_vs_baseline":
                        prior_doc.get("speedup_vs_baseline", {}),
                }}
            else:
                prior_tiers = dict(prior_doc.get("tiers", {}))
            prior_quick = prior_doc.get("quick", args.quick)
            if bool(prior_quick) != args.quick:
                print(f"note: {args.output} holds "
                      f"{'quick' if prior_quick else 'full'}-size numbers; "
                      "refresh every tier at one size to keep the document "
                      "self-consistent")
        baseline: Dict[str, Any] = {}
        if args.baseline_from:
            with open(args.baseline_from, "r", encoding="utf-8") as handle:
                prior = json.load(handle)
            prior_sec = tier_section(prior, tier)
            if prior_sec is not None:
                baseline = (prior_sec.get("baseline")
                            or prior_sec.get("results") or {})
            else:
                baseline = prior.get("baseline") or prior.get("results") or prior
        elif isinstance(prior_tiers.get(tier), dict):
            baseline = prior_tiers[tier].get("baseline", {})
        if not baseline:
            # First measurement on this tier: it opens the trajectory.
            baseline = results
        prior_tiers[tier] = {
            "machine": machine,
            "baseline": baseline,
            "current": results,
            "speedup_vs_baseline": derive_speedups(baseline, results),
        }
        document = {
            "schema": SCHEMA,
            "quick": args.quick,
            "tiers": prior_tiers,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output} ({tier} tier)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Setup shim so that legacy editable installs work without the wheel package.

``pip install -e . --no-build-isolation`` in this offline environment falls
back to ``setup.py develop``, which this file enables; all real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Setup shim: legacy editable installs plus the optional compiled kernel.

``pip install -e . --no-build-isolation`` in this offline environment falls
back to ``setup.py develop``, which this file enables.

The compiled kernel tier (``repro._ckernel``, see DESIGN.md §10) is declared
as an *optional* extension: ``python setup.py build_ext --inplace`` (or the
friendlier ``python tools/build_kernel.py``) compiles it in place, and a
missing or failing C toolchain must never break a plain install — the pure
tier is always sufficient, so build errors for the extension are reported
but not fatal.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """build_ext that degrades to a warning when no compiler is available."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # no toolchain at all
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compile/link failure
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        import sys

        print(
            f"warning: optional extension repro._ckernel not built ({exc}); "
            "the pure-Python kernel tier will be used",
            file=sys.stderr,
        )


setup(
    package_dir={"": "src"},
    packages=["repro"],
    ext_modules=[
        Extension(
            "repro._ckernel",
            sources=["src/repro/_ckernelmodule.c"],
            extra_compile_args=["-O2"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)

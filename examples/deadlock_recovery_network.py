#!/usr/bin/env python
"""Scenario: ship an interconnect without virtual channels?

Section 4 of the paper removes virtual-channel/virtual-network deadlock
avoidance, sizes buffers for the common case, and recovers (via a coherence
transaction timeout + SafetyNet + slow-start) on the rare occasions the
network actually deadlocks.  This example sweeps the shared buffer size of
the no-VC network for an OLTP-like workload and prints, for each size,
whether the system deadlocked, how often, and what performance it achieved
relative to worst-case buffering — the Section 5.3 interconnect experiment
in miniature.

Run with:  python examples/deadlock_recovery_network.py [buffer sizes...]
e.g.       python examples/deadlock_recovery_network.py 4 8 16 32
"""

from __future__ import annotations

import sys

from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, run_config
from repro.sim.config import ProtocolVariant, RoutingPolicy


def main() -> None:
    sizes = [int(arg) for arg in sys.argv[1:]] or [4, 8, 16, 32]
    workload = "oltp"
    print(f"No-virtual-channel torus, workload {workload}, buffer sweep {sizes}\n")

    baseline = run_config(benchmark_config(
        workload, references=300, seed=3,
        variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
        speculative_no_vc=True, switch_buffer_capacity=4096),
        label="worst-case-buffering")
    print(f"worst-case buffering baseline: {baseline.runtime_cycles} cycles\n")

    print(f"{'buffer':>8s}  {'normalized':>10s}  {'deadlocks':>9s}  {'finished':>8s}")
    for size in sizes:
        result = run_config(benchmark_config(
            workload, references=300, seed=3,
            variant=ProtocolVariant.SPECULATIVE, routing=RoutingPolicy.STATIC,
            speculative_no_vc=True, switch_buffer_capacity=size),
            label=f"no-vc-buf{size}",
            max_cycles=12 * baseline.runtime_cycles)
        deadlocks = result.recoveries_of(SpeculationKind.INTERCONNECT_DEADLOCK)
        normalized = baseline.runtime_cycles / result.runtime_cycles
        print(f"{size:>8d}  {normalized:>10.3f}  {deadlocks:>9d}  {str(result.finished):>8s}")

    print("\nReading the table: with enough buffering the no-VC network matches "
          "worst-case buffering and never deadlocks; when buffers get too small "
          "deadlocks appear, the timeout detects them, SafetyNet recovers, and "
          "slow-start guarantees forward progress — performance degrades instead "
          "of the system hanging.")


if __name__ == "__main__":
    main()

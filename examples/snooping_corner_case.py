#!/usr/bin/env python
"""Scenario: tape out a snooping protocol with an unhandled corner case.

Section 3.2's story: randomized testing found a protocol race the designers
had not specified — a cache that issued a Writeback sees two foreign
RequestReadWrite transactions before its own Writeback is ordered.  Instead
of redesigning and re-verifying the protocol, the speculative design detects
the transition and recovers.

This example does two things:

1. runs the full commercial workload suite on the speculative snooping
   system and reports how many times the corner case occurred naturally
   (the paper observed zero), and
2. force-constructs the corner case on a 4-node system to show the
   detection, the SafetyNet recovery and the slow-start forward-progress
   mechanism actually firing — the path a real occurrence would take.

Run with:  python examples/snooping_corner_case.py
"""

from __future__ import annotations

from repro.coherence.snooping.bus import BusRequest, BusRequestType
from repro.coherence.common import MemoryOp, MemoryRequest
from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, run_config
from repro.sim.config import ProtocolKind, ProtocolVariant, SystemConfig
from repro.system import build_system
from repro.workloads import workload_names


def natural_occurrence_sweep() -> None:
    print("1. Natural occurrence across the workload suite")
    print(f"{'workload':>12s}  {'bus requests':>12s}  {'corner-case recoveries':>22s}")
    for workload in workload_names():
        result = run_config(benchmark_config(
            workload, references=300, protocol=ProtocolKind.SNOOPING,
            variant=ProtocolVariant.SPECULATIVE), label="snooping-speculative")
        corner = result.recoveries_of(SpeculationKind.SNOOPING_CORNER_CASE)
        print(f"{workload:>12s}  {result.messages_delivered:>12d}  {corner:>22d}")
    print("  (the paper likewise observed zero occurrences on its runs)\n")


def forced_occurrence_demo() -> None:
    print("2. Forcing the corner case to show detection + recovery")
    config = SystemConfig.small(num_processors=4, references=0).with_updates(
        protocol=ProtocolKind.SNOOPING, variant=ProtocolVariant.SPECULATIVE)
    system = build_system(config)
    ctrl = system.nodes[1].cache_controller

    # Node 1 owns a block and issues a Writeback (eviction)...
    done = []
    ctrl.access(MemoryRequest(node=1, op=MemoryOp.STORE, address=0x2000, value=7),
                lambda r: done.append(r))
    system.sim.run_until_idle()
    ctrl._evict(system.nodes[1].l2_array.peek(0x2000))
    # ...and, before its own Writeback is ordered, observes two different
    # processors' RequestReadWrite transactions for that block.
    ctrl.snoop(BusRequest(requestor=2, address=0x2000, rtype=BusRequestType.GETX))
    ctrl.snoop(BusRequest(requestor=3, address=0x2000, rtype=BusRequestType.GETX))
    system.sim.run_until_idle()

    stats = system.framework.framework_stats
    print(f"  detections: {stats.detections}, recoveries: {stats.recoveries}")
    for record in system.framework.records:
        print(f"  recovery for '{record.event.description}'")
        print(f"    work lost: {record.work_lost_cycles} cycles, "
              f"resumed at cycle {record.resumed_at}")
    print(f"  slow-start active after recovery: {system.slow_start_gate.active} "
          f"(limit {system.slow_start_gate.current_limit} outstanding transaction)")


def main() -> None:
    natural_occurrence_sweep()
    forced_occurrence_demo()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: how many recoveries per second can the system afford?

This is the Figure 4 stress test as a standalone tool: a non-speculative
system (full protocol, virtual channels, static routing) with SafetyNet
recoveries injected at a configurable rate.  It answers the system-design
question behind the whole paper — how cheap does recovery have to be, and
how rare do mis-speculations have to stay, for speculation-for-simplicity to
be free?

Run with:  python examples/recovery_cost_sweep.py [workload] [rates...]
e.g.       python examples/recovery_cost_sweep.py apache 1 10 100
"""

from __future__ import annotations

import sys

from repro.experiments import fig4_misspeculation_rate
from repro.workloads import workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "jbb"
    rates = [float(r) for r in sys.argv[2:]] or [0.0, 1.0, 10.0, 100.0]
    if workload not in workload_names():
        raise SystemExit(f"unknown workload {workload!r}; choose from {workload_names()}")
    if 0.0 not in rates:
        rates = [0.0] + rates

    result = fig4_misspeculation_rate.run([workload], rates=tuple(rates),
                                          references=400)
    print(result.format())
    print()
    print("Observed recoveries per rate:", result.recoveries[workload])
    points = result.normalized[workload]
    affordable = [rate for rate in rates if rate > 0 and points[rate] >= 0.95]
    if affordable:
        print(f"Rates costing under 5% on {workload}: "
              f"{', '.join(f'{r:g}/s' for r in affordable)}")
    print("The paper's conclusion: a speculative system can absorb roughly ten "
          "recoveries per second without significant degradation, and the "
          "speculative designs mis-speculate far less often than that.")


if __name__ == "__main__":
    main()

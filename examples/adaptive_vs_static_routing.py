#!/usr/bin/env python
"""Scenario: should the interconnect use adaptive routing?

The question the paper's Section 3.1 answers is whether a designer can have
both a simple, ordering-dependent directory protocol *and* an adaptively
routed network.  This example runs the comparison for a workload of your
choice at a link bandwidth of your choice and prints the Figure 5 style
result: normalized performance of adaptive vs. static routing, plus the rate
of reorderings and recoveries that the speculation absorbs.

Run with:  python examples/adaptive_vs_static_routing.py [workload] [MB/s]
e.g.       python examples/adaptive_vs_static_routing.py oltp 400
"""

from __future__ import annotations

import sys

from repro.analysis.metrics import normalized_performance, reorder_percentages
from repro.experiments.common import benchmark_config, run_config
from repro.sim.config import ProtocolVariant, RoutingPolicy
from repro.workloads import workload_names


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "oltp"
    bandwidth_mb = float(sys.argv[2]) if len(sys.argv) > 2 else 400.0
    if workload not in workload_names():
        raise SystemExit(f"unknown workload {workload!r}; choose from {workload_names()}")

    print(f"Workload {workload}, {bandwidth_mb:.0f} MB/s links, "
          "speculatively simplified directory protocol\n")

    static = run_config(benchmark_config(
        workload, references=400, variant=ProtocolVariant.SPECULATIVE,
        routing=RoutingPolicy.STATIC, link_bandwidth=bandwidth_mb * 1e6),
        label="static")
    adaptive = run_config(benchmark_config(
        workload, references=400, variant=ProtocolVariant.SPECULATIVE,
        routing=RoutingPolicy.ADAPTIVE, link_bandwidth=bandwidth_mb * 1e6),
        label="adaptive")

    speedup = normalized_performance(adaptive, static)
    print(f"{'':>12s}  {'runtime (cycles)':>18s}  {'normalized':>10s}  "
          f"{'recoveries':>10s}  {'link util':>9s}")
    for result, norm in ((static, 1.0), (adaptive, speedup)):
        print(f"{result.config_label:>12s}  {result.runtime_cycles:>18d}  "
              f"{norm:>10.3f}  {result.recoveries:>10d}  "
              f"{result.mean_link_utilization:>8.1%}")

    print()
    print("Reordering under adaptive routing (percent of delivered messages):")
    for vnet, pct in reorder_percentages(adaptive).items():
        print(f"  {vnet:>20s}: {pct:.3f}%")
    print()
    if speedup >= 1.0:
        print(f"Adaptive routing wins by {100 * (speedup - 1):.1f}% on this workload "
              f"while causing {adaptive.recoveries} recovery(ies) — the reordering "
              "races it introduces are absorbed by speculation + SafetyNet.")
    else:
        print("Adaptive routing does not pay off at this bandwidth/workload point; "
              "the speculative protocol still runs correctly on it.")


if __name__ == "__main__":
    main()

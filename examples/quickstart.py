#!/usr/bin/env python
"""Quickstart: build a 16-node speculative multiprocessor and run a workload.

This script builds the paper's Section 3.1 design point — the speculatively
simplified MOSI directory protocol over an adaptively routed 2D torus, with
SafetyNet recovery behind it — runs the SPECjbb-like workload on it, and
prints what the speculation-for-simplicity framework observed: how often the
network reordered messages, whether any mis-speculations were detected, and
what the recoveries (if any) cost.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.report import format_counters
from repro.experiments.common import benchmark_config
from repro.sim.config import ProtocolVariant, RoutingPolicy
from repro.system import build_system


def main() -> None:
    config = benchmark_config(
        workload="jbb",
        references=400,
        variant=ProtocolVariant.SPECULATIVE,
        routing=RoutingPolicy.ADAPTIVE,
        link_bandwidth=400e6,
    )
    print("Building the 16-node speculative directory system "
          f"({config.interconnect.resolved_topology().describe()}, "
          f"{config.interconnect.link_bandwidth_bytes_per_sec / 1e6:.0f} MB/s links)...")
    system = build_system(config)
    result = system.run()

    print()
    print(result.summary_line())
    print(f"  mean message latency   : {result.mean_message_latency:.0f} cycles")
    print(f"  mean link utilisation  : {result.mean_link_utilization:.1%}")
    print(f"  reordered messages     : {result.reorder_rate_overall:.4%} overall, "
          f"{result.reorder_rate_by_vnet.get('FORWARDED_REQUEST', 0.0):.4%} "
          "on the ForwardedRequest virtual network")
    print(f"  SafetyNet checkpoints  : {result.checkpoints_taken} "
          f"(peak log occupancy {result.peak_log_entries} entries)")
    print(f"  mis-speculations       : {result.detections} detected, "
          f"{result.recoveries} recoveries {result.recoveries_by_kind}")
    for record in result.recovery_records:
        print(f"    - {record.event.kind.value} at cycle {record.started_at}: "
              f"lost {record.work_lost_cycles} cycles of work, "
              f"resumed at {record.resumed_at}")
    print()
    print(format_counters("Selected protocol counters",
                          result.counters, prefix="network.", limit=12))
    print()
    print("Coherence invariants:",
          "OK" if not system.invariant_errors() else system.invariant_errors())


if __name__ == "__main__":
    main()

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures by calling
the corresponding experiment driver (``repro.experiments.*``) exactly once
(``benchmark.pedantic(rounds=1, iterations=1)``) — the interesting output is
the *result table/series*, which each benchmark prints, not the wall-clock
time pytest-benchmark records for producing it.

Environment knobs:

* ``REPRO_BENCH_WORKLOADS`` — comma-separated workload subset
  (default ``jbb,oltp`` to keep the default suite fast; set to
  ``jbb,apache,slashcode,oltp,barnes`` for the full Figure 4/5 sweeps).
* ``REPRO_BENCH_REFERENCES`` — per-processor reference count (default 400).
"""

from __future__ import annotations

import os
from typing import Callable, List

import pytest


def bench_workloads() -> List[str]:
    raw = os.environ.get("REPRO_BENCH_WORKLOADS", "jbb,oltp")
    return [w.strip() for w in raw.split(",") if w.strip()]


def bench_references() -> int:
    return int(os.environ.get("REPRO_BENCH_REFERENCES", "400"))


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def workloads() -> List[str]:
    return bench_workloads()


@pytest.fixture
def references() -> int:
    return bench_references()

"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they quantify what each ingredient of
the speculation-for-simplicity recipe contributes.

* **Forward progress** — with the escalating slow-start policy the no-VC
  network keeps making progress through repeated deadlocks; the ablation
  reports how many recoveries each configuration needs and how much forward
  progress it achieves in a bounded horizon.
* **Checkpoint interval** — the cost of an injected recovery grows with the
  checkpoint interval (more work to lose), which is the knob SafetyNet
  trades against logging overhead.
* **Timeout latency** — a too-short transaction timeout produces
  false-positive "deadlock" detections on a perfectly healthy (VC) network;
  the paper sizes it at three checkpoint intervals to avoid exactly that.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.core.events import SpeculationKind
from repro.experiments.common import benchmark_config, run_config
from repro.sim.config import ProtocolVariant, RoutingPolicy


def _fig4_style_config(workload: str, references: int, interval: int):
    cfg = benchmark_config(workload, references=references,
                           variant=ProtocolVariant.FULL,
                           routing=RoutingPolicy.STATIC, link_bandwidth=3.2e9)
    return cfg.with_updates(checkpoint=replace(
        cfg.checkpoint, directory_interval_cycles=interval,
        recovery_latency_cycles=500))


def test_ablation_checkpoint_interval(benchmark):
    """Recovery cost vs. SafetyNet checkpoint interval (injected recoveries)."""

    def run_sweep():
        rows = {}
        baseline = run_config(_fig4_style_config("jbb", 300, 2_000))
        for interval in (1_000, 4_000, 16_000):
            cfg = _fig4_style_config("jbb", 300, interval)
            injected = run_config(cfg, recovery_rate_per_second=100,
                                  max_cycles=20 * baseline.runtime_cycles)
            rows[interval] = {
                "normalized perf": baseline.runtime_cycles / injected.runtime_cycles,
                "recoveries": injected.recoveries,
            }
        return rows

    rows = run_once(benchmark, run_sweep)
    print("\ncheckpoint-interval ablation (100 injected recoveries/s):", rows)
    # Longer checkpoint intervals lose more work per recovery.
    assert rows[16_000]["normalized perf"] <= rows[1_000]["normalized perf"] + 0.02


def test_ablation_timeout_latency(benchmark):
    """False-positive deadlock detections vs. transaction timeout length."""

    def run_sweep():
        rows = {}
        for multiplier in (1, 3):
            cfg = benchmark_config("oltp", references=300,
                                   variant=ProtocolVariant.SPECULATIVE,
                                   routing=RoutingPolicy.STATIC,
                                   link_bandwidth=400e6)
            cfg = cfg.with_updates(
                speculation=replace(cfg.speculation,
                                    timeout_checkpoint_intervals=multiplier),
                checkpoint=replace(cfg.checkpoint, directory_interval_cycles=4_000))
            result = run_config(cfg, max_cycles=8_000_000)
            rows[multiplier] = result.recoveries_of(SpeculationKind.INTERCONNECT_DEADLOCK)
        return rows

    rows = run_once(benchmark, run_sweep)
    print("\ntimeout ablation (false-positive detections on a healthy VC network):", rows)
    # A 1-interval timeout (4k cycles, shorter than a congested miss on the
    # 400 MB/s network) misfires; 3 intervals (the paper's choice) misfires
    # far less or not at all.
    assert rows[3] < rows[1]
    assert rows[3] <= rows[1] // 5


def test_ablation_forward_progress_slow_start(benchmark):
    """Deadlock-prone no-VC network with and without generous buffering."""

    def run_pair():
        results = {}
        for label, buffer_size in (("starved", 4), ("provisioned", 32)):
            cfg = benchmark_config("oltp", references=250,
                                   variant=ProtocolVariant.SPECULATIVE,
                                   routing=RoutingPolicy.STATIC,
                                   speculative_no_vc=True,
                                   switch_buffer_capacity=buffer_size)
            result = run_config(cfg, max_cycles=6_000_000)
            results[label] = {
                "finished": result.finished,
                "references": result.references_completed,
                "deadlock recoveries": result.recoveries_of(
                    SpeculationKind.INTERCONNECT_DEADLOCK),
            }
        return results

    results = run_once(benchmark, run_pair)
    print("\nforward-progress ablation:", results)
    starved = results["starved"]
    # Even the starved configuration keeps making forward progress because
    # recovery + slow-start guarantees it (the paper's feature 4).
    assert starved["references"] > 0
    assert results["provisioned"]["deadlock recoveries"] == 0

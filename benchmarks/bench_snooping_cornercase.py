"""Benchmark regenerating the Section 5.3 snooping-protocol results.

Expected shape (paper): every workload runs to completion on the
speculatively simplified snooping protocol without a single corner-case
recovery, so its performance mirrors the fully designed protocol.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import snooping_cornercase


def test_snooping_corner_case_never_triggers(benchmark, workloads, references):
    result = run_once(benchmark, snooping_cornercase.run,
                      workloads, references=references)
    print("\n" + result.format())
    for workload, row in result.rows.items():
        assert row["corner-case recoveries"] == 0, (workload, row)
        assert row["normalized perf vs full"] > 0.99, (workload, row)

"""Kernel micro/macro benchmarks: the repo's performance trajectory.

Each benchmark measures one hot layer of the simulator in isolation plus one
macro experiment (the Figure 4 recovery-rate sweep) end to end:

* ``event_queue`` — events/sec through :class:`repro.sim.engine.Simulator`
  with a self-rescheduling workload (the kernel dispatch loop).
* ``event_churn`` — events/sec with a schedule/cancel-heavy pattern (timeout
  style: most events are cancelled before they fire), which exercises the
  heap-compaction path.
* ``workload_gen`` — references/sec of synthetic reference-stream generation.
* ``undo_log`` — undo-records/sec through the SafetyNet checkpoint log
  (append + periodic commit, the observer hot path).
* ``routing`` — route decisions/sec for static and adaptive routing on the
  16-node torus.
* ``fig4_macro`` — wall-clock seconds for the Figure 4 recovery-rate sweep
  (the experiment the paper's headline figure comes from), plus the
  aggregate simulator events/sec it achieved.
* ``campaign_batched`` — the workload-matrix quick grid run batched in one
  process with warm workload/topology memos, against a fresh-subprocess
  -per-spec baseline (cold imports, cold memos); reports the speedup and
  checks the two modes produce identical results.
* ``campaign_multiplex`` — the full 40-point workload-matrix grid as one
  multiplexed warm-process pass (:class:`repro.campaign.multiplex
  .MultiplexExecutor`) against the same grid batched in a single cold
  subprocess; reports the speedup and checks all modes produce
  byte-identical results.
* ``campaign_sharded`` — the full 40-point workload-matrix grid fanned out
  to crash-safe store workers (:class:`repro.campaign.sharding
  .ShardedExecutor`) against an uncached serial baseline; reports the
  sharded speedup, the worker and CPU counts (speedup is bounded by
  ``min(workers, cpus)`` — on a single-core runner it is ≤ 1), and checks
  the two modes produce byte-identical results.

Results are plain dicts so :mod:`tools.perf_report` can serialise them into
``BENCH_kernel.json``.  Numbers are wall-clock measurements: run on an idle
machine for stable comparisons.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware on Linux).

    Recorded alongside the campaign benchmarks because their speedup
    ceiling is ``min(workers, cpus)`` — a sub-1.0 parallel speedup on a
    single-CPU machine is the expected outcome, not a regression, and
    ``tools/perf_report.py`` gates its regression surface on this field.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


# --------------------------------------------------------------------- micro
def bench_event_queue(num_events: int = 200_000) -> Dict[str, Any]:
    """Dispatch throughput: a fan of self-rescheduling callbacks."""
    from repro import kernel

    sim = kernel.new_simulator()
    horizon = num_events

    def make_ticker(period: int) -> Callable[[], None]:
        def tick() -> None:
            if sim.now < horizon:
                sim.schedule(period, tick)
        return tick

    # 16 tickers with coprime-ish periods plus a batch of same-cycle events
    # per tick (the batch-dispatch fast path).
    for i in range(16):
        sim.schedule(i % 5, make_ticker(3 + (i % 7)))
    start = time.perf_counter()
    sim.run(max_events=num_events)
    elapsed = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "seconds": round(elapsed, 6),
        "events_per_sec": round(_rate(sim.events_executed, elapsed), 1),
    }


def bench_event_churn(num_events: int = 100_000) -> Dict[str, Any]:
    """Schedule/cancel churn: most events are cancelled before firing.

    This is the coherence-timeout pattern (every transaction schedules a
    timeout, almost all are cancelled on completion) and exercises cancelled
    -entry compaction in the heap.
    """
    from repro import kernel

    sim = kernel.new_simulator()
    fired = 0
    pending: List[Any] = []

    def work() -> None:
        nonlocal fired
        fired += 1
        # Cancel the previously scheduled "timeouts" and schedule new ones.
        for ev in pending:
            ev.cancel()
        pending.clear()
        for d in (50, 100, 150, 200):
            pending.append(sim.schedule(d, _noop, label="timeout"))
        if fired < num_events:
            sim.schedule(1, work)

    def _noop() -> None:
        pass

    sim.schedule(0, work)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "cancelled": 4 * fired - len(pending),
        "seconds": round(elapsed, 6),
        "events_per_sec": round(_rate(sim.events_executed, elapsed), 1),
    }


def bench_workload_gen(num_references: int = 200_000,
                       family: str = "jbb") -> Dict[str, Any]:
    """Reference-stream generation throughput of one registered family.

    The default measures the jbb paper profile (the historical
    ``workload_gen`` series); a second ``BENCHMARKS`` entry covers the
    ``hotspot`` scenario family so generation-speed regressions in the
    parameterized families gate the perf job exactly like kernel
    regressions do.
    """
    from repro.workloads import make_workload

    workload = make_workload(family, num_processors=16, seed=7)
    start = time.perf_counter()
    refs = workload.generate(0, num_references)
    elapsed = time.perf_counter() - start
    assert len(refs) == num_references
    return {
        "family": family,
        "references": num_references,
        "seconds": round(elapsed, 6),
        "references_per_sec": round(_rate(num_references, elapsed), 1),
    }


def bench_undo_log(num_records: int = 300_000) -> Dict[str, Any]:
    """Undo-record append + commit throughput (the logging observer path)."""
    from repro.safetynet.log import CheckpointLogBuffer, UndoRecord

    log = CheckpointLogBuffer("bench", capacity_bytes=512 * 1024, entry_bytes=72)
    records_per_checkpoint = 2_000
    start = time.perf_counter()
    seq = 0
    for i in range(num_records):
        if i and i % records_per_checkpoint == 0:
            seq += 1
            if seq >= 3:
                log.commit_through(seq - 3)
        log.append(UndoRecord(checkpoint_seq=seq, target_id="l2.0",
                              address=i * 64, field="state", old_value=i,
                              logged_at=i))
        # The occupancy probe every append mirrors what the buffer itself
        # does for peak tracking; keep it in the measured loop.
        _ = log.occupancy_entries
    elapsed = time.perf_counter() - start
    return {
        "records": num_records,
        "seconds": round(elapsed, 6),
        "records_per_sec": round(_rate(num_records, elapsed), 1),
    }


class _BenchCheckpoint:
    """Minimal stand-in exposing the one attribute the observer reads."""

    __slots__ = ("seq",)

    def __init__(self, seq: int) -> None:
        self.seq = seq


def bench_undo_observer(num_records: int = 300_000) -> Dict[str, Any]:
    """The full logging *observer* path, on the active kernel tier.

    Unlike :func:`bench_undo_log` (which measures the shared buffer logic
    and is tier-independent), this constructs the observer the way
    :meth:`repro.safetynet.manager.SafetyNet.register_store` does — a C
    callable on the compiled tier, the closure on the pure tier — so the
    per-tier trajectory of the record-construction + append hot path is
    visible in BENCH_kernel.json.
    """
    from repro import kernel
    from repro.safetynet.log import CheckpointLogBuffer, UndoRecord

    log = CheckpointLogBuffer("bench", capacity_bytes=512 * 1024, entry_bytes=72)
    sim = kernel.new_simulator()
    checkpoints: List[Any] = [_BenchCheckpoint(0)]
    impl = kernel.engine_impl()
    if impl is not None and isinstance(sim, impl.Simulator):
        observer = impl.LogObserver(log, checkpoints, "l2.0", sim)
    else:
        append = log.append
        def observer(address: int, field: str, old_value: object,
                     new_value: object) -> None:
            append(UndoRecord(
                checkpoint_seq=checkpoints[-1].seq,
                target_id="l2.0",
                address=address,
                field=field,
                old_value=old_value,
                logged_at=sim._now))

    records_per_checkpoint = 2_000
    start = time.perf_counter()
    seq = 0
    for i in range(num_records):
        if i and i % records_per_checkpoint == 0:
            seq += 1
            checkpoints[-1].seq = seq
            if seq >= 3:
                log.commit_through(seq - 3)
        observer(i * 64, "state", i, i + 1)
    elapsed = time.perf_counter() - start
    assert log.total_logged == num_records
    return {
        "tier": kernel.active_tier(),
        "records": num_records,
        "seconds": round(elapsed, 6),
        "records_per_sec": round(_rate(num_records, elapsed), 1),
    }


def bench_routing(num_decisions: int = 200_000) -> Dict[str, Any]:
    """Route decisions/sec on the 4x4 torus (static + adaptive)."""
    from repro.interconnect.message import MessageClass, NetworkMessage
    from repro.interconnect.routing import make_routing
    from repro.interconnect.topology import TorusTopology

    topology = TorusTopology(4, 4)
    static = make_routing("static", topology)
    adaptive = make_routing("adaptive", topology)
    n = topology.num_switches
    messages = [
        NetworkMessage(src=s, dst=d, msg_class=MessageClass.REQUEST_READ_ONLY,
                       size_bytes=8)
        for s in range(n) for d in range(n) if s != d
    ]
    congestion = lambda direction: 0  # noqa: E731 - uncongested network

    results: Dict[str, Any] = {}
    for name, algo in (("static", static), ("adaptive", adaptive)):
        start = time.perf_counter()
        done = 0
        while done < num_decisions:
            for msg in messages:
                algo.route(msg.src, msg, congestion)
            done += len(messages)
        elapsed = time.perf_counter() - start
        results[name] = {
            "decisions": done,
            "seconds": round(elapsed, 6),
            "decisions_per_sec": round(_rate(done, elapsed), 1),
        }
    return results


# --------------------------------------------------------------------- macro
def bench_fig4_macro(workloads: Optional[List[str]] = None,
                     references: int = 400) -> Dict[str, Any]:
    """Wall-clock for the Figure 4 sweep (serial, uncached) + events/sec."""
    from repro.campaign.executor import PERF_COUNTERS, SerialExecutor
    from repro.experiments import fig4_misspeculation_rate as fig4

    executor = SerialExecutor()
    events_before = PERF_COUNTERS["events_executed"]
    start = time.perf_counter()
    result = fig4.run(workloads, references=references, executor=executor)
    elapsed = time.perf_counter() - start
    events = PERF_COUNTERS["events_executed"] - events_before
    out: Dict[str, Any] = {
        "workloads": sorted(result.normalized),
        "references": references,
        "runs": sum(len(points) for points in result.normalized.values()),
        "wall_seconds": round(elapsed, 3),
    }
    if events:
        out["events"] = events
        out["events_per_sec"] = round(_rate(events, elapsed), 1)
    return out


def bench_campaign_batched(references: int = 250) -> Dict[str, Any]:
    """Batched in-process vs fresh-subprocess-per-spec on the workload
    -matrix quick grid.

    The baseline runs every design point in its own freshly spawned
    interpreter — the way a naive campaign shells out one process per spec:
    cold imports, cold artifact memos.  The batched run maps the same grid
    through :class:`repro.campaign.executor.BatchExecutor` in one process
    with warm workload/topology memos.  Both modes must produce identical
    results (the batched leg of the determinism contract, reported as
    ``identical``).

    ``references`` is deliberately short: the benchmark measures per-spec
    orchestration overhead (process spawn, imports, artifact regeneration),
    which a long simulation would drown; both raw wall-clock legs are
    reported so the absolute overhead stays visible either way.
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    from repro.campaign.executor import BatchExecutor, execute_spec
    from repro.campaign.precompute import clear_memos, memo_stats
    from repro.campaign.spec import RunSpec
    from repro.experiments.workload_matrix import (
        MAX_CYCLES,
        PROTOCOLS,
        QUICK_WORKLOADS,
        S3_MODES,
        _point_config,
        _point_label,
    )

    specs = [RunSpec(config=_point_config(workload, protocol, s3,
                                          references=references, seed=1),
                     label=_point_label(workload, protocol, s3),
                     max_cycles=MAX_CYCLES)
             for workload in QUICK_WORKLOADS
             for protocol in PROTOCOLS
             for s3 in S3_MODES]

    spawn = mp.get_context("spawn")
    start = time.perf_counter()
    per_spec_results = []
    for spec in specs:
        with ProcessPoolExecutor(max_workers=1, mp_context=spawn) as pool:
            per_spec_results.append(pool.submit(execute_spec, spec).result())
    per_spec_seconds = time.perf_counter() - start

    clear_memos()
    start = time.perf_counter()
    batched_results = BatchExecutor().map(specs)
    batched_seconds = time.perf_counter() - start

    stats = memo_stats()
    return {
        "specs": len(specs),
        "cpus": _available_cpus(),
        "references": references,
        "per_spec_seconds": round(per_spec_seconds, 3),
        "wall_seconds": round(batched_seconds, 3),
        "batched_speedup": round(per_spec_seconds / batched_seconds, 3)
        if batched_seconds > 0 else float("inf"),
        "identical": all(a.to_json() == b.to_json()
                         for a, b in zip(per_spec_results, batched_results)),
        "stream_hits": stats["stream_hits"],
        "stream_misses": stats["stream_misses"],
        "topology_hits": stats["topology_hits"],
        "topology_misses": stats["topology_misses"],
    }


def _batched_map_json(spec_payloads: List[str]) -> List[str]:
    """Subprocess entry for the cold-campaign baseline: map the grid through
    a fresh :class:`BatchExecutor` (cold imports, cold memos) and return the
    result JSON strings."""
    import json as _json

    from repro.campaign.executor import BatchExecutor
    from repro.campaign.spec import spec_from_json

    specs = [spec_from_json(_json.loads(payload)) for payload in spec_payloads]
    return [_json.dumps(result.to_json(), sort_keys=True)
            for result in BatchExecutor().map(specs)]


def bench_campaign_multiplex(references: int = 15,
                             quick: bool = False) -> Dict[str, Any]:
    """Multiplexed one-process pass vs a cold batched campaign process on
    the workload-matrix grid (full: all 40 design points; ``quick``: the
    8-point quick grid).

    The baseline is the whole grid shelled out to **one** freshly spawned
    interpreter mapping through :class:`repro.campaign.executor
    .BatchExecutor` — a campaign run cold, the way a driver script invokes
    the runner: interpreter start, cold imports, cold artifact memos, cold
    allocator.  The multiplexed leg maps the same grid in-process through
    :class:`repro.campaign.multiplex.MultiplexExecutor` (memos cleared
    first, so artifact generation is *not* where the win comes from),
    interleaving system construction with run execution so every hot path
    stays warm.  Both legs must produce byte-identical results (the
    multiplexed leg of the determinism contract, reported as
    ``identical``).

    ``references`` is deliberately short: the benchmark measures the
    per-campaign and per-point orchestration overhead the multiplexer
    amortizes (process start, imports, prologue construction), which long
    simulations would drown; the in-process batched leg rides along so the
    interpreter-start share of the win stays visible.
    """
    import json as _json
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    from repro.campaign.executor import BatchExecutor
    from repro.campaign.multiplex import MultiplexExecutor
    from repro.campaign.precompute import clear_memos
    from repro.campaign.spec import RunSpec
    from repro.experiments.workload_matrix import (
        MAX_CYCLES,
        PROTOCOLS,
        QUICK_WORKLOADS,
        S3_MODES,
        _point_config,
        _point_label,
    )
    from repro.workloads import workload_names

    workloads = QUICK_WORKLOADS if quick else workload_names()
    specs = [RunSpec(config=_point_config(workload, protocol, s3,
                                          references=references, seed=1),
                     label=_point_label(workload, protocol, s3),
                     max_cycles=MAX_CYCLES)
             for workload in workloads
             for protocol in PROTOCOLS
             for s3 in S3_MODES]
    payloads = [_json.dumps(spec.to_json()) for spec in specs]

    spawn = mp.get_context("spawn")
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=1, mp_context=spawn) as pool:
        cold_results = pool.submit(_batched_map_json, payloads).result()
    cold_batched_seconds = time.perf_counter() - start

    # The multiplexed leg runs first of the two in-process legs: it is the
    # primary metric, and it should not be measured on a heap another leg
    # just churned.
    clear_memos()
    start = time.perf_counter()
    mux_results = MultiplexExecutor().map(specs)
    mux_seconds = time.perf_counter() - start

    clear_memos()
    start = time.perf_counter()
    batched_results = BatchExecutor().map(specs)
    batched_seconds = time.perf_counter() - start

    mux_json = [_json.dumps(result.to_json(), sort_keys=True)
                for result in mux_results]
    batched_json = [_json.dumps(result.to_json(), sort_keys=True)
                    for result in batched_results]
    return {
        "specs": len(specs),
        "cpus": _available_cpus(),
        "references": references,
        "cold_batched_seconds": round(cold_batched_seconds, 3),
        "batched_seconds": round(batched_seconds, 3),
        "wall_seconds": round(mux_seconds, 3),
        "multiplex_speedup": round(cold_batched_seconds / mux_seconds, 3)
        if mux_seconds > 0 else float("inf"),
        "identical": mux_json == cold_results and mux_json == batched_json,
    }


def bench_campaign_sharded(references: int = 80, workers: int = 4,
                           quick: bool = False) -> Dict[str, Any]:
    """Sharded store workers vs an uncached serial run on the workload
    -matrix grid (full: all 40 design points; ``quick``: the 8-point quick
    grid).

    The sharded leg publishes a campaign manifest to a throwaway store and
    fans the grid out to ``workers`` crash-safe worker processes claiming
    design points via lease files — the orchestration under the runner's
    ``--workers N``.  The serial leg is the same grid through a plain
    :class:`repro.campaign.executor.SerialExecutor`, uncached.  Both legs
    must produce byte-identical results (the sharded leg of the determinism
    contract, reported as ``identical``).

    ``sharded_speedup`` is serial wall-clock over sharded wall-clock.  Its
    ceiling is ``min(workers, cpus)``: the workers are real processes, so
    on a single-core machine the sharded run *loses* to serial (spawn +
    store-polling overhead with zero extra parallelism) — which is why the
    CPU count rides along in the result.
    """
    import shutil
    import tempfile

    from repro.campaign.executor import SerialExecutor
    from repro.campaign.sharding import ShardedExecutor
    from repro.campaign.spec import RunSpec, SweepSpec
    from repro.experiments.workload_matrix import (
        MAX_CYCLES,
        PROTOCOLS,
        QUICK_WORKLOADS,
        S3_MODES,
        _point_config,
        _point_label,
    )
    from repro.workloads import workload_names

    workloads = QUICK_WORKLOADS if quick else workload_names()
    sweep = SweepSpec.of("workload-matrix-grid", [
        RunSpec(config=_point_config(workload, protocol, s3,
                                     references=references, seed=1),
                label=_point_label(workload, protocol, s3),
                max_cycles=MAX_CYCLES)
        for workload in workloads
        for protocol in PROTOCOLS
        for s3 in S3_MODES])

    start = time.perf_counter()
    serial_results = SerialExecutor().map(sweep)
    serial_seconds = time.perf_counter() - start

    store = tempfile.mkdtemp(prefix="bench_campaign_sharded_")
    try:
        start = time.perf_counter()
        with ShardedExecutor(workers, store, poll_interval=0.05) as executor:
            sharded_results = executor.map(sweep)
        sharded_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(store, ignore_errors=True)

    return {
        "specs": len(sweep),
        "workers": workers,
        "cpus": _available_cpus(),
        "references": references,
        "serial_seconds": round(serial_seconds, 3),
        "wall_seconds": round(sharded_seconds, 3),
        "sharded_speedup": round(serial_seconds / sharded_seconds, 3)
        if sharded_seconds > 0 else float("inf"),
        "identical": all(a.to_json() == b.to_json()
                         for a, b in zip(serial_results, sharded_results)),
    }


#: name -> (full-size kwargs, quick kwargs)
BENCHMARKS: Dict[str, Any] = {
    "event_queue": (bench_event_queue, {"num_events": 200_000},
                    {"num_events": 40_000}),
    "event_churn": (bench_event_churn, {"num_events": 60_000},
                    {"num_events": 12_000}),
    "workload_gen": (bench_workload_gen, {"num_references": 200_000},
                     {"num_references": 40_000}),
    "workload_gen_hotspot": (bench_workload_gen,
                             {"num_references": 200_000, "family": "hotspot"},
                             {"num_references": 40_000, "family": "hotspot"}),
    "undo_log": (bench_undo_log, {"num_records": 300_000},
                 {"num_records": 60_000}),
    "undo_observer": (bench_undo_observer, {"num_records": 300_000},
                      {"num_records": 60_000}),
    "routing": (bench_routing, {"num_decisions": 100_000},
                {"num_decisions": 20_000}),
    "fig4_macro": (bench_fig4_macro, {},
                   {"workloads": ["jbb", "oltp"], "references": 200}),
    "campaign_batched": (bench_campaign_batched, {"references": 80},
                         {"references": 60}),
    "campaign_multiplex": (bench_campaign_multiplex, {"references": 15},
                           {"references": 15, "quick": True}),
    "campaign_sharded": (bench_campaign_sharded,
                         {"references": 80, "workers": 4},
                         {"references": 60, "workers": 2, "quick": True}),
}


#: Functions kept in a cProfile top-N table (everything below the cut is
#: scaffolding noise, everything above it is an optimization candidate).
PROFILE_TOP_N = 25


def profile_table(profiler: Any, top_n: int = PROFILE_TOP_N) -> str:
    """The top-``top_n`` cumulative-time rows of a finished cProfile run."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top_n)
    return buffer.getvalue()


def run_all(quick: bool = False,
            only: Optional[List[str]] = None,
            tier: Optional[str] = None,
            profiles: Optional[Dict[str, str]] = None) -> Dict[str, Any]:
    """Run every benchmark (or a subset) and return the results by name.

    ``tier`` selects the kernel tier (``pure`` / ``compiled`` / ``auto``)
    for the duration of the run; ``None`` keeps the process selection.  The
    choice is mirrored into ``REPRO_KERNEL`` so benchmarks that spawn
    subprocesses (``campaign_batched``) run both legs on the same tier.

    When ``profiles`` is a dict, every benchmark runs under :mod:`cProfile`
    and its top-N cumulative table lands in it keyed by benchmark name (the
    ``--profile`` mode of ``tools/perf_report.py``).  Profiled wall-clock
    carries tracing overhead, so profiled numbers are for *attribution*,
    never for the committed trajectory.
    """
    import os

    from repro import kernel

    prior_env = os.environ.get(kernel.ENV_VAR)
    if tier is not None:
        kernel.set_kernel_tier(tier)
        os.environ[kernel.ENV_VAR] = tier
    try:
        results: Dict[str, Any] = {}
        for name, (fn, full_kwargs, quick_kwargs) in BENCHMARKS.items():
            if only is not None and name not in only:
                continue
            kwargs = quick_kwargs if quick else full_kwargs
            if profiles is None:
                results[name] = fn(**kwargs)
            else:
                import cProfile

                profiler = cProfile.Profile()
                profiler.enable()
                try:
                    results[name] = fn(**kwargs)
                finally:
                    profiler.disable()
                profiles[name] = profile_table(profiler)
        return results
    finally:
        if tier is not None:
            kernel.set_kernel_tier(None)
            if prior_env is None:
                os.environ.pop(kernel.ENV_VAR, None)
            else:
                os.environ[kernel.ENV_VAR] = prior_env

"""Benchmarks regenerating the illustrative Figures 1, 2 and 3."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import (
    fig1_reordering_demo,
    fig2_endpoint_deadlock,
    fig3_switch_deadlock,
)


def test_fig1_adaptive_routing_reorders_messages(benchmark):
    """Figure 1: adaptive routing can violate point-to-point order."""
    result = run_once(benchmark, fig1_reordering_demo.run, pairs=200, seed=7)
    print("\n" + result.format())
    assert result.reordered_pairs["static"] == 0
    assert result.reordered_pairs["adaptive"] > 0


def test_fig2_endpoint_deadlock(benchmark):
    """Figure 2: cross-coupled endpoint queues deadlock without virtual networks."""
    result = run_once(benchmark, fig2_endpoint_deadlock.run)
    print("\n" + result.format())
    assert result.shared_queue_deadlock.deadlocked
    assert not result.virtual_network_deadlock.deadlocked


def test_fig3_switch_deadlock(benchmark):
    """Figure 3: cross-coupled switch buffers deadlock without virtual channels."""
    result = run_once(benchmark, fig3_switch_deadlock.run)
    print("\n" + result.format())
    assert result.no_vc_wedged
    assert result.no_vc_report.deadlocked
    assert not result.vc_report.deadlocked

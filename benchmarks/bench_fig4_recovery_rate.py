"""Benchmark regenerating Figure 4 — performance vs. mis-speculation rate.

Expected shape (paper): up to ten recoveries per second cost essentially
nothing; a hundred per second becomes visible.  The scaled checkpoint
parameters used here are documented in DESIGN.md §2 and EXPERIMENTS.md.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig4_misspeculation_rate


def test_fig4_performance_vs_recovery_rate(benchmark, workloads, references):
    result = run_once(benchmark, fig4_misspeculation_rate.run,
                      workloads, rates=(0.0, 1.0, 10.0, 100.0),
                      references=references)
    print("\n" + result.format())
    print("observed recoveries:", result.recoveries)
    for workload, points in result.normalized.items():
        # The paper's headline: <= 10 recoveries/second is essentially free.
        assert points[1.0] > 0.95, (workload, points)
        assert points[10.0] > 0.90, (workload, points)
        # 100/s costs more than 10/s (monotone shape).
        assert points[100.0] <= points[10.0] + 0.02, (workload, points)

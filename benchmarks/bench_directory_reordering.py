"""Benchmark regenerating the Section 5.3 directory-protocol reordering text
results (reorder rates per virtual network, recoveries, link utilisation).

Expected shape (paper): reorder rates well below 1 % on every virtual
network, only a handful of recoveries, and mean link utilisation in the
teens-to-thirties of percent at 400 MB/s.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import dir_reordering


def test_directory_reordering_and_recovery_rates(benchmark, workloads, references):
    result = run_once(benchmark, dir_reordering.run,
                      workloads, bandwidths=(400e6, 3.2e9), references=references)
    print("\n" + result.format())
    for key, row in result.rows.items():
        assert row["reorder % (fwd-req VN)"] < 1.0, (key, row)
        assert row["reorder % (other VNs)"] < 1.5, (key, row)
        assert row["recoveries"] <= 5, (key, row)

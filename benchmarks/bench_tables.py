"""Benchmarks regenerating Tables 1, 2 and 3 of the paper."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import table1_framework, table2_parameters, table3_workloads


def test_table1_framework_characterisation(benchmark):
    """Table 1: the three speculative designs characterised by the framework."""
    result = run_once(benchmark, table1_framework.run)
    print("\n" + result.format())
    assert len(result.rows) == 5
    assert all(result.wiring_ok.values())


def test_table2_target_system_parameters(benchmark):
    """Table 2: target system parameters (paper scale and benchmark scale)."""
    result = run_once(benchmark, table2_parameters.run)
    print("\n" + result.format())
    assert result.paper_rows["L2 Cache"].startswith("4 MB")


def test_table3_workload_characteristics(benchmark):
    """Table 3: the synthetic analogues of the commercial workload suite."""
    result = run_once(benchmark, table3_workloads.run, references=2_000)
    print("\n" + result.format())
    assert set(result.rows) == {"jbb", "apache", "slashcode", "oltp", "barnes"}

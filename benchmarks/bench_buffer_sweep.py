"""Benchmark regenerating the Section 5.3 interconnect buffer sweep.

Expected shape (paper): performance is steady for generous buffering and
drops sharply once buffers are too small, with deadlocks (detected by the
transaction timeout and resolved by recovery) appearing only at the smallest
size.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import buffer_sweep


def test_no_vc_network_buffer_sweep(benchmark):
    result = run_once(benchmark, buffer_sweep.run, ["oltp"],
                      buffer_sizes=(4, 8, 16, 32), references=300, seed=3)
    print("\n" + result.format())
    rows = result.rows
    large = rows["oltp buf=32"]
    small = rows["oltp buf=4"]
    # Generous buffering: full performance, no deadlocks.
    assert large["deadlock recoveries"] == 0
    assert large["normalized perf"] > 0.95
    # Too-small buffering: deadlocks appear and performance drops sharply.
    assert small["deadlock recoveries"] > 0
    assert small["normalized perf"] < large["normalized perf"]
    # The conventional VC network reference also runs deadlock-free.
    assert rows["oltp vc-network"]["deadlock recoveries"] == 0

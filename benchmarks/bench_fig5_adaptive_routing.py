"""Benchmark regenerating Figure 5 — static vs. adaptive routing at 400 MB/s.

Expected shape (paper): adaptive routing achieves a significant speedup over
static routing on every workload, while reordering-induced recoveries remain
rare (a handful at most across all runs).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import fig5_adaptive_routing


def test_fig5_static_vs_adaptive_routing(benchmark, workloads, references):
    result = run_once(benchmark, fig5_adaptive_routing.run,
                      workloads, references=references)
    print("\n" + result.format())
    print("adaptive recoveries:", result.adaptive_recoveries)
    print("adaptive reorder rates:", result.adaptive_reorder_rate)
    print("static mean link utilisation:", result.static_link_utilization)
    for workload, points in result.normalized.items():
        # Adaptive routing must not lose to static, and typically wins.
        assert points["adaptive"] >= 0.97, (workload, points)
        # Recoveries stay rare (the paper saw only a handful overall).
        assert result.adaptive_recoveries[workload] <= 5
        # Reordering stays well under 1% of messages.
        assert result.adaptive_reorder_rate[workload] < 0.01

"""Tests for the registry-driven workload layer.

Covers the registry (round-trip, figure order, duplicate rejection), the
fail-fast name/params validation at configuration time, the shared
seed/block-size defaults, the canonical-encoding back-compat contract
(``params=None`` encodes identically to pre-registry configs), golden
stream digests for every new family, the family-specific stream shapes
(hotspot bursts, producer/consumer handoff roles, phased epochs, scaled
footprints, mixed slicing), and the ``workload_matrix`` campaign's
determinism contract (serial == parallel == cached, byte-identical).
"""

from __future__ import annotations

import hashlib
import inspect

import pytest

from repro.campaign import (
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    canonical_json,
)
from repro.campaign.spec import config_to_dict
from repro.experiments import workload_matrix
from repro.experiments.common import benchmark_config, default_workloads
from repro.sim.config import (
    DEFAULT_BLOCK_BYTES,
    DEFAULT_WORKLOAD_SEED,
    SystemConfig,
    WorkloadConfig,
)
from repro.system import build_system
from repro.workloads import (
    PROFILES,
    get_family,
    make_workload,
    mix_statistics,
    paper_workload_names,
    register_workload,
    table3_rows,
    validate_workload,
    workload_names,
)
from repro.workloads import registry as registry_module
from repro.workloads.base import SyntheticWorkload
from repro.workloads.families import (
    MixedWorkload,
    PAPER_PROFILES,
    ScaledFamily,
)

#: Content hash of the plain jbb benchmark design point as produced by the
#: pre-registry encoding (``params`` did not exist).  If this pin breaks,
#: every cached campaign result silently invalidates — see config_to_dict's
#: contract.
PRE_REGISTRY_JBB_BENCHMARK_HASH = "a59696aa66bed73cb661"

#: The parameterized scenario families this PR introduces.
NEW_FAMILIES = ("hotspot", "producer_consumer", "phased", "scaled", "mixed")


def _digest(refs) -> str:
    h = hashlib.sha256()
    for op, addr in refs:
        h.update(f"{op.value}:{addr};".encode())
    return h.hexdigest()[:16]


class TestRegistry:
    def test_round_trip_names_cover_the_registered_set(self):
        names = workload_names()
        assert set(names) == set(table3_rows())
        assert set(names) == set(registry_module._REGISTRY)
        assert len(names) == len(set(names))
        for name in names:
            assert get_family(name).name == name

    def test_paper_five_keep_figure_order_and_lead_the_catalogue(self):
        paper = ["jbb", "apache", "slashcode", "oltp", "barnes"]
        assert paper_workload_names() == paper
        assert workload_names()[:5] == paper
        assert list(PROFILES) == paper
        assert set(NEW_FAMILIES) <= set(workload_names())

    def test_unknown_family_raises_with_known_listing(self):
        with pytest.raises(KeyError, match="producer_consumer"):
            get_family("tpcc")

    def test_duplicate_registration_rejected(self, monkeypatch):
        monkeypatch.setattr(registry_module, "_REGISTRY",
                            dict(registry_module._REGISTRY))

        class Dup(registry_module.WorkloadFamily):
            name = "hotspot"

            def build(self, **kwargs):  # pragma: no cover - never built
                raise NotImplementedError

        with pytest.raises(ValueError, match="registered twice"):
            register_workload(Dup)

    def test_table3_rows_carry_the_family_descriptions(self):
        rows = table3_rows()
        assert rows["jbb"] == PROFILES["jbb"].description
        assert "hot blocks" in rows["hotspot"]


class TestSharedDefaults:
    """Satellite: one source of truth for the seed/block-size defaults."""

    def test_make_workload_signature_uses_the_shared_constants(self):
        params = inspect.signature(make_workload).parameters
        assert params["seed"].default is DEFAULT_WORKLOAD_SEED
        assert params["block_bytes"].default is DEFAULT_BLOCK_BYTES

    def test_config_layer_uses_the_shared_constants(self):
        assert WorkloadConfig().seed == DEFAULT_WORKLOAD_SEED
        assert SystemConfig().block_bytes == DEFAULT_BLOCK_BYTES
        assert SystemConfig().l1.block_bytes == DEFAULT_BLOCK_BYTES

    def test_default_built_workload_matches_config_defaults(self):
        generator = make_workload("jbb", num_processors=2)
        assert generator.seed == WorkloadConfig().seed
        assert generator.block_bytes == SystemConfig().block_bytes


class TestFailFast:
    """Satellite: a typo'd workload axis dies at construction time."""

    def test_workload_config_rejects_unknown_name_listing_registry(self):
        with pytest.raises(ValueError, match="producer_consumer"):
            WorkloadConfig(name="tpcc")

    def test_system_config_construction_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload 'tpcc'"):
            SystemConfig(workload=WorkloadConfig(name="tpcc"))

    def test_spec_construction_dies_before_any_simulation(self):
        with pytest.raises(ValueError, match="unknown workload"):
            RunSpec(config=SystemConfig.small(4).with_updates(
                workload=WorkloadConfig(name="jbbb")))

    def test_unknown_param_key_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="does not accept"):
            WorkloadConfig(name="hotspot", params={"hot_block": 4})

    def test_bad_param_value_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="burst_length"):
            WorkloadConfig(name="hotspot", params={"burst_length": 0})
        with pytest.raises(ValueError, match="paper profile"):
            WorkloadConfig(name="scaled", params={"base": "hotspot"})

    def test_bad_fractions_die_at_config_time_naming_the_parameter(self):
        """Out-of-range probabilities must not survive to load_workload,
        and the error must name the user-facing parameter, not the
        internal profile field it feeds."""
        for name, params in (
                ("hotspot", {"hot_fraction": 1.5}),
                ("hotspot", {"write_fraction": -0.1}),
                ("producer_consumer", {"handoff_fraction": 2.0}),
                ("producer_consumer", {"produce_fraction": 1.01}),
                ("phased", {"communicate_shared_fraction": 7.0})):
            (key,) = params
            with pytest.raises(ValueError, match=key):
                WorkloadConfig(name=name, params=params)

    def test_mixed_slice_validation(self):
        with pytest.raises(ValueError, match="unknown workload"):
            validate_workload("mixed", {"slices": [["nope"]]})
        with pytest.raises(ValueError, match="nest"):
            validate_workload("mixed", {"slices": [["mixed"]]})

    def test_profile_override_params_validated_against_profile_fields(self):
        with pytest.raises(ValueError, match="profile overrides"):
            WorkloadConfig(name="jbb", params={"bogus": 1})
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            WorkloadConfig(name="jbb", params={"shared_fraction": 1.5})
        # A valid override is accepted and reaches the generator.
        config = WorkloadConfig(name="jbb", params={"shared_fraction": 0.9})
        assert config.params == {"shared_fraction": 0.9}

    def test_default_workloads_validates_against_the_full_registry(self):
        assert default_workloads() == paper_workload_names()
        assert default_workloads(["hotspot", "jbb"]) == ["hotspot", "jbb"]
        with pytest.raises(ValueError, match="unknown workloads"):
            default_workloads(["tpcc"])


class TestSpecHashStability:
    """Satellite: ``params=None`` encodes identically to pre-PR configs."""

    def test_none_params_omitted_from_canonical_encoding(self):
        payload = config_to_dict(benchmark_config("jbb"))
        assert "params" not in payload["workload"]
        explicit = benchmark_config("jbb").with_updates(
            workload=WorkloadConfig(name="jbb",
                                    params={"shared_fraction": 0.5}))
        assert (config_to_dict(explicit)["workload"]["params"]
                == {"shared_fraction": 0.5})

    def test_pre_registry_benchmark_hash_is_pinned(self):
        """Pre-existing design points must keep their pre-layer cache keys."""
        spec = RunSpec(config=benchmark_config("jbb"))
        assert spec.content_hash() == PRE_REGISTRY_JBB_BENCHMARK_HASH

    def test_explicit_params_change_the_content_hash(self):
        base = RunSpec(config=benchmark_config("jbb"))
        override = RunSpec(config=benchmark_config("jbb").with_updates(
            workload=WorkloadConfig(name="jbb",
                                    params={"shared_fraction": 0.5})))
        assert base.content_hash() != override.content_hash()

    def test_empty_params_normalise_to_none(self):
        """``params={}`` means "family defaults" — the same design point as
        ``params=None``; it must not split the cache key."""
        assert WorkloadConfig(name="jbb", params={}).params is None
        base = RunSpec(config=benchmark_config("jbb"))
        empty = RunSpec(config=benchmark_config("jbb").with_updates(
            workload=WorkloadConfig(
                name="jbb", references_per_processor=500, params={})))
        assert empty.config.workload.params is None
        assert "params" not in config_to_dict(empty.config)["workload"]
        assert empty.content_hash() == base.content_hash()


class TestGoldenDigests:
    """Golden pins per ``(family, params, seed, node)``.

    A mismatch means a family's draw schedule changed (substream names,
    chunk size, burst/epoch structure...).  That is sometimes deliberate —
    then re-pin and call the schema change out, because every simulated
    result of that family shifts with it.
    """

    def test_hotspot_streams_pinned(self):
        w = make_workload("hotspot", num_processors=4, seed=7)
        assert _digest(w.generate(0, 1000)) == "8aea56abbbc988d8"
        assert _digest(w.generate(1, 1000)) == "a609647ff1f8467f"
        custom = make_workload("hotspot", num_processors=4, seed=7,
                               params={"burst_length": 9.0, "hot_blocks": 4})
        assert _digest(custom.generate(0, 1000)) == "35e5fbaceb35591f"

    def test_producer_consumer_streams_pinned(self):
        w = make_workload("producer_consumer", num_processors=4, seed=7)
        assert _digest(w.generate(0, 1000)) == "8661812908b825d1"
        assert _digest(w.generate(1, 1000)) == "afcc512f8bf47308"

    def test_phased_stream_pinned_across_epochs(self):
        w = make_workload("phased", num_processors=4, seed=7)
        # 4000 references cross two epoch boundaries (epoch_length 1500).
        assert _digest(w.generate(0, 4000)) == "54ad965e2dd8f810"

    def test_scaled_stream_pinned_at_64_nodes(self):
        w = make_workload("scaled", num_processors=64, seed=7)
        assert _digest(w.generate(0, 1000)) == "ddca6f5582f3e977"

    def test_mixed_streams_pinned_and_first_slice_unshifted(self):
        w = make_workload("mixed", num_processors=16, seed=7)
        # Node 0 runs the jbb slice at offset zero: byte-identical to the
        # plain jbb stream (the same pin as test_perf_kernel's).
        assert _digest(w.generate(0, 1000)) == "6a427854685bc753"
        assert _digest(w.generate(8, 1000)) == "155ba30cbb72d902"

    def test_paper_profiles_unchanged_by_the_registry_refactor(self):
        w = make_workload("jbb", num_processors=4, seed=7)
        assert _digest(w.generate(0, 1000)) == "6a427854685bc753"


class TestFamilyShapes:
    def test_hotspot_storms_the_hot_set_in_bursts(self):
        params = get_family("hotspot").validate_params(None)
        w = make_workload("hotspot", num_processors=2, seed=3)
        refs = w.generate(0, 8000)
        hot_limit = params["hot_blocks"] * w.block_bytes
        hot = [(op, a) for op, a in refs if a < hot_limit]
        assert len(hot) / len(refs) == pytest.approx(params["hot_fraction"],
                                                     abs=0.05)
        stores = sum(1 for op, _ in hot if op.value == "store")
        assert stores / len(hot) == pytest.approx(params["write_fraction"],
                                                  abs=0.05)
        # Bursts: consecutive hot references mostly repeat one block.
        repeats = sum(1 for i in range(1, len(hot))
                      if hot[i][1] == hot[i - 1][1])
        assert repeats / len(hot) > 0.5

    def test_producer_consumer_roles_are_per_node(self):
        w = make_workload("producer_consumer", num_processors=4, seed=1)
        buffer_bytes = w.buffer_blocks * w.block_bytes
        stage_limit = 4 * buffer_bytes
        for node in range(4):
            own = node * buffer_bytes
            upstream = ((node - 1) % 4) * buffer_bytes
            for op, addr in w.generate(node, 3000):
                if addr >= stage_limit:
                    continue  # private background traffic
                if op.value == "store":
                    assert own <= addr < own + buffer_bytes
                else:
                    assert upstream <= addr < upstream + buffer_bytes

    def test_phased_alternates_sharing_intensity_by_epoch(self):
        params = get_family("phased").validate_params(None)
        epoch = params["epoch_length"]
        w = make_workload("phased", num_processors=2, seed=5)
        refs = w.generate(0, 2 * epoch)
        shared_limit = w._private_base

        def shared_fraction(chunk):
            return sum(1 for _, a in chunk if a < shared_limit) / len(chunk)

        compute, communicate = refs[:epoch], refs[epoch:]
        assert shared_fraction(compute) < 0.15
        assert shared_fraction(communicate) > 0.4

    def test_phased_epoch_position_continues_across_generate_calls(self):
        params = get_family("phased").validate_params(None)
        epoch = params["epoch_length"]
        split = make_workload("phased", num_processors=2, seed=5)
        first = split.generate(0, epoch)
        second = split.generate(0, epoch)
        whole = make_workload("phased", num_processors=2, seed=5)
        assert first + second == whole.generate(0, 2 * epoch)

    def test_scaled_derivation_grows_with_the_machine(self):
        base = PAPER_PROFILES["jbb"]
        at16 = ScaledFamily.derive_profile(base, num_processors=16,
                                           baseline_processors=16)
        assert at16 == type(base)(**{**base.__dict__, "name": "scaled-jbb"})
        at64 = ScaledFamily.derive_profile(base, num_processors=64,
                                           baseline_processors=16)
        assert at64.shared_blocks == 4 * base.shared_blocks
        assert at64.migratory_records == 4 * base.migratory_records
        assert at64.private_blocks == 2 * base.private_blocks
        w16 = make_workload("scaled", num_processors=16, seed=1)
        w64 = make_workload("scaled", num_processors=64, seed=1)
        assert w64.footprint_blocks > 4 * w16.footprint_blocks

    def test_mixed_slices_partition_nodes_and_address_space(self):
        w = make_workload("mixed", num_processors=16, seed=1)
        assert isinstance(w, MixedWorkload)
        assert [(name, first, count) for name, _g, first, count in w.parts] \
            == [("jbb", 0, 8), ("hotspot", 8, 8)]
        jbb_generator = w.parts[0][1]
        hotspot_offset = jbb_generator.footprint_blocks * w.block_bytes
        assert all(addr >= hotspot_offset for _, addr in w.generate(8, 500))
        assert all(addr < hotspot_offset for _, addr in w.generate(0, 500))
        assert w.footprint_blocks == sum(g.footprint_blocks
                                         for _n, g, _f, _c in w.parts)

    def test_mixed_explicit_counts_and_misfit_rejected(self):
        w = make_workload("mixed", num_processors=6, seed=1,
                          params={"slices": [["oltp", 2], ["barnes"]]})
        assert [(n, f, c) for n, _g, f, c in w.parts] == [("oltp", 0, 2),
                                                          ("barnes", 2, 4)]
        with pytest.raises(ValueError, match="do not fit"):
            make_workload("mixed", num_processors=2,
                          params={"slices": [["jbb", 4]]})

    def test_mix_statistics_on_mixed_streams(self):
        w = make_workload("mixed", num_processors=4, seed=2)
        stats = mix_statistics(w.generate_all(800))
        assert stats["nodes"] == 4.0
        assert 0.0 < stats["stores"] < 1.0
        # jbb and hotspot halves differ in store fraction.
        assert stats["store_fraction_spread"] > 0.03
        homogeneous = make_workload("jbb", num_processors=4, seed=2)
        spread = mix_statistics(homogeneous.generate_all(800))
        assert spread["store_fraction_spread"] < stats["store_fraction_spread"]

    def test_profile_override_params_reach_the_generator(self):
        default = make_workload("jbb", num_processors=2, seed=4)
        skewed = make_workload("jbb", num_processors=2, seed=4,
                               params={"shared_fraction": 0.9})
        assert default.generate(0, 500) != skewed.generate(0, 500)
        assert skewed.profile.shared_fraction == 0.9


class TestSystemIntegration:
    def test_every_family_builds_and_loads_at_16_nodes(self):
        for name in workload_names():
            config = benchmark_config(name, references=50)
            system = build_system(config)
            system.load_workload()
            assert all(len(node.processor.references) == 50
                       for node in system.nodes), name

    def test_scaled_family_builds_and_loads_at_64_nodes(self):
        config = benchmark_config("scaled", references=20, num_processors=64)
        system = build_system(config)
        system.load_workload()
        assert len(system.nodes) == 64
        assert all(node.processor.references for node in system.nodes)

    def test_heterogeneous_family_runs_through_the_protocol(self):
        config = SystemConfig.small(num_processors=4, references=80)
        config = config.with_updates(
            workload=WorkloadConfig(name="producer_consumer",
                                    references_per_processor=80))
        result = build_system(config).run()
        assert result.finished
        assert result.workload == "producer_consumer"


class TestWorkloadMatrix:
    SUBSET = dict(workloads=("producer_consumer",), references=60)

    def test_rows_cover_the_grid(self):
        result = workload_matrix.run(**self.SUBSET)
        assert set(result.rows) == {
            "producer_consumer/directory@vc",
            "producer_consumer/directory@no-vc",
            "producer_consumer/snooping@vc",
            "producer_consumer/snooping@no-vc"}
        for row in result.rows.values():
            assert row["finished"]

    def test_serial_parallel_and_cached_are_byte_identical(self, tmp_path):
        serial = workload_matrix.run(executor=SerialExecutor(), **self.SUBSET)
        with ParallelExecutor(max_workers=2) as executor:
            parallel = workload_matrix.run(executor=executor, **self.SUBSET)
        cache = ResultCache(str(tmp_path / "cache"))
        warm = workload_matrix.run(executor=SerialExecutor(cache=cache),
                                   **self.SUBSET)
        cached = workload_matrix.run(executor=SerialExecutor(cache=cache),
                                     **self.SUBSET)
        assert cache.hits > 0
        blobs = {canonical_json(r.to_json())
                 for r in (serial, parallel, warm, cached)}
        assert len(blobs) == 1

    def test_quick_mode_keeps_one_family_per_kind(self):
        assert workload_matrix.QUICK_WORKLOADS == ("jbb", "hotspot")
        paper = set(paper_workload_names())
        kinds = {name in paper for name in workload_matrix.QUICK_WORKLOADS}
        assert kinds == {True, False}

    def test_registered_with_the_campaign(self):
        from repro.campaign import discover, experiment_names
        discover()
        assert "workload_matrix" in experiment_names()

"""Property-based end-to-end tests.

Hypothesis drives small but complete multiprocessor runs across random
seeds, workloads and routing policies, asserting the invariants the paper's
correctness argument rests on: every run terminates with all references
retired, the coherence state is consistent (SWMR, directory/cache
agreement), recoveries only ever happen for the speculation kinds that are
actually armed, and the run is deterministic for a fixed seed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.events import SpeculationKind
from repro.sim.config import (
    InterconnectConfig,
    ProtocolKind,
    ProtocolVariant,
    RoutingPolicy,
    SystemConfig,
    WorkloadConfig,
)
from repro.system import build_system

WORKLOADS = ["jbb", "apache", "slashcode", "oltp", "barnes"]

_slow_settings = settings(max_examples=8, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow,
                                                 HealthCheck.data_too_large])


@given(seed=st.integers(0, 1_000), workload=st.sampled_from(WORKLOADS),
       routing=st.sampled_from([RoutingPolicy.STATIC, RoutingPolicy.ADAPTIVE]))
@_slow_settings
def test_directory_runs_terminate_with_consistent_state(seed, workload, routing):
    config = SystemConfig.small(num_processors=4, references=120, seed=seed)
    config = config.with_updates(
        workload=WorkloadConfig(name=workload, references_per_processor=120, seed=seed),
        interconnect=InterconnectConfig(mesh_width=2, mesh_height=2,
                                        link_latency_cycles=4,
                                        switch_buffer_capacity=16,
                                        routing=routing))
    system = build_system(config)
    result = system.run(max_cycles=3_000_000)
    assert result.finished
    assert result.references_completed >= 4 * 120
    assert system.invariant_errors() == []
    # Recoveries, if any, must come from armed speculation kinds only.
    assert set(result.recoveries_by_kind) <= {
        SpeculationKind.DIRECTORY_P2P_ORDER.value,
        SpeculationKind.INTERCONNECT_DEADLOCK.value}


@given(seed=st.integers(0, 1_000), workload=st.sampled_from(WORKLOADS),
       variant=st.sampled_from([ProtocolVariant.SPECULATIVE, ProtocolVariant.FULL]))
@_slow_settings
def test_snooping_runs_terminate_with_consistent_state(seed, workload, variant):
    config = SystemConfig.small(num_processors=4, references=120, seed=seed)
    config = config.with_updates(
        protocol=ProtocolKind.SNOOPING, variant=variant,
        workload=WorkloadConfig(name=workload, references_per_processor=120, seed=seed))
    system = build_system(config)
    result = system.run(max_cycles=3_000_000)
    assert result.finished
    assert result.references_completed >= 4 * 120
    assert system.invariant_errors() == []


@given(seed=st.integers(0, 200))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_runs_are_deterministic_for_a_fixed_seed(seed):
    config = SystemConfig.small(num_processors=4, references=80, seed=seed)
    first = build_system(config).run()
    second = build_system(SystemConfig.small(num_processors=4, references=80,
                                             seed=seed)).run()
    assert first.runtime_cycles == second.runtime_cycles
    assert first.messages_delivered == second.messages_delivered
    assert first.l2_misses == second.l2_misses


@given(seed=st.integers(0, 200), rate=st.sampled_from([5.0, 20.0]))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_recovery_never_loses_or_duplicates_work(seed, rate):
    """Injected recoveries roll work back but every reference still retires
    exactly to completion (no run finishes with fewer retired references)."""
    config = SystemConfig.small(num_processors=4, references=120, seed=seed)
    system = build_system(config)
    system.attach_recovery_injector(rate_per_second=rate)
    result = system.run(max_cycles=10_000_000)
    assert result.finished
    assert result.references_completed >= 4 * 120
    assert system.invariant_errors() == []

"""Integration tests: whole systems running workloads end to end."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.events import SpeculationKind
from repro.sim.config import (
    CheckpointConfig,
    InterconnectConfig,
    ProtocolKind,
    ProtocolVariant,
    RoutingPolicy,
    SystemConfig,
    WorkloadConfig,
)
from repro.system import DirectorySystem, SnoopingSystem, build_system


class TestBuilder:
    def test_builds_directory_system(self, small_config):
        assert isinstance(build_system(small_config), DirectorySystem)

    def test_builds_snooping_system(self, snooping_config):
        assert isinstance(build_system(snooping_config), SnoopingSystem)

    def test_label_defaults_describe_configuration(self, small_config):
        system = build_system(small_config)
        assert "speculative" in system.label

    def test_custom_label(self, small_config):
        assert build_system(small_config, label="mine").label == "mine"


class TestDirectorySystemRuns:
    def test_run_completes_all_references(self, completed_directory_run):
        system, result = completed_directory_run
        assert result.finished
        expected = (system.config.num_processors
                    * system.config.workload.references_per_processor)
        assert result.references_completed >= expected

    def test_no_recoveries_under_static_routing(self, completed_directory_run):
        _, result = completed_directory_run
        assert result.recoveries == 0
        assert result.reorder_rate_overall == 0.0

    def test_coherence_invariants_hold_at_end(self, completed_directory_run):
        system, _ = completed_directory_run
        assert system.invariant_errors() == []

    def test_checkpoints_were_taken(self, completed_directory_run):
        _, result = completed_directory_run
        assert result.checkpoints_taken > 1
        assert result.peak_log_entries > 0

    def test_network_traffic_happened(self, completed_directory_run):
        _, result = completed_directory_run
        assert result.messages_delivered > 0
        assert result.mean_message_latency > 0
        assert 0.0 < result.mean_link_utilization <= 1.0

    def test_l2_statistics_populated(self, completed_directory_run):
        _, result = completed_directory_run
        assert result.l2_misses > 0
        assert 0.0 < result.l2_miss_rate <= 1.0

    def test_same_seed_reproduces_runtime(self):
        config = SystemConfig.small(num_processors=4, references=150, seed=21)
        first = build_system(config).run()
        second = build_system(SystemConfig.small(num_processors=4,
                                                 references=150, seed=21)).run()
        assert first.runtime_cycles == second.runtime_cycles
        assert first.references_completed == second.references_completed

    def test_different_seed_changes_timing(self):
        a = build_system(SystemConfig.small(num_processors=4, references=150, seed=1)).run()
        b = build_system(SystemConfig.small(num_processors=4, references=150, seed=2)).run()
        assert a.runtime_cycles != b.runtime_cycles


class TestAdaptiveSpeculativeSystem:
    def test_adaptive_run_completes_with_rare_recoveries(self, completed_adaptive_run):
        system, result = completed_adaptive_run
        assert result.finished
        # The paper's headline: mis-speculations are rare.  Allow a handful.
        assert result.recoveries <= 5
        assert system.invariant_errors() == []

    def test_reorder_rate_is_below_one_percent(self, completed_adaptive_run):
        _, result = completed_adaptive_run
        assert result.reorder_rate_overall < 0.01

    def test_recoveries_only_of_expected_kinds(self, completed_adaptive_run):
        _, result = completed_adaptive_run
        allowed = {SpeculationKind.DIRECTORY_P2P_ORDER.value,
                   SpeculationKind.INTERCONNECT_DEADLOCK.value}
        assert set(result.recoveries_by_kind) <= allowed


class TestRecoveryInjection:
    def test_injected_recoveries_slow_but_do_not_break_the_system(self):
        base_cfg = SystemConfig.small(num_processors=4, references=250, seed=13)
        baseline = build_system(base_cfg).run()
        injected_cfg = SystemConfig.small(num_processors=4, references=250, seed=13)
        system = build_system(injected_cfg)
        system.attach_recovery_injector(rate_per_second=20)
        result = system.run(max_cycles=20 * baseline.runtime_cycles)
        assert result.finished
        assert result.recoveries > 0
        assert result.runtime_cycles >= baseline.runtime_cycles
        assert system.invariant_errors() == []
        # Results are still functionally complete: every reference retired.
        assert result.references_completed >= baseline.references_completed

    def test_zero_rate_injector_is_noop(self):
        config = SystemConfig.small(num_processors=4, references=100, seed=13)
        system = build_system(config)
        system.attach_recovery_injector(rate_per_second=0)
        result = system.run()
        assert result.recoveries == 0


class TestNoVcNetworkSystem:
    def _config(self, buffer_capacity: int) -> SystemConfig:
        cfg = SystemConfig.small(num_processors=16, references=150, seed=3)
        return dataclasses.replace(
            cfg,
            interconnect=InterconnectConfig(
                mesh_width=4, mesh_height=4, routing=RoutingPolicy.STATIC,
                link_bandwidth_bytes_per_sec=800e6, link_latency_cycles=4,
                switch_buffer_capacity=buffer_capacity,
                speculative_no_vc=True, nic_injection_limit=4),
            checkpoint=CheckpointConfig(directory_interval_cycles=20_000,
                                        recovery_latency_cycles=2_000),
            workload=WorkloadConfig(name="oltp", references_per_processor=150, seed=3))

    def test_ample_buffers_incur_no_deadlock(self):
        system = build_system(self._config(32))
        result = system.run(max_cycles=4_000_000)
        assert result.finished
        assert result.recoveries_of(SpeculationKind.INTERCONNECT_DEADLOCK) == 0

    def test_tiny_buffers_deadlock_and_recover(self):
        system = build_system(self._config(4))
        result = system.run(max_cycles=4_000_000)
        # Deadlocks are detected by timeout and recovered from; the system
        # keeps making forward progress (references retire) even if it does
        # not finish inside the bounded horizon.
        assert result.recoveries_of(SpeculationKind.INTERCONNECT_DEADLOCK) > 0
        assert result.references_completed > 0
        assert system.invariant_errors() == []


class TestSnoopingSystemRuns:
    def test_run_completes(self, completed_snooping_run):
        system, result = completed_snooping_run
        assert result.finished
        assert result.references_completed >= (
            system.config.num_processors
            * system.config.workload.references_per_processor)

    def test_no_corner_case_recoveries_in_normal_runs(self, completed_snooping_run):
        _, result = completed_snooping_run
        assert result.recoveries_of(SpeculationKind.SNOOPING_CORNER_CASE) == 0

    def test_swmr_invariant(self, completed_snooping_run):
        system, _ = completed_snooping_run
        assert system.invariant_errors() == []

    def test_bus_requests_counted(self, completed_snooping_run):
        _, result = completed_snooping_run
        assert result.messages_delivered > 0

    def test_full_and_speculative_variants_perform_identically_without_races(self):
        base = SystemConfig.small(num_processors=4, references=200, seed=17).with_updates(
            protocol=ProtocolKind.SNOOPING, variant=ProtocolVariant.SPECULATIVE)
        spec = build_system(base).run()
        full = build_system(base.with_updates(variant=ProtocolVariant.FULL)).run()
        assert spec.recoveries == 0
        assert spec.runtime_cycles == full.runtime_cycles


class TestRunResult:
    def test_normalized_to_and_summary(self, completed_directory_run):
        _, result = completed_directory_run
        assert result.normalized_to(result) == pytest.approx(1.0)
        line = result.summary_line()
        assert result.workload in line
        assert "runtime" in line

    def test_normalization_rejects_mismatched_workloads(self, completed_directory_run):
        _, result = completed_directory_run
        import copy
        other = copy.copy(result)
        other.workload = "different"
        from repro.analysis.metrics import normalized_performance
        with pytest.raises(ValueError):
            normalized_performance(result, other)

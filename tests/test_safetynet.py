"""Unit tests for the SafetyNet checkpoint/recovery substrate."""

from __future__ import annotations

from typing import Any, Dict, List

import pytest

from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.safetynet.checkpoint import Checkpoint, CheckpointParticipant
from repro.safetynet.log import CheckpointLogBuffer, UndoRecord
from repro.safetynet.manager import SafetyNet
from repro.sim.config import CheckpointConfig
from repro.sim.engine import Simulator


def _event(kind=SpeculationKind.INJECTED, at=0) -> MisspeculationEvent:
    return MisspeculationEvent(kind=kind, detected_at=at)


class FakeParticipant(CheckpointParticipant):
    """A minimal checkpoint participant: one integer of state."""

    def __init__(self, name: str) -> None:
        self._name = name
        self.value = 0
        self.restored_to: List[int] = []
        self.resume_at = 0

    @property
    def participant_id(self) -> str:
        return self._name

    def checkpoint_snapshot(self) -> int:
        return self.value

    def checkpoint_restore(self, snapshot: int, *, resume_at: int) -> None:
        self.value = snapshot
        self.restored_to.append(snapshot)
        self.resume_at = resume_at


class TestCheckpointLogBuffer:
    def _record(self, seq: int, addr: int = 0, old: object = 1) -> UndoRecord:
        return UndoRecord(checkpoint_seq=seq, target_id="t", address=addr,
                          field="state", old_value=old, logged_at=0)

    def test_append_and_occupancy(self):
        log = CheckpointLogBuffer("l", capacity_bytes=720, entry_bytes=72)
        for i in range(5):
            log.append(self._record(0, addr=i))
        assert log.occupancy_entries == 5
        assert log.occupancy_bytes == 5 * 72
        assert log.total_logged == 5

    def test_records_since_orders_oldest_first(self):
        log = CheckpointLogBuffer("l", capacity_bytes=7200, entry_bytes=72)
        log.append(self._record(2, addr=2))
        log.append(self._record(1, addr=1))
        log.append(self._record(3, addr=3))
        records = log.records_since(2)
        assert [r.checkpoint_seq for r in records] == [2, 3]

    def test_commit_frees_old_checkpoints(self):
        log = CheckpointLogBuffer("l", capacity_bytes=7200, entry_bytes=72)
        for seq in (0, 1, 2):
            log.append(self._record(seq))
        freed = log.commit_through(1)
        assert freed == 2
        assert log.occupancy_entries == 1

    def test_discard_since(self):
        log = CheckpointLogBuffer("l", capacity_bytes=7200, entry_bytes=72)
        for seq in (0, 1, 2):
            log.append(self._record(seq))
        dropped = log.discard_since(1)
        assert dropped == 2
        assert log.occupancy_entries == 1

    def test_overflow_counted_not_dropped(self):
        log = CheckpointLogBuffer("l", capacity_bytes=72, entry_bytes=72)
        log.append(self._record(0))
        log.append(self._record(0))
        assert log.overflow_stalls == 1
        assert log.occupancy_entries == 2

    def test_size_validation(self):
        with pytest.raises(ValueError):
            CheckpointLogBuffer("l", capacity_bytes=0, entry_bytes=72)


class TestSafetyNetCheckpointing:
    def make(self, sim: Simulator, interval_cycles=1_000) -> SafetyNet:
        return SafetyNet(sim, CheckpointConfig(
            directory_interval_cycles=interval_cycles,
            recovery_latency_cycles=100,
            register_checkpoint_latency_cycles=10,
            outstanding_checkpoints=3,
        ), num_nodes=2, interval_cycles=interval_cycles)

    def test_requires_exactly_one_time_base(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SafetyNet(sim, CheckpointConfig(), num_nodes=1)
        with pytest.raises(ValueError):
            SafetyNet(sim, CheckpointConfig(), num_nodes=1,
                      interval_cycles=10, interval_requests=10)

    def test_periodic_checkpoints_created(self):
        sim = Simulator()
        safetynet = self.make(sim, interval_cycles=500)
        safetynet.start()
        sim.schedule(2_400, lambda: None)
        sim.run(until=2_400)
        # Initial checkpoint + one every 500 cycles.
        assert safetynet.checkpoints_taken >= 5

    def test_request_based_checkpoints(self):
        sim = Simulator()
        safetynet = SafetyNet(sim, CheckpointConfig(), num_nodes=1,
                              interval_requests=10)
        for _ in range(25):
            safetynet.note_request()
        assert safetynet.checkpoints_taken == 3  # initial + 2

    def test_old_checkpoints_committed(self):
        sim = Simulator()
        safetynet = self.make(sim)
        observer = safetynet.register_store("t", 0, lambda a, f, v: None)
        for i in range(6):
            observer(i, "state", "old", "new")
            safetynet._create_checkpoint()
        # Only `outstanding_checkpoints` stay uncommitted.
        assert len(safetynet._checkpoints) == 3
        assert safetynet.logs[0].occupancy_entries <= 6

    def test_participant_snapshots_recorded(self):
        sim = Simulator()
        safetynet = self.make(sim)
        participant = FakeParticipant("p0")
        safetynet.register_participant(participant)
        participant.value = 41
        checkpoint = safetynet._create_checkpoint()
        assert checkpoint.snapshots["p0"] == 41


class TestSafetyNetRecovery:
    def build(self):
        sim = Simulator()
        safetynet = SafetyNet(sim, CheckpointConfig(
            directory_interval_cycles=1_000, recovery_latency_cycles=200,
            register_checkpoint_latency_cycles=50), num_nodes=1,
            interval_cycles=1_000)
        store: Dict[int, Any] = {}

        def restore(address, field, old_value):
            if old_value is None:
                store.pop(address, None)
            else:
                store[address] = old_value

        observer = safetynet.register_store("store", 0, restore)

        def tracked_write(address, value):
            old = store.get(address)
            observer(address, "value", old, value)
            store[address] = value

        return sim, safetynet, store, tracked_write

    def test_recovery_restores_logged_state(self):
        sim, safetynet, store, write = self.build()
        write(0x40, 1)
        write(0x80, 2)
        safetynet._create_checkpoint()     # recovery point: {0x40:1, 0x80:2}
        write(0x40, 10)
        write(0xC0, 30)
        record = safetynet.recover(_event())
        assert store == {0x40: 1, 0x80: 2}
        assert record.log_entries_undone == 2

    def test_recovery_rolls_back_participants_and_stalls(self):
        sim, safetynet, store, write = self.build()
        participant = FakeParticipant("p0")
        safetynet.register_participant(participant)
        participant.value = 5
        safetynet._create_checkpoint()
        participant.value = 9
        record = safetynet.recover(_event())
        assert participant.value == 5
        assert participant.resume_at == record.resumed_at
        assert record.resumed_at == sim.now + 200 + 50
        assert safetynet.stalled_until == record.resumed_at

    def test_recovery_invokes_squash_hooks(self):
        sim, safetynet, store, write = self.build()
        calls = []
        safetynet.add_squash_hook(lambda: calls.append("a") or 3)
        safetynet.add_squash_hook(lambda: calls.append("b"))
        record = safetynet.recover(_event())
        assert calls == ["a", "b"]
        assert record.messages_squashed == 3

    def test_recovery_work_lost_accounting(self):
        sim, safetynet, store, write = self.build()
        safetynet._create_checkpoint()
        sim.schedule(400, lambda: None)
        sim.run()
        record = safetynet.recover(_event(at=sim.now))
        assert record.work_lost_cycles == 400
        assert record.total_cost_cycles >= 400 + 200

    def test_recovery_discards_new_epoch_log_records(self):
        sim, safetynet, store, write = self.build()
        write(0x40, 1)
        safetynet._create_checkpoint()
        write(0x40, 2)
        safetynet.recover(_event())
        # The undone records are gone: a second recovery has nothing to undo.
        record = safetynet.recover(_event())
        assert record.log_entries_undone == 0

    def test_recovery_counts_by_kind(self):
        sim, safetynet, store, write = self.build()
        safetynet.recover(_event(SpeculationKind.INTERCONNECT_DEADLOCK))
        safetynet.recover(_event(SpeculationKind.INJECTED))
        assert safetynet.recovery_count() == 2
        assert safetynet.recovery_count(SpeculationKind.INTERCONNECT_DEADLOCK) == 1

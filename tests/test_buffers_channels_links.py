"""Unit and property tests for buffers, virtual channels and links."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.interconnect.buffers import BufferFullError, FiniteBuffer
from repro.interconnect.link import Link
from repro.interconnect.message import MessageClass, NetworkMessage, VirtualNetwork
from repro.interconnect.virtual_channel import ChannelId, ChannelSet
from repro.sim.engine import Simulator


def _msg(src=0, dst=1, msg_class=MessageClass.DATA) -> NetworkMessage:
    return NetworkMessage(src=src, dst=dst, msg_class=msg_class, size_bytes=72)


class TestFiniteBuffer:
    def test_fifo_order(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 4)
        for i in range(3):
            buf.push(i)
        assert [buf.pop() for _ in range(3)] == [0, 1, 2]

    def test_push_full_raises(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 1)
        buf.push(1)
        with pytest.raises(BufferFullError):
            buf.push(2)

    def test_reservation_counts_against_capacity(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 2)
        assert buf.reserve()
        assert buf.reserve()
        assert not buf.reserve()
        assert buf.is_full

    def test_push_reserved_consumes_reservation(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 2)
        assert buf.reserve()
        buf.push_reserved("x")
        assert len(buf) == 1
        assert buf.occupancy == 1

    def test_push_reserved_without_reservation_raises(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 2)
        with pytest.raises(RuntimeError):
            buf.push_reserved("x")

    def test_cancel_reservation(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 1)
        assert buf.reserve()
        buf.cancel_reservation()
        assert buf.free_slots == 1
        with pytest.raises(RuntimeError):
            buf.cancel_reservation()

    def test_drain_clears_everything(self):
        buf: FiniteBuffer[int] = FiniteBuffer("b", 4)
        buf.push(1)
        buf.reserve()
        dropped = buf.drain()
        assert dropped == [1]
        assert buf.occupancy == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FiniteBuffer("b", 1).pop()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FiniteBuffer("b", 0)

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, ops):
        """Property: occupancy stays within [0, capacity] under any op mix."""
        buf: FiniteBuffer[int] = FiniteBuffer("b", 4)
        for op in ops:
            if op == 0:
                buf.reserve()
            elif op == 1 and buf._reserved > 0:
                buf.push_reserved(1)
            elif op == 2 and len(buf) > 0:
                buf.pop()
            assert 0 <= buf.occupancy <= buf.capacity
            assert buf.free_slots == buf.capacity - buf.occupancy


class TestChannelSet:
    def test_shared_mode_has_single_buffer(self):
        channels = ChannelSet("p", virtual_networks=4, virtual_channels=2,
                              capacity_per_channel=8, shared=True)
        assert len(channels.buffers()) == 1
        assert channels.channel_for(_msg()) == ChannelId(0, 0)

    def test_vc_mode_has_one_buffer_per_vn_vc(self):
        channels = ChannelSet("p", virtual_networks=4, virtual_channels=2,
                              capacity_per_channel=8, shared=False)
        assert len(channels.buffers()) == 8

    def test_stream_maps_to_stable_channel(self):
        channels = ChannelSet("p", virtual_networks=4, virtual_channels=2,
                              capacity_per_channel=8, shared=False)
        a = channels.channel_for(_msg(src=1, dst=2))
        b = channels.channel_for(_msg(src=1, dst=2))
        assert a == b

    def test_different_classes_use_different_virtual_networks(self):
        channels = ChannelSet("p", virtual_networks=4, virtual_channels=1,
                              capacity_per_channel=8, shared=False)
        req = channels.channel_for(_msg(msg_class=MessageClass.REQUEST_READ_ONLY))
        rsp = channels.channel_for(_msg(msg_class=MessageClass.DATA))
        assert req.virtual_network != rsp.virtual_network

    def test_reserve_and_free_slots(self):
        channels = ChannelSet("p", virtual_networks=4, virtual_channels=1,
                              capacity_per_channel=2, shared=False)
        message = _msg()
        assert channels.free_slots_for(message) == 2
        ok, cid = channels.reserve_for(message)
        assert ok
        channels.buffer(cid).push_reserved(message)
        assert channels.free_slots_for(message) == 1

    def test_reserve_fails_when_full(self):
        channels = ChannelSet("p", virtual_networks=1, virtual_channels=1,
                              capacity_per_channel=1, shared=True)
        message = _msg()
        ok, cid = channels.reserve_for(message)
        assert ok
        ok2, _ = channels.reserve_for(message)
        assert not ok2

    def test_drain_returns_queued_messages(self):
        channels = ChannelSet("p", virtual_networks=2, virtual_channels=1,
                              capacity_per_channel=4, shared=False)
        message = _msg()
        ok, cid = channels.reserve_for(message)
        channels.buffer(cid).push_reserved(message)
        assert channels.drain() == [message]
        assert channels.occupancy() == 0

    def test_total_capacity(self):
        channels = ChannelSet("p", virtual_networks=4, virtual_channels=2,
                              capacity_per_channel=8, shared=False)
        assert channels.total_capacity() == 64


class TestLink:
    def test_serialization_scales_with_size(self):
        sim = Simulator()
        link = Link("l", sim, latency_cycles=8, cycles_per_byte=10.0)
        assert link.serialization_cycles(72) == 720
        assert link.serialization_cycles(8) == 80

    def test_occupy_accounts_busy_time(self):
        sim = Simulator()
        link = Link("l", sim, latency_cycles=8, cycles_per_byte=1.0)
        arrival = link.occupy(10)
        assert arrival == 10 + 8
        assert link.is_busy
        assert link.busy_cycles == 10

    def test_back_to_back_messages_serialise(self):
        sim = Simulator()
        link = Link("l", sim, latency_cycles=2, cycles_per_byte=1.0)
        first = link.occupy(10)
        second = link.occupy(10)
        assert second == first + 10

    def test_utilization(self):
        sim = Simulator()
        link = Link("l", sim, latency_cycles=0, cycles_per_byte=1.0)
        link.occupy(50)
        assert link.utilization(100) == pytest.approx(0.5)
        assert link.utilization(0) == 0.0

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link("l", sim, latency_cycles=-1, cycles_per_byte=1.0)
        with pytest.raises(ValueError):
            Link("l", sim, latency_cycles=1, cycles_per_byte=0.0)


class TestMessageClassification:
    def test_virtual_network_mapping(self):
        assert MessageClass.REQUEST_READ_WRITE.virtual_network == VirtualNetwork.REQUEST
        assert MessageClass.WRITEBACK.virtual_network == VirtualNetwork.REQUEST
        assert MessageClass.WRITEBACK_ACK.virtual_network == VirtualNetwork.FORWARDED_REQUEST
        assert MessageClass.DATA.virtual_network == VirtualNetwork.RESPONSE
        assert MessageClass.FINAL_ACK.virtual_network == VirtualNetwork.FINAL_ACK

    def test_data_classes_carry_data(self):
        assert MessageClass.DATA.carries_data
        assert MessageClass.WRITEBACK.carries_data
        assert not MessageClass.ACK.carries_data

    def test_ordering_key_uses_virtual_network(self):
        a = _msg(src=1, dst=2, msg_class=MessageClass.WRITEBACK_ACK)
        b = _msg(src=1, dst=2, msg_class=MessageClass.FORWARDED_REQUEST_READ_WRITE)
        assert a.ordering_key() == b.ordering_key()

    def test_latency_requires_delivery(self):
        message = _msg()
        with pytest.raises(ValueError):
            _ = message.latency

"""Tests for cross-run multiplexed execution (``MultiplexExecutor``).

The executor interleaves run *construction* with run *execution* inside one
warm process; the load-bearing property is that the interleave is invisible:
results must stay byte-identical to serial execution for every width, with
and without a result cache, and the runner must refuse to combine
``--multiplex`` with the other execution strategies.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    BatchExecutor,
    MultiplexExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    canonical_json,
    clear_memos,
    make_executor,
    memo_stats,
)
from repro.experiments import runner
from repro.sim.config import ProtocolKind, SystemConfig
from repro.system.results import RunResult


def small_spec(references: int = 120, seed: int = 1, **spec_kwargs) -> RunSpec:
    return RunSpec(config=SystemConfig.small(4, references=references, seed=seed),
                   **spec_kwargs)


def mixed_specs() -> list:
    """A small batch spanning both protocols, recovery, and artifact groups."""
    directory = SystemConfig.small(4, references=100, seed=3)
    snooping = directory.with_updates(protocol=ProtocolKind.SNOOPING)
    return [
        small_spec(references=150),
        small_spec(references=150, seed=2),
        RunSpec(config=snooping),
        RunSpec(config=directory),
        small_spec(references=100, recovery_rate_per_second=0.0),
        small_spec(references=100, seed=5, recovery_rate_per_second=2e9),
    ]


def result_bytes(result: RunResult) -> str:
    return canonical_json(result.to_json())


class TestMultiplexDeterminism:
    def test_multiplexed_matches_serial_byte_for_byte(self):
        specs = mixed_specs()
        serial = [result_bytes(r) for r in SerialExecutor().map(specs)]
        multiplexed = [result_bytes(r) for r in MultiplexExecutor().map(specs)]
        assert multiplexed == serial

    def test_every_width_is_identical(self):
        """width=1 degenerates to batched order; wider windows interleave
        more aggressively -- none of it may leak into the results."""
        specs = mixed_specs()
        reference = [result_bytes(r) for r in SerialExecutor().map(specs)]
        for width in (1, 2, 3, 8):
            got = [result_bytes(r)
                   for r in MultiplexExecutor(width=width).map(specs)]
            assert got == reference, f"divergence at width={width}"

    def test_matches_batched_executor(self):
        specs = mixed_specs()
        batched = [result_bytes(r) for r in BatchExecutor().map(specs)]
        multiplexed = [result_bytes(r) for r in MultiplexExecutor().map(specs)]
        assert multiplexed == batched

    def test_results_come_back_in_spec_order(self):
        specs = [small_spec(references=60, seed=s, label=f"point-{s}")
                 for s in range(1, 6)]
        results = MultiplexExecutor(width=3).map(specs)
        assert [r.config_label for r in results] == \
               [s.label for s in specs]

    def test_cache_roundtrip_is_identical(self, tmp_path):
        specs = mixed_specs()[:3]
        cold = MultiplexExecutor(cache=ResultCache(str(tmp_path)))
        warm = MultiplexExecutor(cache=ResultCache(str(tmp_path)))
        first = [result_bytes(r) for r in cold.map(specs)]
        second = [result_bytes(r) for r in warm.map(specs)]
        assert first == second

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            MultiplexExecutor(width=0)

    def test_set_pool_disabled_after_map(self):
        from repro.coherence import cache as cache_module

        MultiplexExecutor().map([small_spec(references=60)])
        assert not cache_module._POOL_ENABLED
        assert not cache_module._SET_POOL

    def test_memo_stats_counts_hits(self):
        clear_memos()
        spec_a = small_spec(references=80, seed=7)
        spec_b = small_spec(references=80, seed=7, max_cycles=10_000_000)
        MultiplexExecutor().map([spec_a, spec_b])
        stats = memo_stats()
        assert stats["stream_misses"] >= 1
        assert stats["stream_hits"] >= 1


class TestMakeExecutorMultiplexed:
    def test_selects_multiplexed_kind(self):
        executor = make_executor(multiplexed=True)
        assert isinstance(executor, MultiplexExecutor)

    @pytest.mark.parametrize("kwargs", [
        {"parallel": 2},
        {"batched": True},
        {"workers": 1, "cache_dir": "unused"},
    ])
    def test_conflicting_strategies_rejected(self, kwargs):
        with pytest.raises(ValueError, match="multiplexed"):
            make_executor(multiplexed=True, **kwargs)


class TestRunnerMultiplexFlag:
    """Pin the whole executor-flag mutual-exclusion matrix at the CLI."""

    @pytest.mark.parametrize("argv", [
        ["--multiplex", "--parallel", "2"],
        ["--multiplex", "--batched"],
        ["--multiplex", "--workers", "1"],
        ["--multiplex", "--parallel", "2", "--batched"],
    ])
    def test_multiplex_excludes_other_strategies(self, argv, capsys):
        with pytest.raises(SystemExit):
            runner.main(argv + ["--only", "fig2", "--quick"])
        assert "--multiplex" in capsys.readouterr().err

    def test_multiplex_quick_report_matches_serial(self, tmp_path):
        serial_path = tmp_path / "serial.json"
        mux_path = tmp_path / "mux.json"
        assert runner.main(["--only", "fig2", "--quick",
                            "--json", str(serial_path)]) == 0
        assert runner.main(["--only", "fig2", "--quick", "--multiplex",
                            "--json", str(mux_path)]) == 0
        serial = json.loads(serial_path.read_text())
        mux = json.loads(mux_path.read_text())
        # Execution-side blocks differ (memo traffic, cache stats); the
        # science payload must not.
        for payload in (serial, mux):
            for key in ("cache", "kernel", "memos"):
                payload.pop(key, None)
        assert canonical_json(mux) == canonical_json(serial)

    def test_memos_block_is_execution_side(self, tmp_path):
        """The runner surfaces memo_stats() next to the kernel block, and
        compare_reports strips it: reports stay byte-comparable."""
        import subprocess
        import sys

        path = tmp_path / "report.json"
        assert runner.main(["--only", "fig2", "--quick", "--multiplex",
                            "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert "memos" in payload
        assert {"stream_hits", "stream_misses"} <= set(payload["memos"])

        doctored = tmp_path / "doctored.json"
        edited = dict(payload)
        edited["memos"] = {k: v + 17 for k, v in payload["memos"].items()}
        doctored.write_text(json.dumps(edited))
        proc = subprocess.run(
            [sys.executable, "tools/compare_reports.py",
             str(path), str(doctored)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

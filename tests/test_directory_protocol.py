"""Protocol-level tests for the MOSI directory protocol.

These tests wire real cache controllers and directory controllers through a
direct-delivery harness (no torus in between) so individual transitions and
races can be exercised deterministically — including the Section 3.1
writeback race, reproduced by delaying the ForwardedRequestReadWrite behind
the WritebackAck exactly as an adaptively routed network would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.coherence.cache import CacheArray
from repro.coherence.common import MemoryOp, MemoryRequest, home_node
from repro.coherence.directory.cache_controller import DirectoryCacheController
from repro.coherence.directory.directory_controller import DirectoryController
from repro.coherence.directory.states import CacheState, DirectoryState
from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.interconnect.message import MessageClass, NetworkMessage, VirtualNetwork
from repro.sim.config import ProtocolVariant, SystemConfig
from repro.sim.engine import Simulator


class DirectHarness:
    """Cache + directory controllers connected by a direct-delivery fabric."""

    def __init__(self, num_nodes: int = 4,
                 variant: ProtocolVariant = ProtocolVariant.SPECULATIVE) -> None:
        self.config = SystemConfig.small(num_processors=num_nodes, references=0)
        self.config = self.config.with_updates(variant=variant)
        self.sim = Simulator()
        self.num_nodes = num_nodes
        self.events: List[MisspeculationEvent] = []
        self.sent_messages: List[NetworkMessage] = []
        #: Message classes to hold back instead of delivering (per dst).
        self.held: List[NetworkMessage] = []
        self.hold_classes: set = set()
        self.caches: Dict[int, CacheArray] = {}
        self.cache_ctrls: Dict[int, DirectoryCacheController] = {}
        self.directories: Dict[int, DirectoryController] = {}
        for node in range(num_nodes):
            cache = CacheArray(f"l2.{node}", self.config.l2, CacheState.INVALID)
            self.caches[node] = cache
            self.cache_ctrls[node] = DirectoryCacheController(
                node, self.sim, self.config, cache,
                self._make_send(node), self._home,
                misspeculation_reporter=self.events.append)
            self.directories[node] = DirectoryController(
                node, self.sim, self.config, self._make_send(node))

    def _home(self, address: int) -> int:
        return home_node(address, self.num_nodes, self.config.block_bytes)

    def _make_send(self, src: int):
        def send(dst: int, msg_class: MessageClass, address: int, payload) -> None:
            message = NetworkMessage(src=src, dst=dst, msg_class=msg_class,
                                     size_bytes=8, payload=payload, address=address)
            self.sent_messages.append(message)
            if msg_class in self.hold_classes:
                self.held.append(message)
                return
            self.deliver(message)
        return send

    def deliver(self, message: NetworkMessage, delay: int = 1) -> None:
        def _deliver() -> None:
            if message.virtual_network in (VirtualNetwork.REQUEST, VirtualNetwork.FINAL_ACK):
                self.directories[message.dst].handle_message(message)
            else:
                self.cache_ctrls[message.dst].handle_message(message)
        self.sim.schedule(delay, _deliver)

    def release_held(self) -> None:
        held, self.held = self.held, []
        for message in held:
            self.deliver(message)

    # ------------------------------------------------------------ conveniences
    def access(self, node: int, op: MemoryOp, address: int,
               value: Optional[int] = None) -> MemoryRequest:
        """Issue one blocking reference and run it to completion."""
        request = MemoryRequest(node=node, op=op, address=address, value=value)
        done = []
        self.cache_ctrls[node].access(request, lambda r: done.append(r))
        self.sim.run_until_idle()
        assert done, f"reference {op} {address:#x} at node {node} did not complete"
        return done[0]

    def state(self, node: int, address: int) -> CacheState:
        return self.caches[node].get_state(address)

    def dir_entry(self, address: int):
        return self.directories[self._home(address)].entry(address)


BLOCK = 64


class TestBasicTransitions:
    def test_load_miss_installs_shared(self):
        h = DirectHarness()
        request = h.access(1, MemoryOp.LOAD, 0x1000)
        assert h.state(1, 0x1000) == CacheState.SHARED
        assert request.latency > 0
        entry = h.dir_entry(0x1000)
        assert entry.state == DirectoryState.SHARED
        assert 1 in entry.sharers

    def test_store_miss_installs_modified(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x2000, value=77)
        assert h.state(1, 0x2000) == CacheState.MODIFIED
        entry = h.dir_entry(0x2000)
        assert entry.state == DirectoryState.OWNED
        assert entry.owner == 1

    def test_load_hit_after_install(self):
        h = DirectHarness()
        h.access(1, MemoryOp.LOAD, 0x1000)
        before = h.caches[1].misses
        h.access(1, MemoryOp.LOAD, 0x1000)
        assert h.caches[1].misses == before

    def test_store_value_visible_to_other_node(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x3000, value=1234)
        request = h.access(2, MemoryOp.LOAD, 0x3000)
        assert request.value == 1234

    def test_multiple_readers_share(self):
        h = DirectHarness()
        for node in (0, 1, 2, 3):
            h.access(node, MemoryOp.LOAD, 0x4000)
        for node in (0, 1, 2, 3):
            assert h.state(node, 0x4000) == CacheState.SHARED
        assert h.dir_entry(0x4000).sharers == {0, 1, 2, 3}

    def test_store_invalidates_sharers(self):
        h = DirectHarness()
        h.access(1, MemoryOp.LOAD, 0x5000)
        h.access(2, MemoryOp.LOAD, 0x5000)
        h.access(3, MemoryOp.STORE, 0x5000, value=5)
        assert h.state(1, 0x5000) == CacheState.INVALID
        assert h.state(2, 0x5000) == CacheState.INVALID
        assert h.state(3, 0x5000) == CacheState.MODIFIED

    def test_read_after_write_forwards_and_downgrades_owner(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x6000, value=6)
        request = h.access(2, MemoryOp.LOAD, 0x6000)
        assert request.value == 6
        assert h.state(1, 0x6000) == CacheState.OWNED
        assert h.state(2, 0x6000) == CacheState.SHARED

    def test_write_after_write_transfers_ownership(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x7000, value=1)
        h.access(2, MemoryOp.STORE, 0x7000, value=2)
        assert h.state(1, 0x7000) == CacheState.INVALID
        assert h.state(2, 0x7000) == CacheState.MODIFIED
        assert h.dir_entry(0x7000).owner == 2
        assert h.access(3, MemoryOp.LOAD, 0x7000).value == 2

    def test_upgrade_from_owned_keeps_local_data(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x8000, value=11)
        h.access(2, MemoryOp.LOAD, 0x8000)          # owner 1 becomes O
        h.access(1, MemoryOp.STORE, 0x8000, value=22)  # upgrade O -> M
        assert h.state(1, 0x8000) == CacheState.MODIFIED
        assert h.state(2, 0x8000) == CacheState.INVALID
        assert h.access(3, MemoryOp.LOAD, 0x8000).value == 22

    def test_directory_unblocks_after_final_ack(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x9000, value=1)
        entry = h.dir_entry(0x9000)
        assert not entry.is_busy
        assert not entry.pending

    def test_load_from_uncached_block_returns_memory_default(self):
        h = DirectHarness()
        request = h.access(2, MemoryOp.LOAD, 0xA000)
        assert request.value == 0

    def test_final_ack_for_squashed_transaction_is_ignored(self):
        h = DirectHarness()
        # A FinalAck arriving when the directory is not busy must not crash.
        h.directories[h._home(0xB000)]._handle_final_ack(0xB000, 1)
        assert not h.dir_entry(0xB000).is_busy


class TestWritebacks:
    def _fill_set(self, h: DirectHarness, node: int, address: int, ways: int):
        """Touch enough conflicting blocks to force eviction of ``address``."""
        stride = h.config.l2.num_sets * BLOCK
        conflicts = [address + stride * (i + 1) for i in range(ways)]
        for conflict in conflicts:
            h.access(node, MemoryOp.LOAD, conflict)
        return conflicts

    def test_eviction_of_dirty_block_issues_writeback(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=42)
        self._fill_set(h, 1, 0x1000, h.config.l2.associativity)
        assert h.state(1, 0x1000) == CacheState.INVALID
        writebacks = [m for m in h.sent_messages
                      if m.msg_class == MessageClass.WRITEBACK and m.address == 0x1000]
        assert writebacks
        # The written-back value survives in memory and reaches the next reader.
        assert h.access(2, MemoryOp.LOAD, 0x1000).value == 42

    def test_clean_eviction_is_silent(self):
        h = DirectHarness()
        h.access(1, MemoryOp.LOAD, 0x1000)
        self._fill_set(h, 1, 0x1000, h.config.l2.associativity)
        writebacks = [m for m in h.sent_messages
                      if m.msg_class == MessageClass.WRITEBACK and m.address == 0x1000]
        assert not writebacks

    def test_writeback_updates_directory_state(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=9)
        self._fill_set(h, 1, 0x1000, h.config.l2.associativity)
        entry = h.dir_entry(0x1000)
        assert entry.owner is None
        assert entry.state in (DirectoryState.UNCACHED, DirectoryState.SHARED)

    def test_writeback_ack_clears_pending_record(self):
        h = DirectHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=9)
        self._fill_set(h, 1, 0x1000, h.config.l2.associativity)
        assert not h.cache_ctrls[1].writebacks


class TestSection31Race:
    """The writeback / forwarded-request race of Section 3.1.

    Setup (matching the paper's description): the owner P1 sends a Writeback
    while another processor P2 sends a RequestReadWrite for the same block,
    and the RequestReadWrite reaches the directory first.  The directory
    therefore sends a ForwardedRequestReadWrite and then a WritebackAck to
    P1 on the same virtual network; the harness holds both so each test can
    deliver them in order (point-to-point order respected) or reversed (the
    reordering an adaptively routed network can produce).
    """

    def _setup_race(self, h: DirectHarness, address: int):
        """Create the race; returns (done_list, fwd_messages, wback_messages)."""
        h.access(1, MemoryOp.STORE, address, value=111)
        # Evict the dirty block but hold its Writeback so the directory still
        # believes node 1 is the owner (node 1 is in the MI_A transient).
        h.hold_classes = {MessageClass.WRITEBACK}
        stride = h.config.l2.num_sets * BLOCK
        for i in range(h.config.l2.associativity):
            h.access(1, MemoryOp.LOAD, address + stride * (i + 1))
        assert address in h.cache_ctrls[1].writebacks
        held_writebacks = [m for m in h.held if m.msg_class == MessageClass.WRITEBACK]
        assert held_writebacks
        h.held = [m for m in h.held if m.msg_class != MessageClass.WRITEBACK]

        # Node 2's RequestReadWrite reaches the directory first: it forwards
        # to the presumed owner (node 1).  Hold the forward and the upcoming
        # WritebackAck so the delivery order is under test control.
        h.hold_classes = {MessageClass.FORWARDED_REQUEST_READ_WRITE,
                          MessageClass.WRITEBACK_ACK}
        done = []
        h.cache_ctrls[2].access(MemoryRequest(node=2, op=MemoryOp.STORE,
                                              address=address, value=222),
                                lambda r: done.append(r))
        h.sim.run_until_idle()
        # Now the racing Writeback arrives at the (busy) directory.
        for message in held_writebacks:
            h.deliver(message)
        h.sim.run_until_idle()
        fwd = [m for m in h.held
               if m.msg_class == MessageClass.FORWARDED_REQUEST_READ_WRITE]
        wback = [m for m in h.held if m.msg_class == MessageClass.WRITEBACK_ACK]
        assert fwd and wback
        h.hold_classes = set()
        h.held = []
        return done, fwd, wback

    def test_in_order_delivery_completes_without_misspeculation(self):
        h = DirectHarness(variant=ProtocolVariant.SPECULATIVE)
        done, fwd, wback = self._setup_race(h, 0x1000)
        # Deliver in sent order (point-to-point order respected).
        for message in fwd + wback:
            h.deliver(message)
        h.sim.run_until_idle()
        assert done and done[0].completed_at >= 0
        assert not h.events
        assert h.state(2, 0x1000) == CacheState.MODIFIED
        assert h.access(3, MemoryOp.LOAD, 0x1000).value == 222

    def test_reordered_delivery_triggers_misspeculation(self):
        h = DirectHarness(variant=ProtocolVariant.SPECULATIVE)
        done, fwd, wback = self._setup_race(h, 0x1000)
        # Deliver the WritebackAck first: the reordering adaptive routing can
        # produce.  Node 1 retires its writeback, then the forwarded request
        # finds no data -> the one specific invalid transition.
        for message in wback + fwd:
            h.deliver(message)
        h.sim.run_until_idle()
        assert len(h.events) == 1
        event = h.events[0]
        assert event.kind == SpeculationKind.DIRECTORY_P2P_ORDER
        assert event.node == 1
        assert event.address == 0x1000

    def test_full_variant_tolerates_reordering(self):
        h = DirectHarness(variant=ProtocolVariant.FULL)
        done, fwd, wback = self._setup_race(h, 0x1000)
        for message in wback + fwd:
            h.deliver(message)
        h.sim.run_until_idle()
        # The full protocol handles the race (data came from the directory):
        # no mis-speculation, and the store completes with ownership.
        assert not h.events
        assert done
        assert h.state(2, 0x1000) == CacheState.MODIFIED

    def test_forwarded_read_served_from_writeback_buffer(self):
        h = DirectHarness(variant=ProtocolVariant.SPECULATIVE)
        h.access(1, MemoryOp.STORE, 0x1000, value=111)
        # Evict the block while holding the WritebackAck so the MI_A
        # transient stays live at node 1.
        h.hold_classes = {MessageClass.WRITEBACK_ACK}
        stride = h.config.l2.num_sets * BLOCK
        for i in range(h.config.l2.associativity):
            h.access(1, MemoryOp.LOAD, 0x1000 + stride * (i + 1))
        assert 0x1000 in h.cache_ctrls[1].writebacks
        # A reader arrives while the writeback is still outstanding; the data
        # comes from memory (the directory already absorbed the writeback).
        request = h.access(3, MemoryOp.LOAD, 0x1000)
        assert request.value == 111
        assert not h.events
        h.hold_classes = set()
        h.release_held()
        h.sim.run_until_idle()


class TestDetectionAndInvariants:
    def test_timeout_reports_deadlock_misspeculation(self):
        h = DirectHarness()
        ctrl = h.cache_ctrls[1]
        ctrl.timeout_cycles = 500
        # Swallow the request so the transaction can never complete.
        h.hold_classes = {MessageClass.REQUEST_READ_WRITE}
        done = []
        ctrl.access(MemoryRequest(node=1, op=MemoryOp.STORE, address=0x2000, value=1),
                    lambda r: done.append(r))
        h.sim.run_until_idle()
        assert not done
        assert len(h.events) == 1
        assert h.events[0].kind == SpeculationKind.INTERCONNECT_DEADLOCK

    def test_timeout_cancelled_on_completion(self):
        h = DirectHarness()
        h.cache_ctrls[1].timeout_cycles = 10_000
        h.access(1, MemoryOp.LOAD, 0x2000)
        h.sim.run_until_idle()
        assert not h.events

    def test_invalidation_for_absent_block_still_acked(self):
        h = DirectHarness()
        from repro.coherence.directory.messages import CoherencePayload
        h.cache_ctrls[2]._handle_invalidation(0x3000, CoherencePayload(requestor=1))
        acks = [m for m in h.sent_messages if m.msg_class == MessageClass.ACK]
        assert acks and acks[-1].dst == 1

    def test_directory_invariants_hold_after_traffic(self):
        h = DirectHarness()
        pattern = [(1, MemoryOp.STORE), (2, MemoryOp.LOAD), (3, MemoryOp.STORE),
                   (0, MemoryOp.LOAD), (2, MemoryOp.STORE), (1, MemoryOp.LOAD)]
        for i, (node, op) in enumerate(pattern * 3):
            h.access(node, op, 0x4000 + BLOCK * (i % 5), value=i)
        for directory in h.directories.values():
            assert directory.invariant_errors() == []
        for ctrl in h.cache_ctrls.values():
            assert ctrl.invariant_errors() == []

    def test_single_writer_invariant_across_nodes(self):
        h = DirectHarness()
        for i in range(12):
            h.access(i % 4, MemoryOp.STORE, 0x5000, value=i)
        owners = [node for node in range(4)
                  if h.state(node, 0x5000) == CacheState.MODIFIED]
        assert len(owners) == 1

    def test_squash_transient_state_clears_outstanding(self):
        h = DirectHarness()
        h.hold_classes = {MessageClass.DATA}
        done = []
        h.cache_ctrls[1].access(MemoryRequest(node=1, op=MemoryOp.LOAD, address=0x6000),
                                lambda r: done.append(r))
        h.sim.run_until_idle()
        assert h.cache_ctrls[1].transaction is not None
        h.cache_ctrls[1].squash_transient_state()
        assert h.cache_ctrls[1].transaction is None
        h.directories[h._home(0x6000)].squash_transient_state()
        assert not h.dir_entry(0x6000).is_busy

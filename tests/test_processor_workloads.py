"""Unit and property tests for the processor model and synthetic workloads."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.coherence.common import MemoryOp, MemoryRequest
from repro.coherence.directory.states import CacheState
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache
from repro.sim.config import CacheConfig, SystemConfig
from repro.sim.engine import Simulator
from repro.workloads import (
    PROFILES,
    get_profile,
    make_workload,
    paper_workload_names,
    table3_rows,
    workload_names,
)
from repro.workloads.base import SyntheticWorkload, WorkloadProfile, mix_statistics


class FakeMemorySystem:
    """Completes every reference after a fixed latency; records them."""

    def __init__(self, sim: Simulator, latency: int = 20) -> None:
        self.sim = sim
        self.latency = latency
        self.requests = []
        self.states = {}

    def access(self, request: MemoryRequest, on_complete) -> None:
        self.requests.append(request)
        self.states[request.address] = (
            CacheState.MODIFIED if request.op == MemoryOp.STORE else CacheState.SHARED)

        def _done():
            request.completed_at = self.sim.now
            on_complete(request)
        self.sim.schedule(self.latency, _done)

    def state_of(self, address: int) -> CacheState:
        return self.states.get(address, CacheState.INVALID)


def build_processor(references, *, with_l1=True, latency=20):
    sim = Simulator()
    config = SystemConfig.small(num_processors=4, references=len(references))
    memory = FakeMemorySystem(sim, latency=latency)
    l1 = L1FilterCache("l1", config.l1) if with_l1 else None
    proc = BlockingProcessor(0, sim, config, references, l1=l1)
    proc.l2_access = memory.access
    proc.l2_state_of = memory.state_of
    return sim, proc, memory


class TestBlockingProcessor:
    def test_executes_entire_stream(self):
        refs = [(MemoryOp.LOAD, 64 * i) for i in range(50)]
        sim, proc, memory = build_processor(refs)
        proc.start()
        sim.run_until_idle()
        assert proc.done
        assert proc.references_completed == 50
        assert proc.finished_at is not None

    def test_blocking_one_reference_at_a_time(self):
        refs = [(MemoryOp.LOAD, 64 * i) for i in range(10)]
        sim, proc, memory = build_processor(refs, with_l1=False, latency=100)
        proc.start()
        sim.run_until_idle()
        # With a 100-cycle memory and no L1, runtime must be at least
        # references * latency (strictly serialised).
        assert proc.finished_at >= 10 * 100

    def test_l1_filters_repeated_accesses(self):
        refs = [(MemoryOp.LOAD, 0x40)] * 20
        sim, proc, memory = build_processor(refs)
        proc.start()
        sim.run_until_idle()
        # Only the first miss reaches the memory system.
        assert len(memory.requests) == 1
        assert proc.stats.counters()["proc0.l1_hits"] == 19

    def test_store_requires_write_permission_for_l1_hit(self):
        refs = [(MemoryOp.LOAD, 0x40), (MemoryOp.STORE, 0x40), (MemoryOp.STORE, 0x40)]
        sim, proc, memory = build_processor(refs)
        proc.start()
        sim.run_until_idle()
        # Load miss + store upgrade go to memory; second store hits in L1.
        assert len(memory.requests) == 2

    def test_store_values_monotonic_and_unique(self):
        refs = [(MemoryOp.STORE, 64 * i) for i in range(10)]
        sim, proc, memory = build_processor(refs, with_l1=False)
        proc.start()
        sim.run_until_idle()
        values = [r.value for r in memory.requests]
        assert len(set(values)) == len(values)
        assert all(v is not None for v in values)

    def test_on_finished_callback(self):
        refs = [(MemoryOp.LOAD, 0x40)]
        sim, proc, memory = build_processor(refs)
        finished = []
        proc.start(finished.append)
        sim.run_until_idle()
        assert finished == [0]

    def test_cannot_start_twice(self):
        sim, proc, memory = build_processor([])
        proc.start()
        with pytest.raises(RuntimeError):
            proc.start()

    def test_snapshot_excludes_in_flight_reference(self):
        refs = [(MemoryOp.LOAD, 64 * i) for i in range(5)]
        sim, proc, memory = build_processor(refs, with_l1=False, latency=1_000)
        proc.start()
        sim.run(until=50)  # first reference still outstanding
        snapshot = proc.checkpoint_snapshot()
        assert snapshot.stream_index == 0
        assert proc._waiting_for_memory

    def test_restore_rolls_back_and_resumes(self):
        refs = [(MemoryOp.LOAD, 64 * i) for i in range(20)]
        sim, proc, memory = build_processor(refs, with_l1=False, latency=10)
        proc.start()
        sim.run(until=100)
        snapshot = proc.checkpoint_snapshot()
        completed_at_snapshot = snapshot.references_completed
        sim.run(until=150)
        proc.checkpoint_restore(snapshot, resume_at=sim.now + 500)
        assert proc.references_completed == completed_at_snapshot
        assert proc.stalled_until >= sim.now + 500
        sim.run_until_idle()
        assert proc.done
        assert proc.references_completed == 20

    def test_progress_fraction(self):
        refs = [(MemoryOp.LOAD, 64 * i) for i in range(4)]
        sim, proc, memory = build_processor(refs)
        assert proc.progress == 0.0
        proc.start()
        sim.run_until_idle()
        assert proc.progress == 1.0
        empty_sim, empty_proc, _ = build_processor([])
        assert empty_proc.progress == 1.0


class TestL1Filter:
    def test_hit_requires_tag_and_l2_permission(self):
        l1 = L1FilterCache("l1", CacheConfig(1024, 2))
        l1.fill(0x40)
        assert l1.hit(0x40, MemoryOp.LOAD, CacheState.SHARED)
        assert not l1.hit(0x40, MemoryOp.LOAD, CacheState.INVALID)
        assert not l1.hit(0x40, MemoryOp.STORE, CacheState.SHARED)
        assert l1.hit(0x40, MemoryOp.STORE, CacheState.MODIFIED)
        assert not l1.hit(0x80, MemoryOp.LOAD, CacheState.SHARED)

    def test_invalidate(self):
        l1 = L1FilterCache("l1", CacheConfig(1024, 2))
        l1.fill(0x40)
        l1.invalidate(0x40)
        assert not l1.hit(0x40, MemoryOp.LOAD, CacheState.SHARED)
        l1.invalidate(0x80)  # absent: no-op


class TestWorkloads:
    def test_paper_five_lead_the_registry_in_figure_order(self):
        paper = ["jbb", "apache", "slashcode", "oltp", "barnes"]
        assert workload_names()[:5] == paper
        assert paper_workload_names() == paper
        assert list(PROFILES) == paper
        assert set(table3_rows()) == set(workload_names())

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            get_profile("tpcc")

    def test_streams_are_deterministic(self):
        a = make_workload("oltp", num_processors=4, seed=3).generate(1, 500)
        b = make_workload("oltp", num_processors=4, seed=3).generate(1, 500)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_workload("oltp", num_processors=4, seed=3).generate(1, 500)
        b = make_workload("oltp", num_processors=4, seed=4).generate(1, 500)
        assert a != b

    def test_different_nodes_have_distinct_private_regions(self):
        workload = make_workload("jbb", num_processors=4, seed=1)
        a = {addr for _, addr in workload.generate(0, 400)}
        b = {addr for _, addr in workload.generate(1, 400)}
        shared_limit = workload._private_base
        private_a = {x for x in a if x >= shared_limit}
        private_b = {x for x in b if x >= shared_limit}
        assert private_a.isdisjoint(private_b)

    def test_addresses_are_block_aligned(self):
        workload = make_workload("apache", num_processors=2, seed=1)
        assert all(addr % 64 == 0 for _, addr in workload.generate(0, 500))

    def test_apache_is_read_heavier_than_jbb(self):
        apache = mix_statistics(make_workload("apache", num_processors=2, seed=1).generate(0, 3000))
        jbb = mix_statistics(make_workload("jbb", num_processors=2, seed=1).generate(0, 3000))
        assert apache["stores"] < jbb["stores"]

    def test_oltp_has_largest_shared_fraction_of_commercial(self):
        assert PROFILES["oltp"].shared_fraction >= PROFILES["jbb"].shared_fraction

    def test_generate_all_covers_every_processor(self):
        workload = make_workload("barnes", num_processors=4, seed=1)
        streams = workload.generate_all(100)
        assert set(streams) == {0, 1, 2, 3}
        assert all(len(s) == 100 for s in streams.values())

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", shared_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", private_blocks=0)

    def test_mix_statistics_empty(self):
        assert mix_statistics([])["unique_blocks"] == 0.0

    def test_summary_fields(self):
        workload = make_workload("slashcode", num_processors=8, seed=1)
        summary = workload.summary()
        assert summary["name"] == "slashcode"
        assert summary["processors"] == 8
        assert summary["footprint_blocks"] == workload.footprint_blocks

    @given(name=st.sampled_from(["jbb", "apache", "slashcode", "oltp", "barnes"]),
           node=st.integers(0, 3), count=st.integers(0, 400), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_generated_streams_are_well_formed(self, name, node, count, seed):
        """Property: requested length, block-aligned, ops are loads/stores."""
        workload = make_workload(name, num_processors=4, seed=seed)
        stream = workload.generate(node, count)
        assert len(stream) == count
        footprint_bytes = workload.footprint_blocks * 64
        for op, address in stream:
            assert op in (MemoryOp.LOAD, MemoryOp.STORE)
            assert address % 64 == 0
            assert 0 <= address < footprint_bytes

    @given(seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_store_fraction_tracks_profile(self, seed):
        """Property: measured store fraction is within sane bounds of profile."""
        workload = make_workload("jbb", num_processors=2, seed=seed)
        stats = mix_statistics(workload.generate(0, 2000))
        assert 0.15 < stats["stores"] < 0.75

"""Tests for the kernel hot-path overhaul (PR 2).

Covers the behaviours the optimizations must preserve and the new
machinery they introduce:

* fused batch dispatch order, event freelist recycling, heap compaction,
  and the cancel/fire reference-hygiene rules in ``repro.sim.engine``;
* O(1) occupancy and overflow-stall accounting in the SafetyNet log;
* explicit floor+half-up serialization rounding in ``repro.interconnect``;
* precomputed routing tables vs. the raw geometry;
* chunk-buffered RNG draws being bit-identical to scalar draws;
* golden pins of the vectorized workload generator's emitted streams
  (stream schema v2): any change to substream names, chunk size or draw
  order shows up here as a hash mismatch.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.coherence.common import MemoryOp
from repro.interconnect.link import Link, serialization_cycles_for
from repro.interconnect.routing import AdaptiveMinimalRouting, DimensionOrderRouting
from repro.interconnect.topology import Direction, TorusTopology
from repro.safetynet.log import CheckpointLogBuffer, UndoRecord
from repro.sim.config import InterconnectConfig
from repro.sim.engine import EventQueue, Simulator
from repro.sim.rng import DeterministicRng
from repro.workloads import make_workload
from repro.workloads.base import SyntheticWorkload, WorkloadProfile


# ===================================================================== engine
class TestBatchDispatch:
    def test_same_cycle_fifo_order_preserved(self):
        sim = Simulator()
        order = []
        for i in range(8):
            sim.schedule(5, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(8))

    def test_event_scheduled_during_cycle_runs_after_queued_ones(self):
        sim = Simulator()
        order = []
        sim.schedule(5, lambda: (order.append("a"),
                                 sim.schedule(0, lambda: order.append("late"))))
        sim.schedule(5, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "late"]

    def test_callback_cancelling_later_same_cycle_event(self):
        sim = Simulator()
        order = []
        victim = sim.schedule(3, lambda: order.append("victim"))
        sim.schedule(3, lambda: (order.append("killer"), victim.cancel()),
                     priority=-1)
        sim.schedule(3, lambda: order.append("survivor"))
        sim.run()
        assert order == ["killer", "survivor"]
        assert len(sim.queue) == 0

    def test_stop_mid_cycle_resumes_cleanly(self):
        sim = Simulator()
        order = []
        sim.schedule(2, lambda: (order.append("a"), sim.stop()))
        sim.schedule(2, lambda: order.append("b"))
        sim.run()
        assert order == ["a"]
        sim.run()
        assert order == ["a", "b"]

    def test_max_events_is_exact(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1, lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        sim.run()
        assert fired == list(range(10))


class TestPopBatch:
    def test_pop_batch_takes_whole_same_key_group(self):
        queue = EventQueue()
        same = [queue.push(5, lambda: None) for _ in range(4)]
        later = queue.push(6, lambda: None)
        batch = []
        assert queue.pop_batch(batch) == 4
        assert batch == same
        assert len(queue) == 1
        batch2 = []
        assert queue.pop_batch(batch2) == 1
        assert batch2 == [later]
        assert queue.pop_batch([]) == 0

    def test_pop_batch_splits_by_priority(self):
        queue = EventQueue()
        high = queue.push(5, lambda: None, priority=-1)
        low = queue.push(5, lambda: None)
        batch = []
        assert queue.pop_batch(batch) == 1
        assert batch == [high]
        assert queue.pop_batch(batch) == 1
        assert batch == [high, low]

    def test_pop_batch_max_count_leaves_rest_queued(self):
        queue = EventQueue()
        events = [queue.push(5, lambda: None) for _ in range(6)]
        batch = []
        assert queue.pop_batch(batch, max_count=2) == 2
        assert batch == events[:2]
        assert len(queue) == 4
        rest = []
        assert queue.pop_batch(rest) == 4
        assert rest == events[2:]

    def test_pop_batch_skips_cancelled(self):
        queue = EventQueue()
        events = [queue.push(5, lambda: None) for _ in range(4)]
        events[1].cancel()
        batch = []
        assert queue.pop_batch(batch) == 3
        assert batch == [events[0], events[2], events[3]]

    def test_unpop_restores_order(self):
        queue = EventQueue()
        events = [queue.push(5, lambda: None) for _ in range(3)]
        batch = []
        queue.pop_batch(batch)
        queue.unpop(batch[1:])
        newer = queue.push(5, lambda: None)
        assert len(queue) == 3
        replay = []
        queue.pop_batch(replay)
        assert replay == [events[1], events[2], newer]


class TestEventPool:
    def test_fired_events_are_recycled(self):
        queue = EventQueue()
        first = queue.push(1, lambda: None)
        sim = Simulator()
        ev = sim.schedule(1, lambda: None)
        sim.run()
        # The fired event object is handed out again by the next push.
        again = sim.queue.push(5, lambda: None)
        assert again is ev
        del first

    def test_fired_event_drops_callback_reference(self):
        sim = Simulator()
        marker = []
        closure = lambda: marker.append(1)  # noqa: E731
        ev = sim.schedule(1, closure)
        sim.run()
        assert marker == [1]
        assert ev.callback is None

    def test_cancel_drops_callback_reference(self):
        sim = Simulator()
        ev = sim.schedule(1, lambda: None)
        ev.cancel()
        assert ev.callback is None
        sim.run()

    def test_cancel_after_fire_is_harmless_without_reuse(self):
        sim = Simulator()
        ev = sim.schedule(1, lambda: None)
        sim.run()
        live_before = len(sim.queue)
        ev.cancel()
        assert len(sim.queue) == live_before

    def test_freelist_is_bounded(self):
        sim = Simulator()
        for i in range(EventQueue.FREELIST_MAX + 500):
            sim.schedule(0, lambda: None)
        sim.run()
        assert len(sim.queue._free) <= EventQueue.FREELIST_MAX


class TestHeapCompaction:
    def test_compaction_triggers_and_preserves_order(self):
        queue = EventQueue()
        keep, kill = [], []
        for i in range(1500):
            ev = queue.push(10_000 + i, lambda: None)
            (keep if i % 10 == 0 else kill).append(ev)
        for ev in kill:
            ev.cancel()
        assert queue.compactions >= 1
        assert len(queue) == len(keep)
        # Compaction bounds the heap: lingering cancelled entries stay below
        # the compaction threshold instead of accumulating without limit.
        assert len(keep) <= len(queue._heap) < EventQueue.COMPACT_MIN_ENTRIES
        popped = [queue.pop() for _ in range(len(keep))]
        assert popped == keep
        assert queue.pop() is None

    def test_no_compaction_below_threshold(self):
        queue = EventQueue()
        events = [queue.push(i, lambda: None) for i in range(100)]
        for ev in events[:80]:
            ev.cancel()
        assert queue.compactions == 0
        assert len(queue) == 20


# =============================================================== safetynet log
class TestLogOccupancyAccounting:
    def _record(self, seq: int, addr: int = 0) -> UndoRecord:
        return UndoRecord(checkpoint_seq=seq, target_id="t", address=addr,
                          field="state", old_value=1, logged_at=0)

    def test_overflow_stall_fill_commit_refill(self):
        # capacity 4 entries
        log = CheckpointLogBuffer("l", capacity_bytes=288, entry_bytes=72)
        for i in range(6):
            log.append(self._record(0, addr=i))
        assert log.overflow_stalls == 2  # appends 5 and 6
        assert log.occupancy_entries == 6
        # A later checkpoint, then commit the overflowing one.
        log.append(self._record(1))
        assert log.overflow_stalls == 3
        freed = log.commit_through(0)
        assert freed == 6
        assert log.occupancy_entries == 1
        # Refill past capacity again: every over-capacity append stalls,
        # regardless of the earlier peak.
        for i in range(5):
            log.append(self._record(1, addr=100 + i))
        assert log.occupancy_entries == 6
        assert log.overflow_stalls == 3 + 2
        assert log.peak_occupancy == 7

    def test_running_occupancy_matches_ground_truth(self):
        log = CheckpointLogBuffer("l", capacity_bytes=72_000, entry_bytes=72)
        rng = DeterministicRng(3).stream("ops")
        seq = 0
        for step in range(400):
            action = rng.random()
            if action < 0.75:
                log.append(self._record(seq, addr=step))
                if rng.random() < 0.1:
                    seq += 1
            elif action < 0.85 and seq > 1:
                log.commit_through(seq - 2)
            elif seq > 0:
                log.discard_since(seq)
            ground_truth = len(log.records_since(0))
            assert log.occupancy_entries == ground_truth
        # Appends after structural mutations keep working (tail cache).
        log.append(self._record(seq))
        assert log.occupancy_entries == len(log.records_since(0))


# ============================================================== link rounding
class TestSerializationRounding:
    def test_half_cycle_boundaries_round_half_up(self):
        # 0.5 cycles/byte: banker's rounding would give 2, 2, 4, 4 for
        # sizes 3, 5, 7, 9 — half-up must give ceil at every .5 boundary.
        assert [serialization_cycles_for(n, 0.5) for n in range(1, 10)] == \
            [1, 1, 2, 2, 3, 3, 4, 4, 5]

    def test_quarter_cycle_boundaries(self):
        assert [serialization_cycles_for(n, 0.25) for n in (2, 6, 10)] == \
            [1, 2, 3]  # 0.5 -> 1 (floor+half-up), 1.5 -> 2, 2.5 -> 3

    def test_minimum_one_cycle(self):
        assert serialization_cycles_for(1, 0.001) == 1

    def test_link_memoises_and_matches_function(self):
        link = Link("l", Simulator(), latency_cycles=2, cycles_per_byte=0.5)
        assert link.serialization_cycles(5) == 3
        assert link.serialization_cycles(5) == 3  # cached path
        assert link._ser_cache == {5: 3}

    def test_config_serialization_matches_link_rounding(self):
        cfg = InterconnectConfig(link_bandwidth_bytes_per_sec=8.0e9)
        freq = 4.0e9  # -> 0.5 cycles/byte
        for size in (1, 3, 5, 8, 64, 72):
            assert cfg.serialization_cycles(size, freq) == \
                serialization_cycles_for(size, 0.5)


# ============================================================= routing tables
class TestRoutingTables:
    @pytest.mark.parametrize("width,height", [(1, 4), (2, 2), (4, 4), (5, 3)])
    def test_tables_match_raw_geometry(self, width, height):
        topo = TorusTopology(width, height)
        fresh = TorusTopology(width, height)
        n = topo.num_switches
        dim_table = topo.dimension_order_table()
        min_table = topo.minimal_directions_table()
        for src in range(n):
            for dst in range(n):
                assert min_table[src][dst] == \
                    fresh._minimal_directions_uncached(src, dst)
                assert dim_table[src][dst] == \
                    topo.dimension_order_direction(src, dst)
                if src != dst:
                    assert dim_table[src][dst] in min_table[src][dst]

    def test_out_of_range_still_raises(self):
        topo = TorusTopology(4, 4)
        topo.dimension_order_direction(0, 5)  # build tables
        with pytest.raises(ValueError):
            topo.dimension_order_direction(0, 16)
        with pytest.raises(ValueError):
            topo.minimal_directions(-1, 3)

    def test_routers_use_shared_tables(self):
        topo = TorusTopology(4, 4)
        static = DimensionOrderRouting(topo)
        adaptive = AdaptiveMinimalRouting(topo)
        assert static._table is topo.dimension_order_table()
        assert adaptive._minimal_table is topo.minimal_directions_table()


# ============================================================== buffered rng
class TestBufferedRandint:
    def test_bit_identical_to_scalar_sequence(self):
        buffered = DeterministicRng(11)
        scalar = DeterministicRng(11)
        a = [buffered.buffered_randint("gap", 0, 7) for _ in range(10_000)]
        b = [scalar.randint("gap", 0, 7) for _ in range(10_000)]
        assert a == b

    def test_distinct_bounds_use_distinct_buffers(self):
        rng = DeterministicRng(1)
        rng.buffered_randint("s", 0, 3)
        rng.buffered_randint("s", 0, 5)
        assert set(rng._int_buffers) == {("s", 0, 3), ("s", 0, 5)}


# ======================================================== workload stream v2
def _stream_digest(refs) -> str:
    h = hashlib.sha256()
    for op, addr in refs:
        h.update(f"{op.value}:{addr};".encode())
    return h.hexdigest()[:16]


class TestWorkloadStreamPinning:
    """Golden pins of the v2 vectorized generator's emitted streams.

    A mismatch here means the stream schema changed (substream names, chunk
    size, draw order, rejection strategy...).  That is sometimes a
    deliberate choice — then these constants must be re-pinned and the
    change called out, because every simulated result shifts with them.
    """

    def test_jbb_streams_pinned(self):
        w = make_workload("jbb", num_processors=4, seed=7)
        assert _stream_digest(w.generate(0, 1000)) == "6a427854685bc753"
        assert _stream_digest(w.generate(1, 1000)) == "61d82666c4fc41b6"

    def test_custom_profile_pinned_across_chunk_boundary(self):
        profile = WorkloadProfile(
            name="pin", shared_zipf_alpha=1.3, lock_fraction=0.1,
            migratory_fraction=0.1, shared_fraction=0.3,
            sequential_run_probability=0.6)
        short = SyntheticWorkload(profile, num_processors=2, seed=42)
        assert _stream_digest(short.generate(0, 2500)) == "34444801f9e49cd3"
        # > CHUNK_ITERATIONS references: exercises chunk-boundary run carry.
        long = SyntheticWorkload(profile, num_processors=2, seed=42)
        assert _stream_digest(long.generate(0, 20000)) == "fc79b9b1ae531ce8"

    def test_repeated_generate_continues_streams(self):
        a = make_workload("oltp", num_processors=2, seed=5)
        first, second = a.generate(0, 300), a.generate(0, 300)
        b = make_workload("oltp", num_processors=2, seed=5)
        assert first == b.generate(0, 300)
        assert second != first  # the second call advances the node's streams

    def test_lock_and_migratory_are_read_modify_write_pairs(self):
        profile = WorkloadProfile(name="rmw", lock_fraction=0.5,
                                  migratory_fraction=0.5, shared_fraction=0.0,
                                  sequential_run_probability=0.0)
        w = SyntheticWorkload(profile, num_processors=1, seed=9)
        refs = w.generate(0, 400)
        for i in range(0, 398, 2):
            op_a, addr_a = refs[i]
            op_b, addr_b = refs[i + 1]
            assert (op_a, op_b) == (MemoryOp.LOAD, MemoryOp.STORE)
            assert addr_a == addr_b

    def test_category_fractions_approximate_profile(self):
        profile = WorkloadProfile(name="frac", lock_fraction=0.0,
                                  migratory_fraction=0.0, shared_fraction=0.25)
        w = SyntheticWorkload(profile, num_processors=2, seed=13)
        refs = w.generate(0, 40_000)
        shared_limit = w._private_base
        shared = sum(1 for _, addr in refs if addr < shared_limit)
        assert 0.22 < shared / len(refs) < 0.28
        stores = sum(1 for op, _ in refs if op == MemoryOp.STORE)
        # 0.25 * 0.2 + 0.75 * 0.3 = 0.275 expected store fraction.
        assert 0.24 < stores / len(refs) < 0.31

    def test_sequential_runs_present(self):
        profile = WorkloadProfile(name="seq", lock_fraction=0.0,
                                  migratory_fraction=0.0, shared_fraction=0.0,
                                  sequential_run_probability=1.0,
                                  sequential_run_length=8)
        w = SyntheticWorkload(profile, num_processors=1, seed=3)
        refs = w.generate(0, 2_000)
        consecutive = sum(
            1 for i in range(1, len(refs))
            if refs[i][1] - refs[i - 1][1] == w.block_bytes)
        # Runs of mean length ~9 -> the overwhelming majority of steps are
        # +1 block.
        assert consecutive / len(refs) > 0.7
"""Unit and property tests for the set-associative cache array."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.coherence.cache import CacheArray
from repro.coherence.directory.states import CacheState
from repro.sim.config import CacheConfig


def make_cache(size=4 * 1024, assoc=2, block=64) -> CacheArray:
    return CacheArray("test", CacheConfig(size, assoc, block), CacheState.INVALID)


class TestBasicOperations:
    def test_allocate_and_lookup(self):
        cache = make_cache()
        cache.allocate(0x1000, CacheState.SHARED, value=7)
        line = cache.lookup(0x1000)
        assert line is not None
        assert line.state == CacheState.SHARED
        assert line.value == 7

    def test_missing_block_is_invalid(self):
        cache = make_cache()
        assert cache.lookup(0x40) is None
        assert cache.get_state(0x40) == CacheState.INVALID
        assert not cache.contains(0x40)

    def test_set_state_transition(self):
        cache = make_cache()
        cache.allocate(0x80, CacheState.SHARED)
        cache.set_state(0x80, CacheState.MODIFIED)
        assert cache.get_state(0x80) == CacheState.MODIFIED

    def test_invalidation_removes_line(self):
        cache = make_cache()
        cache.allocate(0x80, CacheState.MODIFIED, value=3)
        cache.set_state(0x80, CacheState.INVALID)
        assert not cache.contains(0x80)
        assert cache.occupancy == 0

    def test_set_state_on_missing_block_raises(self):
        cache = make_cache()
        with pytest.raises(KeyError):
            cache.set_state(0x80, CacheState.SHARED)
        # Setting a missing block invalid is a no-op, not an error.
        cache.set_state(0x80, CacheState.INVALID)

    def test_set_value(self):
        cache = make_cache()
        cache.allocate(0x80, CacheState.MODIFIED, value=1)
        cache.set_value(0x80, 99)
        assert cache.peek(0x80).value == 99
        with pytest.raises(KeyError):
            cache.set_value(0x4000, 1)

    def test_set_index_wraps_by_block(self):
        cache = make_cache(size=4 * 1024, assoc=2, block=64)
        # 32 sets: addresses 64 * 32 apart map to the same set.
        assert cache.set_index(0) == cache.set_index(64 * 32)
        assert cache.set_index(0) != cache.set_index(64)


class TestEviction:
    def test_lru_victim_selected(self):
        cache = make_cache(size=256, assoc=2, block=64)  # 2 sets, 2 ways
        set_stride = 64 * cache.config.num_sets
        cache.allocate(0, CacheState.SHARED)
        cache.allocate(set_stride, CacheState.SHARED)
        cache.lookup(0)  # touch block 0 so block set_stride is LRU
        _, victim = cache.allocate(2 * set_stride, CacheState.SHARED)
        assert victim is not None
        assert victim.address == set_stride

    def test_eviction_respects_filter(self):
        cache = make_cache(size=256, assoc=2, block=64)
        stride = 64 * cache.config.num_sets
        cache.allocate(0, CacheState.MODIFIED)
        cache.allocate(stride, CacheState.SHARED)
        victim = cache.find_victim(2 * stride,
                                   evictable=lambda line: line.state == CacheState.SHARED)
        assert victim is not None and victim.address == stride

    def test_allocate_existing_updates_in_place(self):
        cache = make_cache()
        cache.allocate(0x40, CacheState.SHARED, value=1)
        line, victim = cache.allocate(0x40, CacheState.MODIFIED, value=2)
        assert victim is None
        assert line.state == CacheState.MODIFIED
        assert cache.occupancy == 1

    def test_eviction_counter(self):
        cache = make_cache(size=256, assoc=2, block=64)
        stride = 64 * cache.config.num_sets
        for i in range(4):
            cache.allocate(i * stride, CacheState.SHARED)
        assert cache.evictions == 2


class TestObserver:
    def test_observer_sees_state_changes(self):
        cache = make_cache()
        events = []
        cache.set_observer(lambda addr, field, old, new: events.append((addr, field, old, new)))
        cache.allocate(0x40, CacheState.SHARED)
        cache.set_state(0x40, CacheState.MODIFIED)
        assert (0x40, "state", CacheState.INVALID, CacheState.SHARED) in events
        assert (0x40, "state", CacheState.SHARED, CacheState.MODIFIED) in events

    def test_observer_sees_value_on_invalidate(self):
        cache = make_cache()
        events = []
        cache.allocate(0x40, CacheState.MODIFIED, value=5)
        cache.set_observer(lambda addr, field, old, new: events.append((field, old, new)))
        cache.set_state(0x40, CacheState.INVALID)
        assert ("value", 5, None) in events

    def test_observer_not_called_for_noop(self):
        cache = make_cache()
        events = []
        cache.allocate(0x40, CacheState.SHARED)
        cache.set_observer(lambda *a: events.append(a))
        cache.set_state(0x40, CacheState.SHARED)
        assert events == []

    def test_restore_field_bypasses_observer(self):
        cache = make_cache()
        events = []
        cache.set_observer(lambda *a: events.append(a))
        cache.restore_field(0x40, "state", CacheState.SHARED)
        assert cache.get_state(0x40) == CacheState.SHARED
        assert events == []


class TestRestore:
    def test_restore_round_trip(self):
        """Replaying logged old values in reverse restores the original state."""
        cache = make_cache()
        log = []
        cache.set_observer(lambda addr, field, old, new: log.append((addr, field, old)))
        cache.allocate(0x40, CacheState.SHARED, value=1)
        cache.set_state(0x40, CacheState.MODIFIED)
        cache.set_value(0x40, 9)
        cache.set_state(0x40, CacheState.INVALID)
        cache.allocate(0x80, CacheState.MODIFIED, value=3)
        for addr, field, old in reversed(log):
            cache.restore_field(addr, field, old)
        assert not cache.contains(0x40)
        assert not cache.contains(0x80)
        assert cache.occupancy == 0

    def test_force_line(self):
        cache = make_cache()
        cache.force_line(0x40, CacheState.OWNED, 5)
        assert cache.get_state(0x40) == CacheState.OWNED
        cache.force_line(0x40, CacheState.INVALID, None)
        assert not cache.contains(0x40)

    def test_restore_unknown_field_raises(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.restore_field(0x40, "bogus", 1)


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 63), st.sampled_from(list(CacheState))),
                    min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_bounded_by_geometry(self, operations):
        """Property: occupancy never exceeds ways*sets and no set overflows."""
        cache = make_cache(size=1024, assoc=2, block=64)  # 8 sets x 2 ways
        for block_index, state in operations:
            address = block_index * 64
            if state == CacheState.INVALID:
                if cache.contains(address):
                    cache.set_state(address, CacheState.INVALID)
            else:
                cache.allocate(address, state)
            assert cache.occupancy <= cache.config.num_blocks
        for set_index in range(cache.config.num_sets):
            resident = [line for line in cache.lines()
                        if cache.set_index(line.address) == set_index]
            assert len(resident) <= cache.config.associativity

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_log_and_restore_always_round_trips(self, blocks):
        """Property: undo-log replay restores the exact initial contents."""
        cache = make_cache(size=2048, assoc=2, block=64)
        # Pre-populate a known baseline.
        cache.allocate(0, CacheState.SHARED, value=100)
        baseline = {line.address: (line.state, line.value) for line in cache.lines()}
        log = []
        cache.set_observer(lambda addr, field, old, new: log.append((addr, field, old)))
        for block_index in blocks:
            address = block_index * 64
            if cache.contains(address) and block_index % 3 == 0:
                cache.set_state(address, CacheState.INVALID)
            else:
                cache.allocate(address, CacheState.MODIFIED, value=block_index)
        cache.set_observer(None)
        for addr, field, old in reversed(log):
            cache.restore_field(addr, field, old)
        restored = {line.address: (line.state, line.value) for line in cache.lines()}
        assert restored == baseline

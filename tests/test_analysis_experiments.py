"""Tests for the analysis helpers and the (fast) experiment drivers."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    geometric_mean,
    mean_and_std,
    normalized_performance,
    recoveries_per_scaled_second,
    reorder_percentages,
    speedup,
)
from repro.analysis.report import format_counters, format_figure_series, format_table
from repro.experiments import (
    fig1_reordering_demo,
    fig2_endpoint_deadlock,
    fig3_switch_deadlock,
    table1_framework,
    table2_parameters,
    table3_workloads,
)
from repro.system.results import RunResult
from repro.workloads import workload_names


def make_result(runtime=1_000, workload="jbb", **kwargs) -> RunResult:
    defaults = dict(config_label="test", references_completed=100,
                    instructions_retired=400, finished=True)
    defaults.update(kwargs)
    return RunResult(workload=workload, runtime_cycles=runtime, **defaults)


class TestMetrics:
    def test_normalized_performance(self):
        base = make_result(runtime=1_000)
        slower = make_result(runtime=2_000)
        assert normalized_performance(slower, base) == pytest.approx(0.5)
        assert normalized_performance(base, base) == pytest.approx(1.0)

    def test_speedup(self):
        old = make_result(runtime=2_000)
        new = make_result(runtime=1_000)
        assert speedup(new, old) == pytest.approx(2.0)

    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 1.0, 1.0])
        assert mean == 1.0 and std == 0.0
        mean, std = mean_and_std([0.0, 2.0])
        assert mean == 1.0 and std == 1.0
        assert mean_and_std([]) == (0.0, 0.0)

    def test_reorder_percentages(self):
        result = make_result(reorder_rate_by_vnet={"FORWARDED_REQUEST": 0.002,
                                                   "RESPONSE": 0.0})
        pct = reorder_percentages(result)
        assert pct["FORWARDED_REQUEST"] == pytest.approx(0.2)

    def test_recoveries_per_scaled_second(self):
        result = make_result(runtime=2_000_000, recoveries=4)
        assert recoveries_per_scaled_second(result, 1e6) == pytest.approx(2.0)
        assert recoveries_per_scaled_second(make_result(runtime=0), 1e6) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0

    def test_run_result_derived_fields(self):
        result = make_result(l2_hits=80, l2_misses=20, references_completed=100)
        assert result.l2_miss_rate == pytest.approx(0.2)
        assert result.cycles_per_reference == pytest.approx(10.0)
        assert result.recoveries_of.__call__ is not None


class TestReportFormatting:
    def test_format_table_contains_rows_and_columns(self):
        text = format_table("T", {"row1": {"a": 1, "b": 2.5}, "row2": {"a": 3}})
        assert "T" in text and "row1" in text and "row2" in text
        assert "2.500" in text

    def test_format_table_explicit_columns(self):
        text = format_table("T", {"r": {"a": 1, "b": 2}}, columns=["b"])
        assert "b" in text and " a" not in text.splitlines()[1]

    def test_format_figure_series(self):
        text = format_figure_series("F", {"jbb": {"static": 1.0, "adaptive": 1.1}})
        assert "jbb" in text and "adaptive" in text and "#" in text

    def test_format_counters_prefix_and_limit(self):
        counters = {f"net.c{i}": i for i in range(50)}
        counters["cache.x"] = 1
        text = format_counters("C", counters, prefix="net.", limit=10)
        assert "cache.x" not in text
        assert "more)" in text


class TestStructuralExperiments:
    def test_table1_rows_and_wiring(self):
        result = table1_framework.run()
        assert len(result.rows) == 5
        assert all(result.wiring_ok.values())
        assert "SafetyNet" in result.format()

    def test_table2_scales(self):
        result = table2_parameters.run()
        assert result.paper_rows["L1 Cache (I and D)"].startswith("128 KB")
        assert "Checkpoint Interval" in result.benchmark_rows
        assert "paper scale" in result.format()

    def test_table3_measured_rows(self):
        result = table3_workloads.run(num_processors=4, references=500)
        assert set(result.rows) == set(workload_names())
        assert {"jbb", "apache", "slashcode", "oltp", "barnes",
                "hotspot", "producer_consumer", "phased", "scaled",
                "mixed"} <= set(result.rows)
        for row in result.rows.values():
            assert 0.0 < row["store fraction"] < 1.0
            assert row["unique blocks"] > 0

    def test_table3_measures_heterogeneous_families_across_all_nodes(self):
        """The mixed row must reflect both slices, not just node 0's."""
        result = table3_workloads.run(num_processors=4, references=500)
        jbb_only = result.rows["jbb"]["store fraction"]
        mixed = result.rows["mixed"]["store fraction"]
        hotspot = result.rows["hotspot"]["store fraction"]
        assert jbb_only < mixed < hotspot

    def test_fig1_static_never_reorders_adaptive_sometimes_does(self):
        result = fig1_reordering_demo.run(pairs=80, seed=7)
        assert result.reordered_pairs["static"] == 0
        assert result.reordered_pairs["adaptive"] > 0
        assert 0.0 < result.reorder_rate["adaptive"] < 0.5

    def test_fig2_shared_queues_deadlock_virtual_networks_do_not(self):
        result = fig2_endpoint_deadlock.run()
        assert result.shared_queue_deadlock.deadlocked
        assert not result.virtual_network_deadlock.deadlocked
        assert "deadlock=True" in result.format()

    def test_fig3_no_vc_wedges_vc_does_not(self):
        result = fig3_switch_deadlock.run()
        assert result.no_vc_wedged
        assert result.no_vc_report.deadlocked
        assert not result.vc_report.deadlocked
        assert result.vc_delivered == result.vc_sent

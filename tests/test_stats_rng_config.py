"""Unit tests for statistics, deterministic RNG and system configuration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import (
    CacheConfig,
    CheckpointConfig,
    InterconnectConfig,
    ProtocolKind,
    RoutingPolicy,
    SystemConfig,
    WorkloadConfig,
)
from repro.sim.rng import DeterministicRng
from repro.sim.stats import Counter, Histogram, IntervalSampler, StatsRegistry, weighted_mean


class TestCounters:
    def test_counter_accumulates(self):
        counter = Counter("x")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_counter_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0

    def test_registry_returns_same_counter(self):
        registry = StatsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_registry_prefix_filter(self):
        registry = StatsRegistry()
        registry.counter("net.sent").add(3)
        registry.counter("net.recv").add(2)
        registry.counter("cache.hits").add(7)
        assert registry.counters("net.") == {"net.sent": 3, "net.recv": 2}
        assert registry.total("net.") == 5

    def test_registry_merge(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.counter("x").add(1)
        b.counter("x").add(2)
        b.counter("y").add(3)
        a.merge_from(b)
        assert a.counter("x").value == 3
        assert a.counter("y").value == 3

    def test_as_rows_sorted(self):
        registry = StatsRegistry()
        registry.counter("b").add(1)
        registry.counter("a").add(2)
        assert registry.as_rows() == [("a", 2), ("b", 1)]


class TestHistogram:
    def test_mean_and_extremes(self):
        hist = Histogram("lat", bucket_width=10)
        for value in (5, 15, 25):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(15.0)
        assert hist.min == 5
        assert hist.max == 25

    def test_percentile_monotonic(self):
        hist = Histogram("lat", bucket_width=8)
        for value in range(100):
            hist.record(value)
        assert hist.percentile(0.5) <= hist.percentile(0.9) <= hist.percentile(1.0)

    def test_percentile_empty(self):
        assert Histogram("lat").percentile(0.9) == 0

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            Histogram("lat", bucket_width=0)

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(1.5)


class TestSamplerAndHelpers:
    def test_sampler_mean_and_peak(self):
        sampler = IntervalSampler("util")
        sampler.record(0, 0.2)
        sampler.record(10, 0.6)
        assert sampler.mean == pytest.approx(0.4)
        assert sampler.peak == pytest.approx(0.6)

    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1.0), (3.0, 3.0)]) == pytest.approx(2.5)
        assert weighted_mean([]) == 0.0


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint("s", 0, 100) for _ in range(10)] == \
               [b.randint("s", 0, 100) for _ in range(10)]

    def test_different_names_are_independent(self):
        rng = DeterministicRng(42)
        first = [rng.randint("a", 0, 1000) for _ in range(5)]
        second = [rng.randint("b", 0, 1000) for _ in range(5)]
        assert first != second

    def test_spawn_is_deterministic(self):
        a = DeterministicRng(1).spawn("child")
        b = DeterministicRng(1).spawn("child")
        assert a.randint("x", 0, 10**9) == b.randint("x", 0, 10**9)

    def test_choice_and_bounds(self):
        rng = DeterministicRng(7)
        options = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice("c", options) in options
        with pytest.raises(ValueError):
            rng.choice("c", [])

    def test_geometric_positive(self):
        rng = DeterministicRng(3)
        assert all(rng.geometric("g", 0.5) >= 1 for _ in range(20))
        with pytest.raises(ValueError):
            rng.geometric("g", 0.0)

    def test_zipf_index_in_range(self):
        rng = DeterministicRng(5)
        assert all(0 <= rng.zipf_index("z", 50, 1.3) < 50 for _ in range(50))


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig(size_bytes=64 * 1024, associativity=4, block_bytes=64)
        assert cfg.num_sets == 256
        assert cfg.num_blocks == 1024

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, block_bytes=64)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=1)


class TestSystemConfig:
    def test_paper_defaults_match_table2(self):
        rows = SystemConfig.paper_defaults().table2_rows()
        assert rows["L1 Cache (I and D)"].startswith("128 KB")
        assert rows["L2 Cache"].startswith("4 MB")
        assert "100000 cycles" in rows["Checkpoint Interval"]
        assert "512 kbytes" in rows["Checkpoint Log Buffer"]

    def test_small_preset_is_valid_and_fast(self):
        cfg = SystemConfig.small(num_processors=4, references=100)
        assert cfg.num_processors == 4
        assert cfg.workload.references_per_processor == 100
        assert cfg.interconnect.mesh_width * cfg.interconnect.mesh_height >= 4

    def test_torus_must_fit_processors(self):
        with pytest.raises(ValueError):
            SystemConfig(num_processors=32,
                         interconnect=InterconnectConfig(mesh_width=4, mesh_height=4))

    def test_block_size_must_match(self):
        with pytest.raises(ValueError):
            SystemConfig(l1=CacheConfig(128 * 1024, 4, block_bytes=32))

    def test_with_updates_returns_copy(self):
        cfg = SystemConfig.small()
        other = cfg.with_updates(protocol=ProtocolKind.SNOOPING)
        assert other.protocol == ProtocolKind.SNOOPING
        assert cfg.protocol == ProtocolKind.DIRECTORY

    def test_serialization_cycles_scale_with_bandwidth(self):
        slow = InterconnectConfig(link_bandwidth_bytes_per_sec=400e6)
        fast = InterconnectConfig(link_bandwidth_bytes_per_sec=3.2e9)
        assert slow.serialization_cycles(72, 4e9) > fast.serialization_cycles(72, 4e9)

    def test_checkpoint_log_entries(self):
        cp = CheckpointConfig()
        assert cp.log_entries == (512 * 1024) // 72

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.config import (
    CacheConfig,
    CheckpointConfig,
    InterconnectConfig,
    ProtocolKind,
    ProtocolVariant,
    RoutingPolicy,
    SystemConfig,
    WorkloadConfig,
)
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry
from repro.system import build_system


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def stats() -> StatsRegistry:
    return StatsRegistry()


@pytest.fixture
def small_config() -> SystemConfig:
    """A 4-node directory system small enough for per-test runs."""
    return SystemConfig.small(num_processors=4, references=300, seed=11)


@pytest.fixture
def snooping_config() -> SystemConfig:
    cfg = SystemConfig.small(num_processors=4, references=300, seed=11)
    return cfg.with_updates(protocol=ProtocolKind.SNOOPING)


@pytest.fixture
def tiny_interconnect_config() -> InterconnectConfig:
    return InterconnectConfig(mesh_width=4, mesh_height=4,
                              link_latency_cycles=4,
                              switch_buffer_capacity=8)


@pytest.fixture(scope="session")
def completed_directory_run():
    """One completed 4-node directory run shared by read-only assertions."""
    config = SystemConfig.small(num_processors=4, references=400, seed=5)
    system = build_system(config)
    result = system.run()
    return system, result


@pytest.fixture(scope="session")
def completed_snooping_run():
    """One completed 4-node snooping run shared by read-only assertions."""
    config = SystemConfig.small(num_processors=4, references=400, seed=5).with_updates(
        protocol=ProtocolKind.SNOOPING)
    system = build_system(config)
    result = system.run()
    return system, result


@pytest.fixture(scope="session")
def completed_adaptive_run():
    """A 16-node speculative run with adaptive routing (read-only)."""
    config = SystemConfig.small(num_processors=16, references=250, seed=9)
    config = config.with_updates(interconnect=InterconnectConfig(
        mesh_width=4, mesh_height=4, routing=RoutingPolicy.ADAPTIVE,
        link_latency_cycles=4, switch_buffer_capacity=16,
        link_bandwidth_bytes_per_sec=800e6))
    system = build_system(config)
    result = system.run(max_cycles=4_000_000)
    return system, result

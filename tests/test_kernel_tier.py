"""Kernel tier selection, fallback, and pure/compiled byte-parity.

Three groups:

* **Selection/fallback unit tests** — run everywhere, no extension needed:
  ``REPRO_KERNEL`` parsing, the :func:`repro.kernel.set_kernel_tier`
  override, silent ``auto`` degradation when the extension is absent, and
  the loud :class:`repro.kernel.KernelTierError` on an explicit ``compiled``
  request that cannot be honoured.
* **Parity gates** — auto-skipped when ``repro._ckernel`` is not built:
  the fig4 ``--quick --json`` report must be byte-identical across tiers,
  golden workload digests and spec content hashes must not move, a small
  seeded sweep of registry design points must produce byte-identical result
  JSON on both tiers, and the exhaustive small-reference grid (every
  workload family x both protocols x {vc, no-vc}) must as well.
* **Installation checks** — the compiled tier must actually be *in use*
  (C simulator, C switch cores, C log observers), because a silently
  un-installed fast path would make every parity test vacuous.
"""

from __future__ import annotations

import hashlib
import json
import os
import random

import pytest

from repro import kernel

HAVE_COMPILED = kernel.compiled_available()

needs_compiled = pytest.mark.skipif(
    not HAVE_COMPILED,
    reason="repro._ckernel extension not built (run tools/build_kernel.py)")


@pytest.fixture(autouse=True)
def _restore_tier():
    """Every test leaves the process on the environment's tier selection."""
    yield
    kernel.set_kernel_tier(None)


@pytest.fixture()
def _clean_env(monkeypatch):
    monkeypatch.delenv(kernel.ENV_VAR, raising=False)


# ------------------------------------------------------- selection/fallback
class TestTierSelection:
    def test_default_is_auto(self, _clean_env):
        assert kernel.requested_tier() == "auto"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(kernel.ENV_VAR, "pure")
        assert kernel.requested_tier() == "pure"
        assert kernel.active_tier() == "pure"

    def test_env_var_is_normalized(self, monkeypatch):
        monkeypatch.setenv(kernel.ENV_VAR, "  PURE ")
        assert kernel.requested_tier() == "pure"

    def test_unknown_tier_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel.ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernel.requested_tier()
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernel.set_kernel_tier("turbo")

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(kernel.ENV_VAR, "auto")
        kernel.set_kernel_tier("pure")
        assert kernel.requested_tier() == "pure"
        assert kernel.active_tier() == "pure"
        kernel.set_kernel_tier(None)
        assert kernel.requested_tier() == "auto"

    def test_pure_tier_builds_the_python_simulator(self):
        from repro.sim.engine import Simulator

        kernel.set_kernel_tier("pure")
        assert kernel.engine_impl() is None
        assert type(kernel.new_simulator()) is Simulator

    def test_auto_falls_back_silently_without_extension(self, monkeypatch,
                                                        _clean_env):
        from repro.sim.engine import Simulator

        monkeypatch.setattr(kernel, "_compiled_module", None)
        assert kernel.active_tier() == "pure"
        assert kernel.engine_impl() is None
        assert type(kernel.new_simulator()) is Simulator

    def test_explicit_compiled_raises_without_extension(self, monkeypatch):
        monkeypatch.setattr(kernel, "_compiled_module", None)
        kernel.set_kernel_tier("compiled")
        with pytest.raises(kernel.KernelTierError,
                           match="tools/build_kernel.py"):
            kernel.active_tier()

    def test_kernel_info_reports_unavailable_without_raising(self, monkeypatch):
        monkeypatch.setattr(kernel, "_compiled_module", None)
        kernel.set_kernel_tier("compiled")
        info = kernel.kernel_info()
        assert info["tier"] == "unavailable"
        assert info["compiled_available"] is False

    def test_kernel_info_shape(self):
        info = kernel.kernel_info()
        assert info["requested"] in kernel.TIERS
        assert info["tier"] in ("pure", "compiled", "unavailable")
        assert isinstance(info["compiled_available"], bool)

    @needs_compiled
    def test_auto_prefers_compiled_when_available(self, _clean_env):
        assert kernel.active_tier() == "compiled"

    @needs_compiled
    def test_compiled_tier_builds_the_c_simulator(self):
        kernel.set_kernel_tier("compiled")
        impl = kernel.engine_impl()
        assert impl is not None
        assert isinstance(kernel.new_simulator(), impl.Simulator)

    @needs_compiled
    def test_compiler_tag_recorded(self):
        kernel.set_kernel_tier("compiled")
        assert kernel.compiler_tag()
        assert kernel.kernel_info()["compiler"] == kernel.compiler_tag()


# -------------------------------------------------------- installed-in-use
@needs_compiled
class TestCompiledTierInstalled:
    def _build_system(self):
        from repro.sim.config import SystemConfig
        from repro.system import build_system

        return build_system(SystemConfig.small(num_processors=4,
                                               references=300, seed=11))

    def test_switch_cores_and_log_observers_installed(self):
        kernel.set_kernel_tier("compiled")
        impl = kernel.engine_impl()
        system = self._build_system()
        assert isinstance(system.sim, impl.Simulator)
        switches = system.network.switches
        assert switches
        for switch in switches:
            assert type(switch._core).__name__ == "SwitchCore"
            assert getattr(switch.inject, "__self__", None) is switch._core
        # The cache arrays register through SafetyNet.register_store; under
        # the compiled tier those observers must be the C implementation.
        observers = [node.l2_array._observer for node in system.nodes
                     if node.l2_array._observer is not None]
        assert observers
        for observer in observers:
            assert type(observer).__name__ == "LogObserver"

    def test_pure_tier_leaves_switches_uncompiled(self):
        kernel.set_kernel_tier("pure")
        system = self._build_system()
        assert system.network.switches
        for switch in system.network.switches:
            assert switch._core is None


# ----------------------------------------------------------- parity gates
def _fig4_quick_json(tier: str, path: str) -> bytes:
    from repro.experiments import runner

    env_before = os.environ.get(kernel.ENV_VAR)
    try:
        assert runner.main(["--only", "fig4", "--quick", "--json", path,
                            "--kernel-tier", tier]) == 0
    finally:
        kernel.set_kernel_tier(None)
        if env_before is None:
            os.environ.pop(kernel.ENV_VAR, None)
        else:
            os.environ[kernel.ENV_VAR] = env_before
    with open(path, "rb") as handle:
        return handle.read()


#: Top-level report keys describing how the campaign ran (kernel tier,
#: cache traffic, artifact-memo warmth) rather than what it computed; the
#: parity gates compare everything else byte for byte (mirrors
#: tools/compare_reports.py).
EXECUTION_KEYS = ("cache", "kernel", "memos")


def _canonical_report_bytes(raw: bytes) -> str:
    document = json.loads(raw)
    trimmed = {key: value for key, value in document.items()
               if key not in EXECUTION_KEYS}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


@needs_compiled
class TestTierParity:
    def test_fig4_quick_report_byte_identical(self, tmp_path, capsys):
        pure = _fig4_quick_json("pure", str(tmp_path / "pure.json"))
        compiled = _fig4_quick_json("compiled", str(tmp_path / "compiled.json"))
        assert _canonical_report_bytes(pure) == _canonical_report_bytes(compiled)
        # The execution-side meta must say which tier ran (and only differ
        # there): the byte-stability of everything else is the contract.
        assert json.loads(pure)["kernel"]["tier"] == "pure"
        assert json.loads(compiled)["kernel"]["tier"] == "compiled"
        # Sanity: the file is a real report, not an empty artifact.
        report = json.loads(pure)
        assert report["experiments"]["fig4"]["rows"]

    def test_golden_workload_digest_unmoved_on_compiled_tier(self):
        # Workload generation does not go through the kernel seam, but the
        # digest pin still guards against the compiled tier perturbing
        # shared RNG or import-order state.
        from repro.workloads import make_workload

        kernel.set_kernel_tier("compiled")
        workload = make_workload("hotspot", num_processors=4, seed=7)
        refs = workload.generate(0, 1000)
        h = hashlib.sha256()
        for op, addr in refs:
            h.update(f"{op.value}:{addr};".encode())
        assert h.hexdigest()[:16] == "8aea56abbbc988d8"

    def test_spec_hashes_stable_across_tiers(self):
        from repro.campaign.spec import RunSpec
        from repro.experiments.workload_matrix import (
            MAX_CYCLES,
            _point_config,
            _point_label,
        )
        from repro.sim.config import ProtocolKind

        def spec_hash(tier: str) -> str:
            kernel.set_kernel_tier(tier)
            spec = RunSpec(
                config=_point_config("jbb", ProtocolKind.DIRECTORY, False,
                                     references=100, seed=5),
                label=_point_label("jbb", ProtocolKind.DIRECTORY, False),
                max_cycles=MAX_CYCLES)
            return spec.content_hash()

        assert spec_hash("pure") == spec_hash("compiled")

    def test_randomized_design_points_byte_identical(self):
        """Seeded sweep: a handful of registry design points, both tiers."""
        from repro.campaign.executor import execute_spec
        from repro.campaign.spec import RunSpec
        from repro.experiments.workload_matrix import (
            MAX_CYCLES,
            PROTOCOLS,
            S3_MODES,
            _point_config,
            _point_label,
        )
        from repro.workloads import workload_names

        rng = random.Random(0xC0FFEE)
        grid = [(w, p, s3) for w in sorted(workload_names())
                for p in PROTOCOLS for s3 in S3_MODES]
        points = rng.sample(grid, 4)

        def run_tier(tier: str):
            kernel.set_kernel_tier(tier)
            outputs = []
            for workload, protocol, s3 in points:
                spec = RunSpec(
                    config=_point_config(workload, protocol, s3,
                                         references=120, seed=9),
                    label=_point_label(workload, protocol, s3),
                    max_cycles=MAX_CYCLES)
                result = execute_spec(spec)
                outputs.append(json.dumps(result.to_json(), sort_keys=True))
            return outputs

        pure = run_tier("pure")
        compiled = run_tier("compiled")
        for (workload, protocol, s3), a, b in zip(points, pure, compiled):
            assert a == b, (
                f"tier divergence at {workload}/{protocol.value}"
                f"@{'no-vc' if s3 else 'vc'}")

    def test_full_registry_grid_byte_identical(self):
        """Every workload family x both protocols x {vc, no-vc}, both tiers,
        serial and multiplexed.

        The exhaustive (small-reference) companion to the seeded sample
        above: with the coherence controllers, processor issue loop, L1 and
        now the snooping transition handlers compiled, a divergence confined
        to one protocol or one workload family's access pattern must not be
        able to hide behind the sample.  Each tier additionally re-runs the
        whole grid under :class:`MultiplexExecutor`, so the interleaved
        build/execute schedule and the C snooping handlers are held to the
        same byte-for-byte oracle as plain serial execution.  Byte-for-byte
        on the result JSON, which includes ``events_executed`` and every
        counter — the strictest cheap oracle we have.
        """
        from repro.campaign.executor import execute_spec
        from repro.campaign.multiplex import MultiplexExecutor
        from repro.campaign.spec import RunSpec
        from repro.experiments.workload_matrix import (
            MAX_CYCLES,
            PROTOCOLS,
            S3_MODES,
            _point_config,
            _point_label,
        )
        from repro.workloads import workload_names

        grid = [(w, p, s3) for w in sorted(workload_names())
                for p in PROTOCOLS for s3 in S3_MODES]

        def grid_specs():
            return [RunSpec(
                config=_point_config(workload, protocol, s3,
                                     references=60, seed=11),
                label=_point_label(workload, protocol, s3),
                max_cycles=MAX_CYCLES) for workload, protocol, s3 in grid]

        def run_tier(tier: str, multiplexed: bool = False):
            kernel.set_kernel_tier(tier)
            specs = grid_specs()
            if multiplexed:
                results = MultiplexExecutor().map(specs)
            else:
                results = [execute_spec(spec) for spec in specs]
            return [json.dumps(r.to_json(), sort_keys=True) for r in results]

        pure = run_tier("pure")
        legs = [
            ("compiled", run_tier("compiled")),
            ("pure/multiplexed", run_tier("pure", multiplexed=True)),
            ("compiled/multiplexed", run_tier("compiled", multiplexed=True)),
        ]
        for leg, outputs in legs:
            for (workload, protocol, s3), a, b in zip(grid, pure, outputs):
                assert a == b, (
                    f"{leg} divergence at {workload}/{protocol.value}"
                    f"@{'no-vc' if s3 else 'vc'}")

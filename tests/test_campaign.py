"""Tests for the campaign layer: specs, registry, executors, caching.

The determinism contract is the load-bearing property: the same
:class:`RunSpec` must produce byte-identical ``RunResult`` JSON whether it
runs serially, in a worker process, or out of the on-disk cache.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignContext,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    SweepSpec,
    all_experiments,
    canonical_json,
    discover,
    execute_spec,
    experiment_names,
    get_experiment,
    make_executor,
    register_experiment,
)
from repro.campaign import registry as registry_module
from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.experiments import common, runner
from repro.sim.config import ProtocolKind, SystemConfig
from repro.system.results import RunResult
from repro.system.snooping_system import SnoopingSystem


def small_spec(references: int = 200, seed: int = 1, **spec_kwargs) -> RunSpec:
    return RunSpec(config=SystemConfig.small(4, references=references, seed=seed),
                   **spec_kwargs)


def result_bytes(result: RunResult) -> str:
    return canonical_json(result.to_json())


class TestRunSpec:
    def test_content_hash_is_stable(self):
        assert small_spec().content_hash() == small_spec().content_hash()

    def test_content_hash_changes_with_any_knob(self):
        base = small_spec()
        assert base.content_hash() != small_spec(seed=2).content_hash()
        assert base.content_hash() != small_spec(label="x").content_hash()
        assert base.content_hash() != small_spec(max_cycles=10).content_hash()
        assert base.content_hash() != small_spec(
            recovery_rate_per_second=0.0).content_hash()

    def test_zero_rate_differs_from_no_injector(self):
        """None (no injector) and 0.0 (idle injector) are distinct design points."""
        assert (small_spec(recovery_rate_per_second=None).content_hash()
                != small_spec(recovery_rate_per_second=0.0).content_hash())

    def test_spec_equality_and_json(self):
        assert small_spec() == small_spec()
        assert small_spec() != small_spec(seed=9)
        payload = small_spec(label="point").to_json()
        assert payload["label"] == "point"
        assert payload["config"]["num_processors"] == 4
        json.dumps(payload)  # must already be JSON-safe

    def test_sweep_spec(self):
        sweep = SweepSpec.of("demo", [small_spec(label="a"), small_spec(label="b")])
        assert len(sweep) == 2
        assert sweep.labels() == ["a", "b"]
        assert sweep.content_hash() != SweepSpec.of("demo", [small_spec()]).content_hash()

    def test_executor_maps_sweep_spec_batches(self):
        sweep = SweepSpec.of("demo", [small_spec(references=120),
                                      small_spec(references=120, seed=2)])
        results = SerialExecutor().map(sweep)
        assert [result_bytes(r) for r in results] == \
               [result_bytes(r) for r in SerialExecutor().map(list(sweep))]


class TestResultSerialization:
    def test_run_result_round_trips_with_recovery_records(self):
        record = RecoveryRecord(
            event=MisspeculationEvent(kind=SpeculationKind.INJECTED,
                                      detected_at=123, node=2, address=64,
                                      description="test", details={"txn_id": 7}),
            started_at=123, recovery_point=100, resumed_at=150,
            work_lost_cycles=23, messages_squashed=4, log_entries_undone=9)
        result = RunResult(workload="jbb", config_label="t", runtime_cycles=10,
                           references_completed=5, instructions_retired=20,
                           finished=True, recoveries=1,
                           recoveries_by_kind={"injected": 1},
                           recovery_records=[record],
                           counters={"net.sent": 11})
        clone = RunResult.from_json(json.loads(canonical_json(result.to_json())))
        assert result_bytes(clone) == result_bytes(result)
        assert clone.recovery_records[0].event.kind is SpeculationKind.INJECTED
        assert clone.recovery_records[0].total_cost_cycles == record.total_cost_cycles

    def test_from_json_rejects_unknown_schema(self):
        payload = RunResult(workload="jbb", config_label="t", runtime_cycles=1,
                            references_completed=1, instructions_retired=1,
                            finished=True).to_json()
        payload["schema"] = "bogus/v9"
        with pytest.raises(ValueError):
            RunResult.from_json(payload)


class TestExecutors:
    def test_serial_and_parallel_results_are_byte_identical(self):
        specs = [small_spec(references=150),
                 small_spec(references=150, seed=2),
                 small_spec(references=120, recovery_rate_per_second=0.0)]
        serial = SerialExecutor().map(specs)
        with ParallelExecutor(max_workers=2) as executor:
            parallel = executor.map(specs)
        assert [result_bytes(r) for r in serial] == \
               [result_bytes(r) for r in parallel]

    def test_results_do_not_depend_on_run_order(self):
        spec = small_spec(references=150)
        executor = SerialExecutor()
        first = executor.run(spec)
        executor.run(small_spec(references=150, seed=5))  # advance global state
        again = executor.run(spec)
        assert result_bytes(first) == result_bytes(again)

    def test_cache_hit_returns_identical_result(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        executor = SerialExecutor(cache=cache)
        spec = small_spec(references=150)
        fresh = executor.run(spec)
        assert len(cache) == 1
        hit = executor.run(spec)
        assert cache.hits >= 1
        assert result_bytes(hit) == result_bytes(fresh)

    def test_cache_is_shared_across_executor_kinds(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=150)
        fresh = SerialExecutor(cache=cache).run(spec)
        with ParallelExecutor(max_workers=2, cache=cache) as executor:
            hit = executor.run(spec)
        assert cache.hits >= 1
        assert result_bytes(hit) == result_bytes(fresh)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=120)
        with open(cache.path_for(spec), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        executor = SerialExecutor(cache=cache)
        result = executor.run(spec)
        assert result.references_completed > 0
        assert cache.misses >= 1

    def test_make_executor_selects_kind(self):
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.max_workers == 3
        parallel.close()

    def test_zero_rate_attaches_idle_injector(self, monkeypatch):
        """Regression: a falsy 0.0 rate used to silently skip the injector."""
        attached = []
        original = SnoopingSystem.attach_recovery_injector

        def spy(self, rate):
            attached.append(rate)
            return original(self, rate)

        monkeypatch.setattr(SnoopingSystem, "attach_recovery_injector", spy)
        config = SystemConfig.small(4, references=50).with_updates(
            protocol=ProtocolKind.SNOOPING)
        execute_spec(RunSpec(config=config, recovery_rate_per_second=0.0))
        assert attached == [0.0]
        attached.clear()
        execute_spec(RunSpec(config=config, recovery_rate_per_second=None))
        assert attached == []

    def test_run_config_forwards_explicit_zero_rate(self, monkeypatch):
        attached = []
        original = SnoopingSystem.attach_recovery_injector

        def spy(self, rate):
            attached.append(rate)
            return original(self, rate)

        monkeypatch.setattr(SnoopingSystem, "attach_recovery_injector", spy)
        config = SystemConfig.small(4, references=50).with_updates(
            protocol=ProtocolKind.SNOOPING)
        result = common.run_config(config, recovery_rate_per_second=0.0)
        assert attached == [0.0]
        assert result.recoveries_of(SpeculationKind.INJECTED) == 0


class TestRegistry:
    def test_discover_finds_every_driver(self):
        discover()
        assert experiment_names() == [
            "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4",
            "fig5", "topology_scale", "speculation_matrix", "workload_matrix",
            "dir_reordering", "snooping_cornercase", "buffer_sweep"]

    def test_entries_expose_structured_results_protocol(self):
        discover()
        for entry in all_experiments():
            assert entry.title
            assert callable(entry.runner)

    def test_get_experiment_unknown_name(self):
        discover()
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("nope")

    def test_duplicate_registration_rejected(self, monkeypatch):
        monkeypatch.setattr(registry_module, "_REGISTRY",
                            dict(registry_module._REGISTRY))
        register_experiment("dup-test", title="x", order=999)(lambda ctx: None)
        with pytest.raises(ValueError, match="registered twice"):
            register_experiment("dup-test", title="x", order=999)(lambda ctx: None)

    def test_structural_experiment_via_registry(self):
        discover()
        entry = get_experiment("table2")
        result = entry.runner(CampaignContext())
        assert "paper scale" in result.format()
        rows = result.to_rows()
        assert any(row["parameter"] == "L1 Cache (I and D)" for row in rows)
        json.dumps(result.to_json())


class TestRunnerCLI:
    def test_list_flag(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "buffer_sweep" in out

    def test_only_validates_names(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            runner.run_campaign(only=["missing"])

    def test_only_subset_with_json_report(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        text_path = tmp_path / "report.txt"
        code = runner.main(["--only", "table2", "--only", "fig2",
                            "--json", str(json_path),
                            "--output", str(text_path)])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == runner.REPORT_SCHEMA
        assert set(payload["experiments"]) == {"table2", "fig2"}
        text = text_path.read_text()
        assert "Table 2" in text and "Figure 2" in text
        assert runner.SECTION_SEPARATOR.strip("\n") in text

    def test_report_sections_follow_registry_order(self):
        results = runner.run_campaign(only=["fig2", "table2"])
        assert list(results) == ["table2", "fig2"]

"""Tests for the shared-precomputation layer (DESIGN.md §9).

The load-bearing property is that the memos are invisible to results: a
run served from warm workload/topology artifacts must produce byte
-identical ``RunResult`` JSON to a cold run, and the memo keys must miss
whenever any ingredient of the generated content changes.
"""

from __future__ import annotations

import json

from repro.campaign import (
    BatchExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    artifact_keys,
    canonical_json,
    clear_memos,
    execute_spec,
    make_executor,
    memo_stats,
)
from repro.interconnect.topology import (
    TOPOLOGY_MEMO_STATS,
    clear_topology_memo,
    shared_topology,
)
from repro.sim.config import SystemConfig
from repro.system.results import RunResult
from repro.workloads import get_family, make_workload
from repro.workloads.memo import (
    MEMO_STATS,
    clear_stream_memo,
    shared_streams,
    stream_key,
    stream_memo_len,
)


def small_spec(references: int = 150, seed: int = 1, **spec_kwargs) -> RunSpec:
    return RunSpec(config=SystemConfig.small(4, references=references, seed=seed),
                   **spec_kwargs)


def result_bytes(result: RunResult) -> str:
    return canonical_json(result.to_json())


BASE_KEY_KWARGS = dict(num_processors=4, block_bytes=64, seed=1,
                       params=None, references_per_processor=100)


class TestStreamMemo:
    def test_warm_hit_returns_same_artifact(self):
        clear_stream_memo()
        cold = shared_streams("jbb", **BASE_KEY_KWARGS)
        warm = shared_streams("jbb", **BASE_KEY_KWARGS)
        assert warm is cold
        assert MEMO_STATS == {"stream_hits": 1, "stream_misses": 1}
        assert stream_memo_len() == 1

    def test_artifact_matches_fresh_generation(self):
        clear_stream_memo()
        artifact = shared_streams("jbb", **BASE_KEY_KWARGS)
        fresh = make_workload("jbb", num_processors=4, block_bytes=64,
                              seed=1).generate_all(100)
        for node in range(4):
            assert artifact.cursor(node) == fresh[node]

    def test_cursor_is_a_fresh_per_run_copy(self):
        clear_stream_memo()
        artifact = shared_streams("jbb", **BASE_KEY_KWARGS)
        first = artifact.cursor(0)
        second = artifact.cursor(0)
        assert first == second and first is not second
        first.clear()  # consuming one run's cursor never touches the artifact
        assert artifact.cursor(0) == second

    def test_key_misses_on_every_content_ingredient(self):
        base = stream_key("jbb", **BASE_KEY_KWARGS)
        assert base == stream_key("jbb", **BASE_KEY_KWARGS)
        assert base != stream_key("oltp", **BASE_KEY_KWARGS)
        assert base != stream_key("jbb", **{**BASE_KEY_KWARGS, "seed": 2})
        assert base != stream_key("jbb", **{**BASE_KEY_KWARGS,
                                            "num_processors": 8})
        assert base != stream_key("jbb", **{**BASE_KEY_KWARGS,
                                            "block_bytes": 32})
        assert base != stream_key("jbb", **{**BASE_KEY_KWARGS,
                                            "references_per_processor": 200})

    def test_params_canonicalize_through_the_family(self):
        """``params=None`` and an explicit copy of the registered defaults
        generate the same stream, so they must share one memo entry; any
        overridden value must miss."""
        defaults = dict(get_family("hotspot").defaults)
        kwargs = {**BASE_KEY_KWARGS, "params": None}
        explicit = {**BASE_KEY_KWARGS, "params": dict(defaults)}
        assert stream_key("hotspot", **kwargs) == stream_key("hotspot",
                                                             **explicit)
        knob = next(iter(defaults))
        changed = dict(defaults)
        changed[knob] = defaults[knob] * 2
        assert stream_key("hotspot", **kwargs) != stream_key(
            "hotspot", **{**BASE_KEY_KWARGS, "params": changed})


class TestTopologyMemo:
    def test_shared_instance_with_prebuilt_tables(self):
        clear_topology_memo()
        first = shared_topology("torus", (4, 4))
        second = shared_topology("torus", (4, 4))
        assert second is first
        assert TOPOLOGY_MEMO_STATS == {"topology_hits": 1,
                                       "topology_misses": 1}
        # The artifact is fully precomputed: both tables exist already.
        assert first._dim_order_table and first._minimal_table

    def test_key_misses_on_kind_and_dims(self):
        clear_topology_memo()
        torus = shared_topology("torus", (4, 4))
        assert shared_topology("mesh", (4, 4)) is not torus
        assert shared_topology("torus", (2, 2)) is not torus
        # List dims normalise to the tuple key.
        assert shared_topology("torus", [4, 4]) is torus


class TestColdWarmDeterminism:
    def test_cold_and_warm_runs_are_byte_identical(self):
        spec = small_spec()
        clear_memos()
        cold = result_bytes(execute_spec(spec))
        stats = memo_stats()
        assert stats["stream_misses"] == 1 and stats["stream_hits"] == 0
        warm = result_bytes(execute_spec(spec))
        stats = memo_stats()
        assert stats["stream_hits"] == 1
        assert warm == cold

    def test_explicit_workload_object_bypasses_the_memo(self):
        spec = small_spec()
        clear_memos()
        memoized = execute_spec(spec)
        cfg = spec.config
        system_result = None
        from repro.system import build_system
        from repro.campaign import reset_global_ids
        reset_global_ids()
        system = build_system(cfg, label=spec.label)
        workload = make_workload(cfg.workload.name,
                                 num_processors=cfg.num_processors,
                                 block_bytes=cfg.block_bytes,
                                 seed=cfg.workload.seed,
                                 params=cfg.workload.params)
        system_result = system.run(workload=workload,
                                   max_cycles=spec.max_cycles)
        assert result_bytes(system_result) == result_bytes(memoized)


class TestBatchExecutor:
    def test_batched_matches_serial_in_spec_order(self):
        specs = [small_spec(references=120),
                 small_spec(references=120, seed=2),
                 small_spec(references=100),
                 small_spec(references=120)]  # same artifacts as spec 0
        serial = [result_bytes(r) for r in SerialExecutor().map(specs)]
        clear_memos()
        batched = [result_bytes(r) for r in BatchExecutor().map(specs)]
        assert batched == serial

    def test_groups_share_artifact_keys(self):
        a = small_spec(references=120)
        b = small_spec(references=120)
        c = small_spec(references=120, seed=2)
        assert artifact_keys(a.config) == artifact_keys(b.config)
        assert artifact_keys(a.config) != artifact_keys(c.config)

    def test_make_executor_selects_batched(self):
        assert isinstance(make_executor(batched=True), BatchExecutor)
        assert isinstance(make_executor(), SerialExecutor)
        assert not isinstance(make_executor(), BatchExecutor)


class TestResultCacheCounters:
    def test_stats_track_hits_misses_and_stores(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=100)
        executor = BatchExecutor(cache=cache)
        first = executor.run(spec)
        assert cache.stats() == {"hits": 0, "misses": 1, "stored": 1}
        second = executor.run(spec)
        assert cache.stats() == {"hits": 1, "misses": 1, "stored": 1}
        assert result_bytes(second) == result_bytes(first)
        assert len(cache) == 1

"""Tests for the unified speculation subsystem.

Covers the registry, the registry-backed :class:`SpeculationConfig`
(including the canonical-encoding back-compat contract), the
:class:`SpeculationManager` lifecycle (arming, coalescing, per-kind
attribution), the shared :class:`System` base class, and the
``speculation_matrix`` campaign experiment's determinism contract
(serial == parallel == cached, byte-identical).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    canonical_json,
)
from repro.campaign.spec import config_to_dict
from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.core.forward_progress import (
    CombinedPolicy,
    DisableAdaptiveRoutingPolicy,
    NoOpPolicy,
    SlowStartPolicy,
)
from repro.experiments import speculation_matrix
from repro.experiments.fig4_misspeculation_rate import _injection_config
from repro.interconnect.deadlock import DeadlockReport
from repro.safetynet.manager import SafetyNet
from repro.sim.config import (
    CheckpointConfig,
    ProtocolKind,
    ProtocolVariant,
    SpeculationConfig,
    SystemConfig,
)
from repro.sim.engine import Simulator
from repro.speculation import (
    DirectoryP2POrderSpeculation,
    InterconnectDeadlockSpeculation,
    PeriodicInjectionSpeculation,
    SnoopingCornerCaseSpeculation,
    Speculation,
    SpeculationManager,
    get_speculation,
    speculation_names,
)
from repro.system import AnySystem, DirectorySystem, SnoopingSystem, System, build_system
from repro.system.results import RunResult

#: Content hash of the Figure 4 jbb baseline design point as produced by
#: the pre-speculation-layer encoding.  If this pin breaks, every cached
#: campaign result silently invalidates — see config_to_dict's contract.
FIG4_JBB_BASELINE_HASH = "43f1969363af133b4631"


def small_config(**updates) -> SystemConfig:
    config = SystemConfig.small(num_processors=4, references=120)
    return config.with_updates(**updates) if updates else config


def make_manager():
    sim = Simulator()
    safetynet = SafetyNet(sim, CheckpointConfig(
        directory_interval_cycles=1_000, recovery_latency_cycles=100,
        register_checkpoint_latency_cycles=10), num_nodes=1, interval_cycles=1_000)
    return sim, safetynet, SpeculationManager(sim, safetynet)


class TestRegistry:
    def test_kind_values_are_the_registry_names(self):
        assert set(speculation_names()) == {k.value for k in SpeculationKind}

    def test_lookup_returns_registered_classes(self):
        assert get_speculation("directory-p2p-order") is DirectoryP2POrderSpeculation
        assert get_speculation("snooping-corner-case") is SnoopingCornerCaseSpeculation
        assert (get_speculation("interconnect-deadlock")
                is InterconnectDeadlockSpeculation)
        assert get_speculation("injected") is PeriodicInjectionSpeculation

    def test_unknown_name_raises_with_known_listing(self):
        with pytest.raises(KeyError, match="interconnect-deadlock"):
            get_speculation("nope")

    def test_registry_name_property_roundtrips(self):
        for kind in SpeculationKind:
            assert get_speculation(kind.registry_name).kind == kind


class TestSpeculationConfig:
    def test_default_enabled_set(self):
        assert SpeculationConfig().enabled_speculations() == (
            "directory-p2p-order", "snooping-corner-case",
            "interconnect-deadlock")

    def test_flags_shrink_the_derived_set(self):
        spec = SpeculationConfig(directory_p2p_speculation=False,
                                 snooping_corner_case_speculation=False)
        assert spec.enabled_speculations() == ("interconnect-deadlock",)

    def test_detectors_override_wins(self):
        spec = SpeculationConfig(detectors=["snooping-corner-case"])
        assert spec.enabled_speculations() == ("snooping-corner-case",)
        assert spec.speculates("snooping-corner-case")
        assert not spec.speculates("interconnect-deadlock")

    def test_with_designs(self):
        spec = SpeculationConfig().with_designs(s1=False, s3=True)
        assert not spec.directory_p2p_speculation
        assert spec.snooping_corner_case_speculation
        assert spec.interconnect_no_vc_speculation

    def test_canonical_encoding_omits_default_detectors(self):
        payload = config_to_dict(small_config())
        assert "detectors" not in payload["speculation"]
        explicit = small_config(
            speculation=SpeculationConfig(detectors=("interconnect-deadlock",)))
        assert (config_to_dict(explicit)["speculation"]["detectors"]
                == ["interconnect-deadlock"])

    def test_explicit_detectors_change_the_content_hash(self):
        base = RunSpec(config=small_config())
        explicit = RunSpec(config=small_config(
            speculation=SpeculationConfig(detectors=(
                "directory-p2p-order", "snooping-corner-case",
                "interconnect-deadlock"))))
        assert base.content_hash() != explicit.content_hash()

    def test_fig4_baseline_hash_is_pinned(self):
        """Pre-existing design points must keep their pre-layer cache keys."""
        spec = RunSpec(config=_injection_config("jbb", seed=1, references=400),
                       label="no-injection")
        assert spec.content_hash() == FIG4_JBB_BASELINE_HASH

    def test_no_vc_flag_encoding_diverges_from_the_inert_era(self):
        """The flag used to be inert; it now forces the no-VC network, so
        flag-True canonical forms must not collide with pre-layer cache
        entries simulated under the old no-op semantics."""
        payload = config_to_dict(small_config(
            speculation=SpeculationConfig(interconnect_no_vc_speculation=True)))
        assert (payload["speculation"]["interconnect_no_vc_speculation"]
                == "forces-no-vc-network/v2")
        # Flag-False configs (every pre-existing design point) still encode
        # the plain boolean.
        base = config_to_dict(small_config())
        assert base["speculation"]["interconnect_no_vc_speculation"] is False


class TestArming:
    def test_directory_speculative_arms_s1_and_watchdog(self):
        system = build_system(small_config())
        names = {s.name for s in system.speculation.speculations}
        assert names == {"directory-p2p-order", "interconnect-deadlock"}
        assert all(s.armed_on == system.label
                   for s in system.speculation.speculations)
        assert isinstance(
            system.speculation.policy_for(SpeculationKind.DIRECTORY_P2P_ORDER),
            DisableAdaptiveRoutingPolicy)
        assert isinstance(
            system.speculation.policy_for(SpeculationKind.INTERCONNECT_DEADLOCK),
            CombinedPolicy)

    def test_directory_full_variant_arms_only_the_watchdog(self):
        system = build_system(small_config(variant=ProtocolVariant.FULL))
        names = {s.name for s in system.speculation.speculations}
        assert names == {"interconnect-deadlock"}
        assert not any(c.p2p_detection_enabled for c in system.cache_controllers())

    def test_snooping_arms_s2_and_watchdog(self):
        system = build_system(small_config(protocol=ProtocolKind.SNOOPING))
        names = {s.name for s in system.speculation.speculations}
        assert names == {"snooping-corner-case", "interconnect-deadlock"}
        assert isinstance(
            system.speculation.policy_for(SpeculationKind.SNOOPING_CORNER_CASE),
            SlowStartPolicy)
        assert isinstance(
            system.speculation.policy_for(SpeculationKind.INTERCONNECT_DEADLOCK),
            SlowStartPolicy)

    def test_timeouts_are_three_checkpoint_intervals(self):
        directory = build_system(small_config())
        expected = 3 * directory.config.checkpoint.directory_interval_cycles
        assert all(c.timeout_cycles == expected
                   for c in directory.cache_controllers())
        snooping = build_system(small_config(protocol=ProtocolKind.SNOOPING))
        assert all(c.timeout_cycles == 3 * snooping.checkpoint_interval_cycles()
                   for c in snooping.cache_controllers())

    def test_empty_detector_set_disarms_everything(self):
        config = small_config(speculation=SpeculationConfig(detectors=()))
        system = build_system(config)
        assert system.speculation.speculations == []
        assert all(c.timeout_cycles is None for c in system.cache_controllers())
        assert not any(c.p2p_detection_enabled for c in system.cache_controllers())
        assert isinstance(
            system.speculation.policy_for(SpeculationKind.DIRECTORY_P2P_ORDER),
            NoOpPolicy)

    def test_no_vc_flag_forces_the_section4_network(self):
        config = small_config(
            speculation=SpeculationConfig(interconnect_no_vc_speculation=True))
        system = build_system(config)
        assert system.network.config.speculative_no_vc
        assert system.label.endswith("no-vc")
        # The configuration object itself is untouched (it hashes as-is).
        assert not config.interconnect.speculative_no_vc

    def test_ground_truth_scan_available_on_directory_systems(self):
        system = build_system(small_config())
        watchdog = system.speculation.speculation_for(
            SpeculationKind.INTERCONNECT_DEADLOCK)
        report = watchdog.ground_truth_report(system)
        assert isinstance(report, DeadlockReport)
        assert not report.deadlocked
        assert report.to_json()["deadlocked"] is False
        snooping = build_system(small_config(protocol=ProtocolKind.SNOOPING))
        snoop_watchdog = snooping.speculation.speculation_for(
            SpeculationKind.INTERCONNECT_DEADLOCK)
        assert snoop_watchdog.ground_truth_report(snooping) is None


class TestCoalescing:
    """Satellite: concurrent detections coalesce into a single rollback."""

    def _event(self, kind: SpeculationKind, at: int) -> MisspeculationEvent:
        return MisspeculationEvent(kind=kind, detected_at=at, node=0, address=0x40)

    def test_two_detections_during_rollback_produce_one_recovery(self):
        sim, safetynet, manager = make_manager()
        s1 = manager.attach(DirectoryP2POrderSpeculation(manager))
        watchdog = manager.attach(InterconnectDeadlockSpeculation(manager))

        first = manager.report(self._event(SpeculationKind.DIRECTORY_P2P_ORDER,
                                           sim.now))
        assert isinstance(first, RecoveryRecord)
        assert sim.now < safetynet.stalled_until
        # Two more detections fire while the rollback is still in flight —
        # one of the same kind, one from the deadlock watchdog observing the
        # same broken (already rolled back) state.
        assert manager.report(self._event(SpeculationKind.DIRECTORY_P2P_ORDER,
                                          sim.now)) is None
        assert manager.report(self._event(SpeculationKind.INTERCONNECT_DEADLOCK,
                                          sim.now)) is None

        assert safetynet.recovery_count() == 1
        assert manager.recovery_count() == 1
        fs = manager.framework_stats
        assert fs.detections == 3 and fs.coalesced == 2
        # Per-kind attribution: the recovery belongs to the first detection's
        # kind; the coalesced kinds are accounted as detections only.
        assert fs.recoveries_by_kind == {SpeculationKind.DIRECTORY_P2P_ORDER: 1}
        assert fs.detections_by_kind == {
            SpeculationKind.DIRECTORY_P2P_ORDER: 2,
            SpeculationKind.INTERCONNECT_DEADLOCK: 1}
        # The per-instance accounting matches.
        assert (s1.detections, s1.coalesced, s1.recoveries) == (2, 1, 1)
        assert (watchdog.detections, watchdog.coalesced,
                watchdog.recoveries) == (1, 1, 0)

    def test_recovery_listener_attributes_external_recoveries(self):
        sim, safetynet, manager = make_manager()
        watchdog = manager.attach(InterconnectDeadlockSpeculation(manager))
        # A recovery triggered directly on SafetyNet (outside the manager)
        # still notifies the attached speculation of its kind.
        safetynet.recover(self._event(SpeculationKind.INTERCONNECT_DEADLOCK,
                                      sim.now))
        assert watchdog.recoveries == 1
        assert watchdog.stats()["recoveries"] == 1

    def test_summary_includes_per_speculation_stats(self):
        sim, safetynet, manager = make_manager()
        manager.attach(DirectoryP2POrderSpeculation(manager))
        manager.report(self._event(SpeculationKind.DIRECTORY_P2P_ORDER, sim.now))
        summary = manager.summary()
        assert summary["detections_by_kind"] == {"directory-p2p-order": 1}
        names = [s["name"] for s in summary["speculations"]]
        assert names == ["directory-p2p-order"]


class TestInjectorSpeculation:
    def test_attach_point_is_uniform_across_systems(self):
        for config in (small_config(),
                       small_config(protocol=ProtocolKind.SNOOPING)):
            system = build_system(config)
            # Period = cycles_per_second / rate = 2,500 cycles: short enough
            # to fire inside even the quick snooping run (~12k cycles).
            injector = system.attach_recovery_injector(rate_per_second=400)
            assert isinstance(injector, PeriodicInjectionSpeculation)
            assert isinstance(injector, Speculation)
            assert system.speculation.speculation_for(
                SpeculationKind.INJECTED) is injector
            result = system.run()
            assert injector.injections > 0
            assert result.recoveries_by_kind.get("injected") == result.recoveries
            assert injector.stats()["injections"] == injector.injections

    def test_injection_recoveries_attributed_per_kind(self):
        system = build_system(small_config())
        system.attach_recovery_injector(rate_per_second=50)
        result = system.run()
        assert result.recoveries > 0
        assert result.recoveries_of(SpeculationKind.INJECTED) == result.recoveries
        assert result.detections_of(SpeculationKind.INJECTED) >= result.recoveries


class TestSystemBase:
    def test_build_system_returns_system_subclasses(self):
        directory = build_system(small_config())
        snooping = build_system(small_config(protocol=ProtocolKind.SNOOPING))
        assert isinstance(directory, System) and isinstance(directory,
                                                            DirectorySystem)
        assert isinstance(snooping, System) and isinstance(snooping,
                                                           SnoopingSystem)
        assert AnySystem is System

    def test_shared_surface(self):
        for config in (small_config(),
                       small_config(protocol=ProtocolKind.SNOOPING)):
            system = build_system(config)
            assert system.kind == config.protocol
            system.load_workload()
            assert all(node.processor.references for node in system.nodes)
            assert len(system.cache_controllers()) == config.num_processors
            assert system.checkpoint_interval_cycles() > 0
            assert system.invariant_errors() == []

    def test_snooping_node_invariant_surface(self):
        system = build_system(small_config(protocol=ProtocolKind.SNOOPING))
        assert all(node.invariant_errors() == [] for node in system.nodes)


class TestResultAccounting:
    """Satellite: per-kind counts survive the JSON round-trip and surface."""

    def test_detections_by_kind_round_trips(self):
        system = build_system(small_config())
        system.attach_recovery_injector(rate_per_second=50)
        result = system.run()
        assert result.detections_by_kind  # injector fired
        clone = RunResult.from_json(json.loads(canonical_json(result.to_json())))
        assert clone.detections_by_kind == result.detections_by_kind
        assert clone.recoveries_by_kind == result.recoveries_by_kind
        assert canonical_json(clone.to_json()) == canonical_json(result.to_json())

    def test_summary_line_breaks_recoveries_down_per_kind(self):
        result = RunResult(
            workload="jbb", config_label="x", runtime_cycles=10,
            references_completed=1, instructions_retired=1, finished=True,
            recoveries=3,
            recoveries_by_kind={"injected": 2, "interconnect-deadlock": 1})
        line = result.summary_line()
        assert "recoveries=3 (injected=2, interconnect-deadlock=1)" in line

    def test_summary_line_stays_compact_without_recoveries(self):
        result = RunResult(
            workload="jbb", config_label="x", runtime_cycles=10,
            references_completed=1, instructions_retired=1, finished=True)
        assert "recoveries=0," in result.summary_line()
        assert "(" not in result.summary_line().split("]")[1]

    def test_v1_result_payloads_are_rejected_not_half_loaded(self):
        """v1 cache entries lack detections_by_kind; loading one would report
        silently empty per-kind counts, so the schema bump rejects them and
        the result cache re-simulates instead."""
        result = RunResult(
            workload="jbb", config_label="x", runtime_cycles=10,
            references_completed=1, instructions_retired=1, finished=True)
        payload = result.to_json()
        assert payload["schema"] == "repro.system.results/v2"
        payload["schema"] = "repro.system.results/v1"
        del payload["detections_by_kind"]
        with pytest.raises(ValueError, match="unsupported result schema"):
            RunResult.from_json(payload)


class TestSpeculationMatrix:
    SUBSET = dict(combinations=((False, False, False), (True, True, True)),
                  topologies=("torus",), scales=(4,), references=60)

    def test_rows_cover_the_grid(self):
        result = speculation_matrix.run("jbb", **self.SUBSET)
        assert set(result.rows) == {
            "directory/none@torus/4", "snooping/none@torus/4",
            "directory/S1+S2+S3@torus/4", "snooping/S1+S2+S3@torus/4"}
        for row in result.rows.values():
            assert row["finished"]
        none_row = result.rows["directory/none@torus/4"]
        assert (none_row["p2p_recoveries"] == none_row["corner_case_recoveries"]
                == none_row["deadlock_recoveries"] == 0)

    def test_combination_label(self):
        assert speculation_matrix.combination_label(False, False, False) == "none"
        assert speculation_matrix.combination_label(True, False, True) == "S1+S3"

    def test_point_config_maps_own_speculation_to_variant(self):
        directory_off = speculation_matrix._point_config(
            "jbb", ProtocolKind.DIRECTORY, (False, True, False), "torus", 4,
            references=60, seed=1)
        assert directory_off.variant == ProtocolVariant.FULL
        snooping_on = speculation_matrix._point_config(
            "jbb", ProtocolKind.SNOOPING, (False, True, False), "torus", 4,
            references=60, seed=1)
        assert snooping_on.variant == ProtocolVariant.SPECULATIVE
        s3_point = speculation_matrix._point_config(
            "jbb", ProtocolKind.DIRECTORY, (False, False, True), "torus", 4,
            references=60, seed=1)
        assert s3_point.speculation.interconnect_no_vc_speculation

    def test_serial_parallel_and_cached_are_byte_identical(self, tmp_path):
        serial = speculation_matrix.run("jbb", executor=SerialExecutor(),
                                        **self.SUBSET)
        with ParallelExecutor(max_workers=2) as executor:
            parallel = speculation_matrix.run("jbb", executor=executor,
                                              **self.SUBSET)
        cache = ResultCache(str(tmp_path / "cache"))
        warm = speculation_matrix.run(
            "jbb", executor=SerialExecutor(cache=cache), **self.SUBSET)
        cached = speculation_matrix.run(
            "jbb", executor=SerialExecutor(cache=cache), **self.SUBSET)
        assert cache.hits > 0
        blobs = {canonical_json(r.to_json())
                 for r in (serial, parallel, warm, cached)}
        assert len(blobs) == 1

    def test_registered_with_the_campaign(self):
        from repro.campaign import discover, experiment_names
        discover()
        assert "speculation_matrix" in experiment_names()

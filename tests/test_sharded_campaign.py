"""Tests for sharded, crash-safe, resumable campaign execution.

The load-bearing property is the extended determinism contract: the same
batch of design points must produce byte-identical results whether it runs
serially, sharded over N workers on a shared store, or **killed mid-spec
and resumed** — and a resume must never re-simulate a completed spec (the
cache hit counters prove it).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.campaign import (
    CampaignManifest,
    LeaseBoard,
    ResultCache,
    RunSpec,
    SerialExecutor,
    ShardedExecutor,
    SweepSpec,
    aggregate_partial,
    campaign_status,
    canonical_json,
    config_from_dict,
    config_to_dict,
    execute_spec,
    make_executor,
    read_manifest,
    run_worker,
    spec_from_json,
    worker_summaries,
    write_manifest,
)
from repro.campaign.executor import CACHE_SCHEMA
from repro.campaign.sharding import _Heartbeat, _worker_entry
from repro.experiments.common import benchmark_config
from repro.sim.config import ProtocolKind, SpeculationConfig, SystemConfig

#: Deadline for every polling loop in this module; generous because CI
#: machines can be slow, but the loops exit the moment the condition holds.
POLL_DEADLINE = 120.0


def small_spec(seed: int = 1, references: int = 120, **spec_kwargs) -> RunSpec:
    return RunSpec(config=SystemConfig.small(4, references=references,
                                             seed=seed),
                   label=f"seed{seed}", **spec_kwargs)


def small_sweep(seeds=(1, 2, 3), references: int = 120) -> SweepSpec:
    return SweepSpec.of("sharded-test",
                        [small_spec(seed=s, references=references)
                         for s in seeds])


def result_bytes(results) -> list:
    return [canonical_json(result.to_json()) for result in results]


def wait_until(condition, what: str, deadline: float = POLL_DEADLINE) -> None:
    start = time.time()
    while not condition():
        if time.time() - start > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(0.05)


# --------------------------------------------------------------- spec round trip
class TestSpecRoundTrip:
    CONFIGS = [
        SystemConfig.small(4, references=50),
        benchmark_config("jbb", references=50),
        benchmark_config("hotspot", topology="ring", num_processors=16,
                         references=50),
        benchmark_config("oltp", protocol=ProtocolKind.SNOOPING,
                         references=50,
                         speculation=SpeculationConfig(
                             interconnect_no_vc_speculation=True)),
        benchmark_config("jbb", references=50,
                         speculation=SpeculationConfig(
                             detectors=("interconnect-deadlock",))),
    ]

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: c.workload.name +
                             ("/" + c.protocol.value))
    def test_config_dict_round_trip(self, config):
        """config_from_dict is the exact inverse of config_to_dict."""
        payload = config_to_dict(config)
        rebuilt = config_from_dict(payload)
        assert canonical_json(config_to_dict(rebuilt)) == \
            canonical_json(payload)

    def test_spec_json_round_trip_keeps_content_hash(self):
        spec = small_spec(recovery_rate_per_second=0.0, max_cycles=123)
        rebuilt = spec_from_json(spec.to_json())
        assert rebuilt.content_hash() == spec.content_hash()
        assert rebuilt == spec

    def test_spec_from_json_rejects_unknown_schema(self):
        payload = small_spec().to_json()
        payload["schema"] = "something/else"
        with pytest.raises(ValueError, match="unsupported spec schema"):
            spec_from_json(payload)


# --------------------------------------------------------------------- manifest
class TestManifest:
    def test_write_read_round_trip(self, tmp_path):
        store = str(tmp_path)
        sweep = small_sweep()
        manifest = CampaignManifest.of("ignored", sweep)
        assert manifest.name == "sharded-test"  # sweep name wins
        assert manifest.campaign_hash() == sweep.content_hash()
        write_manifest(store, manifest)
        loaded = read_manifest(store, manifest.campaign_hash())
        assert loaded is not None
        assert loaded.name == manifest.name
        assert loaded.spec_hashes() == manifest.spec_hashes()
        assert [s.label for s in loaded.specs] == \
            [s.label for s in manifest.specs]

    def test_read_missing_manifest_is_none(self, tmp_path):
        assert read_manifest(str(tmp_path), "deadbeef") is None

    def test_tampered_spec_hash_rejected(self, tmp_path):
        manifest = CampaignManifest.of("t", [small_spec()])
        payload = manifest.to_json()
        payload["specs"][0]["hash"] = "0" * 20
        with pytest.raises(ValueError, match="hash mismatch"):
            CampaignManifest.from_json(payload)

    def test_no_tmp_files_linger(self, tmp_path):
        store = str(tmp_path)
        write_manifest(store, CampaignManifest.of("t", [small_spec()]))
        leftovers = [name for name in os.listdir(os.path.join(store,
                                                              "manifests"))
                     if name.endswith(".tmp")]
        assert leftovers == []


# --------------------------------------------------------- result cache envelope
class TestResultCacheEnvelope:
    def test_envelope_meta_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=60)
        result = execute_spec(spec)
        cache.put(spec, result, meta={"wall_seconds": 1.25, "worker": "w0"})
        loaded = cache.get(spec)
        assert canonical_json(loaded.to_json()) == \
            canonical_json(result.to_json())
        assert cache.meta(spec) == {"wall_seconds": 1.25, "worker": "w0"}
        with open(cache.path_for(spec), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["schema"] == CACHE_SCHEMA
        assert payload["spec_hash"] == spec.content_hash()

    def test_legacy_bare_entry_still_served(self, tmp_path):
        """Pre-envelope entries (a raw result document) remain readable."""
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=60)
        result = execute_spec(spec)
        with open(cache.path_for(spec), "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, sort_keys=True)
        loaded = cache.get(spec)
        assert loaded is not None
        assert canonical_json(loaded.to_json()) == \
            canonical_json(result.to_json())
        assert cache.meta(spec) == {}

    def test_half_written_entry_is_a_miss(self, tmp_path):
        """A torn entry (crash mid-write) must never poison the spec."""
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=60)
        result = execute_spec(spec)
        complete = canonical_json({"schema": CACHE_SCHEMA,
                                   "spec_hash": spec.content_hash(),
                                   "result": result.to_json(), "meta": {}})
        with open(cache.path_for(spec), "w", encoding="utf-8") as handle:
            handle.write(complete[:len(complete) // 2])  # truncated JSON
        assert cache.get(spec) is None
        assert cache.misses == 1
        # The poisoned entry heals on the next store.
        cache.put(spec, result)
        assert cache.get(spec) is not None

    def test_misfiled_entry_rejected(self, tmp_path):
        """An envelope recorded for another spec hash is never served."""
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=60)
        result = execute_spec(spec)
        with open(cache.path_for(spec), "w", encoding="utf-8") as handle:
            json.dump({"schema": CACHE_SCHEMA, "spec_hash": "f" * 20,
                       "result": result.to_json(), "meta": {}}, handle)
        assert cache.get(spec) is None

    def test_peek_counts_no_traffic(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=60)
        assert not cache.peek(spec)
        cache.put(spec, execute_spec(spec))
        assert cache.peek(spec)
        assert cache.hits == 0 and cache.misses == 0

    def test_serial_executor_records_wall_clock(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = small_spec(references=60)
        SerialExecutor(cache=cache).map([spec])
        meta = cache.meta(spec)
        assert meta is not None and meta["wall_seconds"] > 0


# ----------------------------------------------------------------------- leases
class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        store = str(tmp_path)
        alice = LeaseBoard(store, "alice")
        bob = LeaseBoard(store, "bob")
        assert alice.claim("spec1")
        assert not bob.claim("spec1")
        assert bob.holder("spec1") == "alice"
        alice.release("spec1")
        assert bob.claim("spec1")

    def test_fresh_lease_cannot_be_reclaimed(self, tmp_path):
        store = str(tmp_path)
        alice = LeaseBoard(store, "alice", stale_after=60.0)
        bob = LeaseBoard(store, "bob", stale_after=60.0)
        assert alice.claim("spec1")
        assert not bob.is_stale("spec1")
        assert not bob.reclaim("spec1")
        assert bob.holder("spec1") == "alice"

    def test_stale_lease_reclaimed_exactly_once(self, tmp_path):
        store = str(tmp_path)
        dead = LeaseBoard(store, "dead", stale_after=0.2)
        assert dead.claim("spec1")
        wait_until(lambda: dead.is_stale("spec1"), "lease to go stale")
        bob = LeaseBoard(store, "bob", stale_after=0.2)
        carol = LeaseBoard(store, "carol", stale_after=0.2)
        assert bob.reclaim("spec1")
        # Bob's takeover lease is fresh, so Carol can neither claim nor
        # reclaim it.
        assert not carol.claim("spec1")
        assert not carol.reclaim("spec1")
        assert carol.holder("spec1") == "bob"

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        store = str(tmp_path)
        board = LeaseBoard(store, "beater", stale_after=0.6)
        assert board.claim("spec1")
        with _Heartbeat(board, interval=0.1):
            time.sleep(1.2)  # well past stale_after without heartbeats
            assert not board.is_stale("spec1")
        board.release("spec1")


# ------------------------------------------------------------- sharded executor
class TestShardedExecutor:
    def test_sharded_is_byte_identical_to_serial(self, tmp_path):
        store = str(tmp_path)
        sweep = small_sweep()
        serial = SerialExecutor().map(sweep)
        sharded = ShardedExecutor(2, store, stale_after=10.0,
                                  poll_interval=0.1).map(sweep)
        assert result_bytes(sharded) == result_bytes(serial)
        # The durable campaign record exists and is complete.
        manifest = read_manifest(store, sweep.content_hash())
        assert manifest is not None and len(manifest) == len(sweep)
        partial = aggregate_partial(store, manifest.to_json())
        assert partial["completed"] == partial["total"] == len(sweep)
        assert partial["missing"] == []
        # Every spec records which worker ran it and how long it took.
        for spec_hash, meta in partial["points"].items():
            assert meta["wall_seconds"] > 0
            assert meta["worker"].startswith("w")

    def test_resume_of_complete_campaign_is_pure_cache(self, tmp_path):
        store = str(tmp_path)
        sweep = small_sweep()
        first = ShardedExecutor(2, store, stale_after=10.0,
                                poll_interval=0.1).map(sweep)
        resumed_executor = ShardedExecutor(2, store, resume=True)
        resumed = resumed_executor.map(sweep)
        assert result_bytes(resumed) == result_bytes(first)
        assert resumed_executor.cache.hits == len(sweep)
        assert resumed_executor.cache.misses == 0
        assert resumed_executor.cache.stored == 0

    def test_resume_without_manifest_fails_fast(self, tmp_path):
        with pytest.raises(RuntimeError, match="no.*manifest"):
            ShardedExecutor(1, str(tmp_path),
                            resume=True).map(small_sweep())

    def test_make_executor_wiring(self, tmp_path):
        store = str(tmp_path)
        assert isinstance(make_executor(workers=2, cache_dir=store),
                          ShardedExecutor)
        with pytest.raises(ValueError, match="shared store"):
            make_executor(workers=2)
        with pytest.raises(ValueError, match="resume"):
            make_executor(resume=True)

    def test_worker_requires_published_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no manifest"):
            run_worker(str(tmp_path), "deadbeef", "w0")


# ------------------------------------------------------------- kill and resume
class TestKillAndResume:
    def test_sigkill_mid_spec_then_resume_is_byte_identical(self, tmp_path):
        """The crash/resume satellite, end to end.

        One worker is hard-killed (SIGKILL) mid-spec; its lease goes stale
        and is reclaimed, the campaign is finished by a second worker, and
        the resumed report is byte-identical to an uninterrupted serial
        run with **zero** re-simulation of completed specs (cache hit
        counters prove it).
        """
        store = str(tmp_path)
        # First spec fast, the rest slow: the victim worker completes the
        # first spec and is killed somewhere inside a slow one.
        sweep = SweepSpec.of("kill-resume", [
            small_spec(seed=1, references=100),
            small_spec(seed=2, references=4000),
            small_spec(seed=3, references=4000),
        ])
        hashes = [spec.content_hash() for spec in sweep]
        manifest = CampaignManifest.of("kill-resume", sweep)
        write_manifest(store, manifest)

        ctx = multiprocessing.get_context("spawn")
        victim = ctx.Process(
            target=_worker_entry,
            args=(store, manifest.campaign_hash(), "victim", 1.0))
        victim.start()
        try:
            probe = ResultCache(store)
            board = LeaseBoard(store, "observer", stale_after=1.0)

            def mid_spec() -> bool:
                done = sum(os.path.exists(probe.path_for_hash(h))
                           for h in hashes)
                leased = any(board.is_claimed(h) for h in hashes)
                return done >= 1 and leased and victim.is_alive()

            wait_until(mid_spec, "the worker to be mid-spec with one "
                                 "result landed")
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.join()
        assert victim.exitcode == -signal.SIGKILL

        # The kill left an orphaned claim behind; it goes stale because
        # nothing heartbeats it any more.
        orphaned = [h for h in hashes if board.is_claimed(h)]
        assert orphaned, "SIGKILL should strand the in-flight lease"
        wait_until(lambda: all(board.is_stale(h) for h in orphaned),
                   "the orphaned lease to go stale")
        completed_before_resume = [
            h for h in hashes if os.path.exists(probe.path_for_hash(h))]
        assert len(completed_before_resume) < len(sweep)

        # Resume: a rescuer worker reclaims the stale lease and finishes
        # only what is missing.
        rescuer = run_worker(store, manifest.campaign_hash(), "rescuer",
                             stale_after=1.0)
        assert rescuer["reclaimed"] >= 1
        assert set(rescuer["executed"]) == \
            set(hashes) - set(completed_before_resume)

        # The resumed campaign serves everything from the store: all hits,
        # no misses, no re-simulation.
        resumed_executor = ShardedExecutor(2, store, resume=True)
        resumed = resumed_executor.map(sweep)
        assert resumed_executor.cache.hits == len(sweep)
        assert resumed_executor.cache.misses == 0

        # Byte-identical to an uninterrupted serial run.
        serial = SerialExecutor().map(sweep)
        assert result_bytes(resumed) == result_bytes(serial)

        # The victim's partial progress survived its death (worker
        # summaries are written crash-safely after every spec), and no
        # spec was executed by both workers.
        summaries = {s["worker"].split("-")[0]: s
                     for s in worker_summaries(store,
                                               manifest.campaign_hash())}
        assert set(summaries["victim"]["executed"]) == \
            set(completed_before_resume)
        assert not (set(summaries["victim"]["executed"])
                    & set(summaries["rescuer"]["executed"]))


# ------------------------------------------------------- status and aggregation
class TestStatusAndAggregation:
    def test_partial_report_tracks_progress(self, tmp_path):
        store = str(tmp_path)
        sweep = small_sweep()
        manifest = CampaignManifest.of("progress", sweep)
        write_manifest(store, manifest)
        cache = ResultCache(store)
        first = sweep.specs[0]
        cache.put(first, execute_spec(first),
                  meta={"wall_seconds": 0.5, "worker": "w0"})
        partial = aggregate_partial(store, manifest.to_json())
        assert partial["total"] == 3
        assert partial["completed"] == 1
        assert set(partial["missing"]) == \
            {s.content_hash() for s in sweep.specs[1:]}
        assert partial["wall_seconds_completed"] == pytest.approx(0.5)
        # The document is persisted atomically for crashed-campaign status.
        path = os.path.join(store, "partial",
                            manifest.campaign_hash() + ".json")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["completed"] == 1

    def test_status_text(self, tmp_path):
        store = str(tmp_path)
        assert "no campaign manifests" in campaign_status(store)
        sweep = small_sweep()
        write_manifest(store, CampaignManifest.of("progress", sweep))
        text = campaign_status(store)
        assert "sharded-test" in text
        assert "0/3" in text

    def test_status_counts_stale_and_active_leases(self, tmp_path):
        store = str(tmp_path)
        sweep = small_sweep()
        manifest = CampaignManifest.of("leases", sweep)
        write_manifest(store, manifest)
        board = LeaseBoard(store, "w0", stale_after=0.2)
        board.claim(sweep.specs[0].content_hash())
        wait_until(lambda: board.is_stale(sweep.specs[0].content_hash()),
                   "lease to go stale")
        fresh = LeaseBoard(store, "w1", stale_after=600.0)
        fresh.claim(sweep.specs[1].content_hash())
        partial = aggregate_partial(store, manifest.to_json())
        # aggregate_partial uses the default staleness threshold, under
        # which both leases are fresh; drive the classification directly.
        assert partial["leases"]["active"] + partial["leases"]["stale"] == 2


# ------------------------------------------------------------------ runner CLI
class TestRunnerFlags:
    def test_status_requires_cache(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--status"])

    def test_workers_require_cache(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--workers", "2"])

    def test_resume_requires_workers(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--resume"])

    def test_workers_exclusive_with_parallel(self, tmp_path):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--workers", "2", "--cache", str(tmp_path),
                         "--parallel", "2"])

    def test_status_of_empty_store(self, tmp_path, capsys):
        from repro.experiments import runner

        assert runner.main(["--status", "--cache", str(tmp_path)]) == 0
        assert "no campaign manifests" in capsys.readouterr().out

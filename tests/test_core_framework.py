"""Unit tests for the speculation-for-simplicity framework (repro.core)."""

from __future__ import annotations

from typing import List

import pytest

from repro.core.catalog import TABLE1_MECHANISMS, mechanism_for, table1_rows
from repro.core.detection import RecoveryRateInjector, transaction_timeout_cycles
from repro.core.events import MisspeculationEvent, RecoveryRecord, SpeculationKind
from repro.core.forward_progress import (
    CombinedPolicy,
    DisableAdaptiveRoutingPolicy,
    NoOpPolicy,
    SlowStartGate,
    SlowStartPolicy,
)
from repro.core.framework import SpeculationFramework
from repro.safetynet.manager import SafetyNet
from repro.sim.config import CheckpointConfig, SpeculationConfig
from repro.sim.engine import Simulator


def _event(kind=SpeculationKind.DIRECTORY_P2P_ORDER, at=0) -> MisspeculationEvent:
    return MisspeculationEvent(kind=kind, detected_at=at, node=1, address=0x40)


def make_framework():
    sim = Simulator()
    safetynet = SafetyNet(sim, CheckpointConfig(
        directory_interval_cycles=1_000, recovery_latency_cycles=100,
        register_checkpoint_latency_cycles=10), num_nodes=1, interval_cycles=1_000)
    return sim, safetynet, SpeculationFramework(sim, safetynet)


class TestFramework:
    def test_report_triggers_recovery_and_policy(self):
        sim, safetynet, framework = make_framework()
        applied: List[MisspeculationEvent] = []

        class Probe(NoOpPolicy):
            def apply(self, event):
                applied.append(event)

        framework.set_policy(SpeculationKind.DIRECTORY_P2P_ORDER, Probe())
        record = framework.report(_event())
        assert isinstance(record, RecoveryRecord)
        assert applied and applied[0].kind == SpeculationKind.DIRECTORY_P2P_ORDER
        assert framework.recovery_count() == 1
        assert safetynet.recovery_count() == 1

    def test_detections_during_recovery_are_coalesced(self):
        sim, safetynet, framework = make_framework()
        first = framework.report(_event())
        assert first is not None
        # A second detection before the resume point observes rolled-back
        # state and must not trigger another recovery.
        second = framework.report(_event(at=sim.now))
        assert second is None
        assert framework.recovery_count() == 1
        assert framework.detection_count() == 2
        assert framework.framework_stats.coalesced == 1

    def test_unregistered_kind_uses_noop_policy(self):
        sim, safetynet, framework = make_framework()
        assert isinstance(framework.policy_for(SpeculationKind.INJECTED), NoOpPolicy)

    def test_recoveries_per_second(self):
        sim, safetynet, framework = make_framework()
        framework.report(_event())
        assert framework.recoveries_per_second(1_000_000, 1e6) == pytest.approx(1.0)
        assert framework.recoveries_per_second(0, 1e6) == 0.0

    def test_summary_shape(self):
        sim, safetynet, framework = make_framework()
        framework.report(_event())
        summary = framework.summary()
        assert summary["recoveries"] == 1
        assert summary["detections"] == 1
        assert SpeculationKind.DIRECTORY_P2P_ORDER.value in summary["recoveries_by_kind"]


class TestForwardProgress:
    def test_slow_start_gate_limits_outstanding(self):
        sim = Simulator()
        gate = SlowStartGate(sim)
        gate.enter_slow_start(max_outstanding=1, duration_cycles=100)
        assert gate.may_issue(0)
        assert not gate.may_issue(1)
        gate.retired(0)
        assert gate.may_issue(1)
        assert gate.denials == 1

    def test_slow_start_expires(self):
        sim = Simulator()
        gate = SlowStartGate(sim)
        gate.enter_slow_start(max_outstanding=1, duration_cycles=50)
        sim.schedule(60, lambda: None)
        sim.run()
        assert not gate.active
        assert gate.may_issue(0)
        assert gate.may_issue(1)

    def test_slow_start_reset_outstanding(self):
        sim = Simulator()
        gate = SlowStartGate(sim)
        gate.may_issue(0)
        gate.may_issue(1)
        gate.reset_outstanding()
        assert gate.outstanding == 0

    def test_slow_start_validation(self):
        gate = SlowStartGate(Simulator())
        with pytest.raises(ValueError):
            gate.enter_slow_start(max_outstanding=0, duration_cycles=10)

    def test_slow_start_policy_applies_gate(self):
        sim = Simulator()
        gate = SlowStartGate(sim)
        policy = SlowStartPolicy(gate, max_outstanding=1, duration_cycles=100)
        policy.apply(_event())
        assert gate.active
        assert policy.applications == 1

    def test_disable_adaptive_routing_policy(self):
        calls = []
        policy = DisableAdaptiveRoutingPolicy(calls.append, window_cycles=5_000)
        policy.apply(_event())
        assert calls == [5_000]
        with pytest.raises(ValueError):
            DisableAdaptiveRoutingPolicy(calls.append, window_cycles=-1)

    def test_combined_policy_escalates_after_free_retries(self):
        sim = Simulator()
        heavy_calls = []

        class Heavy(NoOpPolicy):
            def apply(self, event):
                heavy_calls.append(event)

        policy = CombinedPolicy(sim, Heavy(), free_retries=1, window_cycles=10_000)
        policy.apply(_event())
        assert heavy_calls == []           # first recovery: just resume
        policy.apply(_event())
        assert len(heavy_calls) == 1       # second within window: escalate
        assert policy.escalations == 1

    def test_combined_policy_window_expires(self):
        sim = Simulator()
        heavy_calls = []

        class Heavy(NoOpPolicy):
            def apply(self, event):
                heavy_calls.append(event)

        policy = CombinedPolicy(sim, Heavy(), free_retries=1, window_cycles=100)
        policy.apply(_event())
        sim.schedule(500, lambda: None)
        sim.run()
        policy.apply(_event())
        assert heavy_calls == []  # outside the window: counts reset


class TestDetectionHelpers:
    def test_timeout_is_three_checkpoint_intervals(self):
        timeout = transaction_timeout_cycles(
            CheckpointConfig(directory_interval_cycles=100_000), SpeculationConfig())
        assert timeout == 300_000

    def test_timeout_override_interval(self):
        timeout = transaction_timeout_cycles(
            CheckpointConfig(), SpeculationConfig(timeout_checkpoint_intervals=2),
            checkpoint_interval_cycles=5_000)
        assert timeout == 10_000

    def test_injector_period(self):
        sim = Simulator()
        injector = RecoveryRateInjector(sim, lambda e: None, rate_per_second=10,
                                        cycles_per_second=1e6)
        assert injector.period_cycles == 100_000
        zero = RecoveryRateInjector(sim, lambda e: None, rate_per_second=0,
                                    cycles_per_second=1e6)
        assert zero.period_cycles is None

    def test_injector_fires_at_rate(self):
        sim = Simulator()
        events = []
        injector = RecoveryRateInjector(sim, events.append, rate_per_second=5,
                                        cycles_per_second=10_000)
        injector.start()
        sim.schedule(10_000, lambda: None)
        sim.run(until=10_000)
        assert len(events) == 5
        assert all(e.kind == SpeculationKind.INJECTED for e in events)

    def test_injector_stop(self):
        sim = Simulator()
        events = []
        injector = RecoveryRateInjector(sim, events.append, rate_per_second=5,
                                        cycles_per_second=10_000)
        injector.start()
        injector.stop()
        sim.run(until=10_000)
        assert events == []

    def test_injector_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            RecoveryRateInjector(sim, lambda e: None, rate_per_second=-1,
                                 cycles_per_second=1e6)
        with pytest.raises(ValueError):
            RecoveryRateInjector(sim, lambda e: None, rate_per_second=1,
                                 cycles_per_second=0)


class TestCatalog:
    def test_three_mechanisms(self):
        assert len(TABLE1_MECHANISMS) == 3
        kinds = {m.kind for m in TABLE1_MECHANISMS}
        assert kinds == {SpeculationKind.DIRECTORY_P2P_ORDER,
                         SpeculationKind.SNOOPING_CORNER_CASE,
                         SpeculationKind.INTERCONNECT_DEADLOCK}

    def test_all_use_safetynet_recovery(self):
        assert all(m.recovery == "SafetyNet" for m in TABLE1_MECHANISMS)

    def test_mechanism_lookup(self):
        mech = mechanism_for(SpeculationKind.SNOOPING_CORNER_CASE)
        assert "snooping" in mech.title.lower()
        with pytest.raises(KeyError):
            mechanism_for(SpeculationKind.INJECTED)

    def test_table1_rows_structure(self):
        rows = table1_rows()
        assert "(1) Infrequency of mis-speculation" in rows
        assert "(4) Forward Progress" in rows
        assert all(len(cells) == 3 for cells in rows.values())

    def test_implemented_by_points_to_real_modules(self):
        import importlib
        for mechanism in TABLE1_MECHANISMS:
            module_name = mechanism.implemented_by.split()[0].rstrip(",")
            importlib.import_module(module_name)

"""Tests for the wait-for-graph machinery and common coherence helpers."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.coherence.common import (
    MemoryOp,
    MemoryRequest,
    Transaction,
    block_address,
    home_node,
)
from repro.interconnect.deadlock import (
    WaitForGraph,
    detect_endpoint_deadlock,
)


class TestWaitForGraph:
    def test_empty_graph_has_no_cycle(self):
        assert not WaitForGraph().has_cycle()

    def test_chain_has_no_cycle(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert not graph.has_cycle()

    def test_two_node_cycle_detected(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"a", "b"}

    def test_long_cycle_detected(self):
        graph = WaitForGraph()
        nodes = list(range(6))
        for i in nodes:
            graph.add_edge(i, (i + 1) % 6)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == set(nodes)

    def test_self_loop_is_a_cycle(self):
        graph = WaitForGraph()
        graph.add_edge("x", "x")
        assert graph.has_cycle()

    def test_disconnected_components(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_edge("c", "d")
        graph.add_edge("d", "c")
        assert graph.has_cycle()

    def test_nodes_and_successors(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_node("z")
        assert set(graph.nodes) == {"a", "b", "z"}
        assert graph.successors("a") == {"b"}
        assert graph.successors("z") == set()

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=0, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_acyclic_iff_topological_order_exists(self, edges):
        """Property: find_cycle agrees with a reference topological sort."""
        graph = WaitForGraph()
        adjacency = {}
        for a, b in edges:
            graph.add_edge(a, b)
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set())
        # Kahn's algorithm as the reference oracle.
        indegree = {n: 0 for n in adjacency}
        for a in adjacency:
            for b in adjacency[a]:
                indegree[b] += 1
        frontier = [n for n, d in indegree.items() if d == 0]
        visited = 0
        while frontier:
            node = frontier.pop()
            visited += 1
            for succ in adjacency[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        has_cycle_reference = visited != len(adjacency)
        assert graph.has_cycle() == has_cycle_reference

    def test_endpoint_deadlock_wrapper(self):
        report = detect_endpoint_deadlock({"P1": "P2", "P2": "P1"})
        assert report.deadlocked
        assert report.blocked_resources == 2
        assert bool(report)
        ok = detect_endpoint_deadlock({"P1": "P2"})
        assert not ok.deadlocked


class TestCommonHelpers:
    def test_block_address_alignment(self):
        assert block_address(0, 64) == 0
        assert block_address(65, 64) == 64
        assert block_address(127, 64) == 64
        assert block_address(128, 64) == 128

    def test_block_address_requires_power_of_two(self):
        with pytest.raises(ValueError):
            block_address(100, 48)

    def test_home_node_interleaving(self):
        homes = {home_node(64 * i, 4, 64) for i in range(8)}
        assert homes == {0, 1, 2, 3}
        assert home_node(0, 4, 64) == 0
        assert home_node(64, 4, 64) == 1

    def test_home_node_validation(self):
        with pytest.raises(ValueError):
            home_node(0, 0, 64)

    def test_memory_request_latency(self):
        request = MemoryRequest(node=0, op=MemoryOp.LOAD, address=0)
        with pytest.raises(ValueError):
            _ = request.latency
        request.issued_at, request.completed_at = 10, 35
        assert request.latency == 25

    def test_transaction_completion_is_idempotent(self):
        calls = []
        txn = Transaction(node=0, address=0, op=MemoryOp.STORE, started_at=0)
        txn.on_complete = calls.append
        txn.complete()
        txn.complete()
        assert len(calls) == 1

    def test_transaction_satisfied_requires_data_and_acks(self):
        txn = Transaction(node=0, address=0, op=MemoryOp.STORE, started_at=0,
                          acks_needed=2)
        assert not txn.satisfied
        txn.data_received = True
        assert not txn.satisfied
        txn.acks_received = 2
        assert txn.satisfied

    def test_transaction_ids_unique(self):
        a = Transaction(node=0, address=0, op=MemoryOp.LOAD, started_at=0)
        b = Transaction(node=0, address=0, op=MemoryOp.LOAD, started_at=0)
        assert a.txn_id != b.txn_id

"""Tests for the pluggable topology layer and the topology × scale campaign.

Covers the :class:`~repro.interconnect.topology.Topology` contract for the
mesh and ring implementations (the torus keeps its own long-standing suite
in ``test_topology_routing.py``), the registry, the ``TopologyConfig``
back-compat / content-hash-stability rules, system builds at 4/16/64 nodes,
the ring + no-VC deadlock-and-recover scenario, and the determinism of the
``topology_scale`` experiment under serial and parallel execution.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign.executor import ParallelExecutor, ResultCache, SerialExecutor
from repro.campaign.spec import RunSpec, canonical_json, config_to_dict
from repro.core.events import SpeculationKind
from repro.experiments import topology_scale
from repro.experiments.common import benchmark_config
from repro.interconnect.message import MessageClass
from repro.interconnect.network import InterconnectNetwork, TorusNetwork, make_message
from repro.interconnect.topology import (
    Direction,
    MeshTopology,
    RingTopology,
    Topology,
    TorusTopology,
    make_topology,
    register_topology,
    topology_kinds,
)
from repro.sim.config import (
    CheckpointConfig,
    InterconnectConfig,
    RoutingPolicy,
    SystemConfig,
    TopologyConfig,
    WorkloadConfig,
)
from repro.sim.engine import Simulator
from repro.system import build_system


# --------------------------------------------------------------------- geometry
class TestMeshTopology:
    def test_edges_have_no_wraparound(self):
        mesh = MeshTopology(4, 4)
        assert mesh.neighbor(3, Direction.EAST) == 3      # east edge: no link
        assert mesh.neighbor(0, Direction.WEST) == 0
        assert mesh.neighbor(0, Direction.NORTH) == 0
        assert mesh.neighbor(12, Direction.SOUTH) == 12
        assert mesh.neighbor(0, Direction.EAST) == 1

    def test_corner_and_interior_port_counts(self):
        mesh = MeshTopology(4, 4)
        assert len(mesh.neighbors(0)) == 2                # corner
        assert len(mesh.neighbors(1)) == 3                # edge
        assert len(mesh.neighbors(5)) == 4                # interior

    def test_distance_is_manhattan(self):
        mesh = MeshTopology(4, 4)
        assert mesh.distance(0, 15) == 6                  # torus would say 2
        assert mesh.distance(0, 3) == 3

    def test_mean_distance_exceeds_torus(self):
        assert (MeshTopology(4, 4).all_pairs_mean_distance()
                > TorusTopology(4, 4).all_pairs_mean_distance())

    @pytest.mark.parametrize("width,height", [(2, 2), (3, 4), (8, 8)])
    def test_minimal_directions_reach_destination(self, width, height):
        mesh = MeshTopology(width, height)
        for src in range(mesh.num_switches):
            for dst in range(mesh.num_switches):
                current, hops = src, 0
                while current != dst:
                    options = mesh.minimal_directions(current, dst)
                    assert options and options[0] != Direction.LOCAL
                    current = mesh.neighbor(current, options[0])
                    hops += 1
                assert hops == mesh.distance(src, dst)

    def test_static_table_matches_torus_semantics(self):
        mesh = MeshTopology(3, 3)
        # X first, then Y; every table entry names an existing link.
        assert mesh.dimension_order_direction(0, 5) == Direction.EAST
        for src in range(9):
            for dst in range(9):
                if src == dst:
                    continue
                direction = mesh.dimension_order_direction(src, dst)
                assert mesh.neighbor(src, direction) != src


class TestRingTopology:
    def test_ports_are_east_west_only(self):
        ring = RingTopology(8)
        assert ring.ports() == (Direction.EAST, Direction.WEST)
        assert ring.neighbor(0, Direction.NORTH) == 0
        assert set(ring.neighbors(0)) == {Direction.EAST, Direction.WEST}

    def test_wraparound_both_ways(self):
        ring = RingTopology(8)
        assert ring.neighbor(7, Direction.EAST) == 0
        assert ring.neighbor(0, Direction.WEST) == 7

    def test_distance_takes_shorter_way(self):
        ring = RingTopology(8)
        assert ring.distance(0, 3) == 3
        assert ring.distance(0, 6) == 2
        assert ring.distance(0, 4) == 4

    def test_diametric_destination_has_two_minimal_directions(self):
        ring = RingTopology(8)
        assert ring.minimal_directions(0, 4) == [Direction.EAST, Direction.WEST]
        assert ring.minimal_directions(0, 3) == [Direction.EAST]
        assert ring.minimal_directions(0, 5) == [Direction.WEST]
        # Static routing stays deterministic on the tie.
        assert ring.dimension_order_direction(0, 4) == Direction.EAST

    def test_degenerate_sizes(self):
        assert RingTopology(1).all_pairs_mean_distance() == 0.0
        assert RingTopology(2).distance(0, 1) == 1
        with pytest.raises(ValueError):
            RingTopology(0)


class TestRegistry:
    def test_builtin_kinds(self):
        assert topology_kinds() == ["torus", "mesh", "ring"]

    def test_make_topology_dispatches(self):
        assert isinstance(make_topology("torus", (4, 4)), TorusTopology)
        assert isinstance(make_topology("mesh", (2, 3)), MeshTopology)
        assert isinstance(make_topology("ring", (6,)), RingTopology)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            make_topology("hypercube", (4, 4))

    def test_wrong_dims_rejected(self):
        with pytest.raises(ValueError):
            make_topology("ring", (4, 4))
        with pytest.raises(ValueError):
            make_topology("mesh", (16,))

    def test_duplicate_registration_rejected(self):
        class Dup(RingTopology):
            kind = "ring"
        with pytest.raises(ValueError, match="registered twice"):
            register_topology(Dup)

    def test_num_switches_is_product_of_dims(self):
        for kind, dims in [("torus", (4, 4)), ("mesh", (3, 5)), ("ring", (7,))]:
            topo = make_topology(kind, dims)
            n = 1
            for d in dims:
                n *= d
            assert topo.num_switches == n

    def test_preset_grid_factorisation(self):
        assert TopologyConfig.preset("torus", 4).dims == (2, 2)
        assert TopologyConfig.preset("mesh", 16).dims == (4, 4)
        assert TopologyConfig.preset("torus", 64).dims == (8, 8)
        assert TopologyConfig.preset("mesh", 12).dims == (3, 4)
        with pytest.raises(ValueError, match="num_nodes >= 1"):
            TopologyConfig.preset("torus", 0)


# ----------------------------------------------------------------- configuration
class TestTopologyConfig:
    def test_legacy_fields_resolve_to_torus(self):
        ic = InterconnectConfig(mesh_width=4, mesh_height=2)
        resolved = ic.resolved_topology()
        assert resolved.kind == "torus" and resolved.dims == (4, 2)
        assert ic.num_switches == 8

    def test_explicit_topology_wins_over_legacy_fields(self):
        ic = InterconnectConfig(mesh_width=4, mesh_height=4,
                                topology=TopologyConfig("ring", (6,)))
        assert ic.resolved_topology().kind == "ring"
        assert ic.num_switches == 6

    def test_preset_shapes(self):
        assert TopologyConfig.preset("torus", 64).dims == (8, 8)
        assert TopologyConfig.preset("ring", 16).dims == (16,)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig("torus", ())
        with pytest.raises(ValueError):
            TopologyConfig("torus", (0, 4))

    def test_system_config_validates_against_topology(self):
        with pytest.raises(ValueError, match="cannot host"):
            SystemConfig(num_processors=8,
                         interconnect=InterconnectConfig(
                             topology=TopologyConfig("ring", (4,))))

    def test_content_hash_unchanged_for_legacy_configs(self):
        """topology=None must be invisible to the canonical spec encoding."""
        config = SystemConfig.small(4, references=100)
        payload = config_to_dict(config)
        assert "topology" not in payload["interconnect"]
        # An explicitly chosen geometry does hash in.
        ring_cfg = dataclasses.replace(
            config, interconnect=dataclasses.replace(
                config.interconnect, topology=TopologyConfig("ring", (4,))))
        ring_payload = config_to_dict(ring_cfg)
        assert ring_payload["interconnect"]["topology"] == {
            "kind": "ring", "dims": [4]}
        assert (RunSpec(config=config).content_hash()
                != RunSpec(config=ring_cfg).content_hash())

    def test_small_preset_rejects_non_tiling_counts(self):
        with pytest.raises(ValueError, match="do not tile"):
            SystemConfig.small(num_processors=3)
        # The documented rule: exactly one switch per processor.
        for n in (2, 4, 8, 16):
            cfg = SystemConfig.small(num_processors=n, references=10)
            assert cfg.interconnect.num_switches == n

    def test_table2_miss_from_memory_reports_cycles_and_ns(self):
        rows = SystemConfig.paper_defaults().table2_rows()
        assert rows["Miss From Memory"] == "720 cycles / 180 ns (uncontended, 2-hop)"
        assert "torus" in rows["Interconnection Networks"]


# ----------------------------------------------------------------- network builds
def _raw_network(topology: TopologyConfig, *, routing=RoutingPolicy.STATIC,
                 **overrides):
    sim = Simulator()
    config = InterconnectConfig(topology=topology, routing=routing,
                                link_bandwidth_bytes_per_sec=1.6e9,
                                link_latency_cycles=4, **overrides)
    network = InterconnectNetwork(sim, config, frequency_hz=4e9)
    received = []
    for node in range(network.topology.num_switches):
        network.attach(node, lambda m, node=node: received.append((node, m)))
    return sim, config, network, received


class TestNetworksOnNewTopologies:
    @pytest.mark.parametrize("topo", [TopologyConfig("mesh", (4, 4)),
                                      TopologyConfig("ring", (8,)),
                                      TopologyConfig("torus", (4, 4))])
    def test_all_pairs_delivery(self, topo):
        sim, config, network, received = _raw_network(topo)
        sent = 0
        n = network.topology.num_switches
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                network.send(make_message(src, dst, MessageClass.DATA,
                                          address=64 * sent, config=config))
                sent += 1
        sim.run_until_idle()
        assert network.messages_delivered == sent
        assert len(received) == sent

    def test_hop_counts_match_topology_distance(self):
        sim, config, network, received = _raw_network(TopologyConfig("mesh", (4, 4)))
        network.send(make_message(0, 15, MessageClass.ACK, address=0, config=config))
        sim.run_until_idle()
        assert received[0][1].hops == network.topology.distance(0, 15) == 6

    def test_mesh_edge_switch_has_no_dangling_links(self):
        _, _, network, _ = _raw_network(TopologyConfig("mesh", (3, 3)))
        corner = network.switch(0)
        assert set(corner.output_links) == {Direction.EAST, Direction.SOUTH}
        assert Direction.WEST not in corner.input_channels

    def test_torus_network_alias_still_works(self):
        assert TorusNetwork is InterconnectNetwork


# --------------------------------------------------------------- system scaling
class TestSystemScaling:
    @pytest.mark.parametrize("nodes", [4, 16, 64])
    def test_directory_system_builds_at_every_scale(self, nodes):
        config = benchmark_config("jbb", references=0, num_processors=nodes,
                                  topology="torus")
        system = build_system(config)
        assert len(system.nodes) == nodes
        assert system.network.topology.num_switches == nodes

    def test_64_node_torus_completes_a_quick_run(self):
        config = benchmark_config("jbb", references=40, num_processors=64,
                                  topology="torus",
                                  routing=RoutingPolicy.ADAPTIVE)
        result = build_system(config).run()
        assert result.finished
        assert result.references_completed >= 64 * 40
        assert result.events_executed > 0

    @pytest.mark.parametrize("kind", ["mesh", "ring"])
    def test_new_topologies_run_the_protocol(self, kind):
        config = benchmark_config("jbb", references=60, num_processors=4,
                                  topology=kind)
        system = build_system(config)
        result = system.run()
        assert result.finished
        assert system.invariant_errors() == []

    def test_home_nodes_cover_all_processors_at_scale(self):
        from repro.coherence.common import home_node
        homes = {home_node(64 * i, 64, 64) for i in range(256)}
        assert homes == set(range(64))


class TestRingDeadlockRecovery:
    def _ring_config(self, buffer_capacity: int) -> SystemConfig:
        cfg = SystemConfig.small(num_processors=8, references=150, seed=3)
        return dataclasses.replace(
            cfg,
            interconnect=InterconnectConfig(
                topology=TopologyConfig("ring", (8,)),
                routing=RoutingPolicy.STATIC,
                link_bandwidth_bytes_per_sec=200e6, link_latency_cycles=4,
                switch_buffer_capacity=buffer_capacity,
                speculative_no_vc=True, nic_injection_limit=2),
            checkpoint=CheckpointConfig(directory_interval_cycles=20_000,
                                        recovery_latency_cycles=2_000),
            workload=WorkloadConfig(name="oltp", references_per_processor=150,
                                    seed=3))

    def test_ring_no_vc_small_buffers_deadlocks_and_recovers(self):
        """The acceptance scenario: the ring's wrap-around channel cycle plus
        shared buffers reaches deadlock; the timeout detector recovers and
        the system keeps retiring references."""
        system = build_system(self._ring_config(2))
        result = system.run(max_cycles=4_000_000)
        assert result.recoveries_of(SpeculationKind.INTERCONNECT_DEADLOCK) > 0
        assert result.references_completed > 0
        assert system.invariant_errors() == []

    def test_ring_no_vc_ample_buffers_stays_clean(self):
        system = build_system(self._ring_config(64))
        result = system.run(max_cycles=4_000_000)
        assert result.finished
        assert result.recoveries_of(SpeculationKind.INTERCONNECT_DEADLOCK) == 0


# ------------------------------------------------------------ campaign experiment
class TestTopologyScaleExperiment:
    def test_serial_and_parallel_reports_are_byte_identical(self):
        serial = topology_scale.run(scales=(4,), references=80)
        with ParallelExecutor(max_workers=2) as executor:
            parallel = topology_scale.run(scales=(4,), references=80,
                                          executor=executor)
        assert (canonical_json(serial.to_json())
                == canonical_json(parallel.to_json()))
        assert serial.format() == parallel.format()

    def test_rows_cover_the_grid_with_metrics(self):
        result = topology_scale.run(scales=(4,), references=80)
        assert set(result.rows) == {
            f"{kind}@4/{routing}" for kind in ("torus", "mesh", "ring")
            for routing in ("static", "adaptive")}
        for row in result.rows.values():
            assert row["finished"]
            assert row["runtime_cycles"] > 0
            assert row["events_per_sim_second"] > 0
            assert row["deadlock_recoveries"] == 0  # VC networks: none expected
        assert "Topology x scale sweep" in result.format()

    def test_large_scale_reference_cap_applies(self):
        cfg = topology_scale._point_config(
            "jbb", "torus", 64, RoutingPolicy.STATIC, references=400, seed=1)
        assert (cfg.workload.references_per_processor
                == topology_scale.LARGE_SCALE_REFERENCE_CAP)
        small = topology_scale._point_config(
            "jbb", "torus", 16, RoutingPolicy.STATIC, references=400, seed=1)
        assert small.workload.references_per_processor == 400


# ------------------------------------------------------- executor failure paths
def _bad_spec() -> RunSpec:
    """A spec that passes config validation but fails at system build."""
    config = SystemConfig.small(4, references=50)
    config = dataclasses.replace(
        config, interconnect=dataclasses.replace(
            config.interconnect,
            topology=TopologyConfig("not-a-topology", (2, 2))))
    return RunSpec(config=config, label="bad")


class TestParallelExecutorFailurePaths:
    def test_build_failure_surfaces_original_exception(self):
        with ParallelExecutor(max_workers=2) as executor:
            with pytest.raises(ValueError, match="unknown topology kind"):
                executor.map([_bad_spec()])

    def test_failure_does_not_poison_completed_cache_entries(self, tmp_path):
        good_a = RunSpec(config=SystemConfig.small(4, references=60, seed=1))
        good_b = RunSpec(config=SystemConfig.small(4, references=60, seed=2))
        cache = ResultCache(str(tmp_path))
        with ParallelExecutor(max_workers=2, cache=cache) as executor:
            with pytest.raises(ValueError, match="unknown topology kind"):
                executor.map([good_a, _bad_spec(), good_b])
        # Both completed design points were cached despite the failure...
        assert len(cache) == 2
        # ...and replaying from the cache returns intact results.
        replay = SerialExecutor(cache=cache).map([good_a, good_b])
        assert cache.hits == 2
        assert all(r.references_completed > 0 for r in replay)

    def test_serial_executor_also_surfaces_original_exception(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            SerialExecutor().map([_bad_spec()])

"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(30, lambda: fired.append(30))
        queue.push(10, lambda: fired.append(10))
        queue.push(20, lambda: fired.append(20))
        times = []
        while True:
            event = queue.pop()
            if event is None:
                break
            times.append(event.time)
        assert times == [10, 20, 30]

    def test_same_time_events_are_fifo(self):
        queue = EventQueue()
        first = queue.push(5, lambda: None)
        second = queue.push(5, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_priority_breaks_ties_before_fifo(self):
        queue = EventQueue()
        low = queue.push(5, lambda: None, priority=1)
        high = queue.push(5, lambda: None, priority=0)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        keeper = queue.push(2, lambda: None)
        queue.cancel(event)
        assert len(queue) == 1
        assert queue.pop() is keeper

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(7, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 7

    def test_direct_event_cancel_keeps_live_count_consistent(self):
        """Regression: ``Event.cancel()`` used to leave ``len(queue)`` overcounted."""
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        keeper = queue.push(2, lambda: None)
        event.cancel()
        assert len(queue) == 1
        assert queue.pop() is keeper
        assert queue.pop() is None
        assert len(queue) == 0

    def test_double_cancel_decrements_once(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        event.cancel()
        queue.cancel(event)
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_live_count(self):
        """Cancelling an event that already fired must be count-neutral.

        Coherence controllers clear transaction timeouts with
        ``timeout_event.cancel()`` even when the timeout already went off.
        """
        queue = EventQueue()
        fired = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert queue.pop() is fired
        fired.cancel()
        queue.cancel(fired)
        assert len(queue) == 1
        assert queue.pop() is not None
        assert len(queue) == 0

    def test_cancel_then_peek_then_len(self):
        """peek_time discards cancelled heap entries without touching the count."""
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(9, lambda: None)
        event.cancel()
        assert queue.peek_time() == 9
        assert len(queue) == 1

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.push(-1, lambda: None)

    def test_drain_empties_queue(self):
        queue = EventQueue()
        for t in range(5):
            queue.push(t, lambda: None)
        assert len(list(queue.drain())) == 5
        assert queue.pop() is None


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append(sim.now))
        sim.schedule(25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10, 25]
        assert sim.now == 25

    def test_callbacks_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth: int) -> None:
            seen.append(sim.now)
            if depth > 0:
                sim.schedule(5, lambda: chain(depth - 1))

        sim.schedule(0, lambda: chain(3))
        sim.run()
        assert seen == [0, 5, 10, 15]

    def test_run_until_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(100, lambda: fired.append("late"))
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50

    def test_stop_terminates_run(self):
        sim = Simulator()
        fired = []

        def first() -> None:
            fired.append(1)
            sim.stop()

        sim.schedule(1, first)
        sim.schedule(2, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_bound(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(i, lambda: count.append(1))
        sim.run(max_events=4)
        assert len(count) == 4

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-5, lambda: None)

    def test_cancel_prevents_callback(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, lambda: fired.append("no"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_quiesce_hook_injects_work(self):
        sim = Simulator()
        fired = []
        injected = {"done": False}

        def hook() -> None:
            if not injected["done"]:
                injected["done"] = True
                sim.schedule(5, lambda: fired.append("late"))

        sim.add_quiesce_hook(hook)
        sim.schedule(1, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_idle_ignores_quiesce_hooks(self):
        sim = Simulator()
        sim.add_quiesce_hook(lambda: sim.schedule(1, lambda: None))
        sim.schedule(1, lambda: None)
        sim.run_until_idle()
        assert sim.events_executed == 1

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.events_executed == 7

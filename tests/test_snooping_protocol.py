"""Protocol-level tests for the MOESI broadcast snooping protocol.

A harness builds real snooping cache controllers, the ordered address bus
and the memory controller, so individual transitions — including the
Section 3.2 corner case — can be exercised deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.coherence.cache import CacheArray
from repro.coherence.common import MemoryOp, MemoryRequest
from repro.coherence.snooping.bus import AddressBus, BusRequest, BusRequestType
from repro.coherence.snooping.cache_controller import SnoopingCacheController
from repro.coherence.snooping.memory_controller import SnoopingMemoryController
from repro.coherence.snooping.states import SnoopState, WritebackPhase
from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.sim.config import ProtocolVariant, SystemConfig
from repro.sim.engine import Simulator


BLOCK = 64


class SnoopHarness:
    """Snooping cache controllers + bus + memory, directly wired."""

    def __init__(self, num_nodes: int = 4,
                 variant: ProtocolVariant = ProtocolVariant.SPECULATIVE) -> None:
        self.config = SystemConfig.small(num_processors=num_nodes, references=0)
        self.config = self.config.with_updates(variant=variant)
        self.sim = Simulator()
        self.bus = AddressBus(self.sim)
        self.events: List[MisspeculationEvent] = []
        self.caches: Dict[int, CacheArray] = {}
        self.ctrls: Dict[int, SnoopingCacheController] = {}
        self.memory = SnoopingMemoryController(
            self.sim, memory_latency_cycles=100, deliver_data=self._deliver)
        for node in range(num_nodes):
            cache = CacheArray(f"snoop-l2.{node}", self.config.l2, SnoopState.INVALID)
            ctrl = SnoopingCacheController(
                node, self.sim, self.config, cache, self.bus, self._deliver,
                misspeculation_reporter=self.events.append)
            self.caches[node] = cache
            self.ctrls[node] = ctrl
            self.bus.attach_snooper(ctrl.snoop)
        self.bus.attach_memory(self.memory.snoop)

    def _deliver(self, dst: int, address: int, value: int) -> None:
        self.ctrls[dst].receive_data(address, value)

    def access(self, node: int, op: MemoryOp, address: int,
               value: Optional[int] = None) -> MemoryRequest:
        request = MemoryRequest(node=node, op=op, address=address, value=value)
        done = []
        self.ctrls[node].access(request, lambda r: done.append(r))
        self.sim.run_until_idle()
        assert done, f"{op} {address:#x} at node {node} did not complete"
        return done[0]

    def state(self, node: int, address: int) -> SnoopState:
        return self.caches[node].get_state(address)

    def evict(self, node: int, address: int) -> None:
        """Force eviction of ``address`` by touching conflicting blocks."""
        stride = self.config.l2.num_sets * BLOCK
        for i in range(self.config.l2.associativity):
            self.access(node, MemoryOp.LOAD, address + stride * (i + 1))


class TestBasicTransitions:
    def test_load_miss_installs_shared(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.LOAD, 0x1000)
        assert h.state(1, 0x1000) == SnoopState.SHARED

    def test_store_miss_installs_modified(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=5)
        assert h.state(1, 0x1000) == SnoopState.MODIFIED

    def test_store_value_visible_to_other_nodes(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x2000, value=77)
        assert h.access(2, MemoryOp.LOAD, 0x2000).value == 77

    def test_owner_downgrades_to_owned_on_foreign_read(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x3000, value=3)
        h.access(2, MemoryOp.LOAD, 0x3000)
        assert h.state(1, 0x3000) == SnoopState.OWNED
        assert h.state(2, 0x3000) == SnoopState.SHARED

    def test_foreign_write_invalidates_all_copies(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.LOAD, 0x4000)
        h.access(2, MemoryOp.LOAD, 0x4000)
        h.access(3, MemoryOp.STORE, 0x4000, value=9)
        assert h.state(1, 0x4000) == SnoopState.INVALID
        assert h.state(2, 0x4000) == SnoopState.INVALID
        assert h.state(3, 0x4000) == SnoopState.MODIFIED

    def test_write_after_write_transfers_ownership(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x5000, value=1)
        h.access(2, MemoryOp.STORE, 0x5000, value=2)
        assert h.state(1, 0x5000) == SnoopState.INVALID
        assert h.state(2, 0x5000) == SnoopState.MODIFIED
        assert h.access(3, MemoryOp.LOAD, 0x5000).value == 2

    def test_upgrade_from_shared_completes_from_own_copy(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.LOAD, 0x6000)
        h.access(1, MemoryOp.STORE, 0x6000, value=6)
        assert h.state(1, 0x6000) == SnoopState.MODIFIED

    def test_store_hit_in_exclusive_upgrades_silently(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x6100, value=1)
        before = h.bus.requests_ordered
        h.access(1, MemoryOp.STORE, 0x6100, value=2)
        assert h.bus.requests_ordered == before  # hit, no bus traffic

    def test_bus_orders_every_request(self):
        h = SnoopHarness()
        for node in range(4):
            h.access(node, MemoryOp.LOAD, 0x7000)
        assert h.bus.requests_ordered == 4

    def test_memory_supplies_when_no_owner(self):
        h = SnoopHarness()
        h.access(2, MemoryOp.LOAD, 0x8000)
        assert h.memory.stats is not None
        assert h.state(2, 0x8000) == SnoopState.SHARED


class TestWritebacks:
    def test_dirty_eviction_writes_memory(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=42)
        h.evict(1, 0x1000)
        assert h.state(1, 0x1000) == SnoopState.INVALID
        assert h.memory.read(0x1000) == 42

    def test_clean_eviction_is_silent(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.LOAD, 0x1000)
        before = h.bus.requests_ordered
        h.evict(1, 0x1000)
        # Only the conflicting loads appear on the bus, no Writeback.
        assert h.bus.requests_ordered == before + h.config.l2.associativity

    def test_writeback_record_cleared_after_own_wb_ordered(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=1)
        h.evict(1, 0x1000)
        assert not h.ctrls[1].writebacks

    def test_reader_during_writeback_window_gets_data(self):
        """The WAITING_OWN_WB transient still supplies data to readers."""
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=13)
        # Trigger the eviction but do not run the bus to completion: inject
        # a foreign GETS while the writeback is still queued.
        line = h.caches[1].peek(0x1000)
        h.ctrls[1]._evict(line)
        record = h.ctrls[1].writebacks[0x1000]
        assert record.phase == WritebackPhase.WAITING_OWN_WB
        assert h.access(2, MemoryOp.LOAD, 0x1000).value == 13


class TestSection32CornerCase:
    def _enter_lost_ownership(self, h: SnoopHarness, address: int):
        """Drive node 1 into the LOST_OWNERSHIP transient for ``address``."""
        h.access(1, MemoryOp.STORE, address, value=111)
        line = h.caches[1].peek(address)
        h.ctrls[1]._evict(line)           # Writeback issued, not yet ordered
        record = h.ctrls[1].writebacks[address]
        assert record.phase == WritebackPhase.WAITING_OWN_WB
        # First foreign RequestReadWrite is observed before our Writeback.
        first = BusRequest(requestor=2, address=address, rtype=BusRequestType.GETX)
        h.ctrls[1].snoop(first)
        assert record.phase == WritebackPhase.LOST_OWNERSHIP
        return record

    def test_first_racing_getx_supplies_data_and_loses_ownership(self):
        h = SnoopHarness()
        record = self._enter_lost_ownership(h, 0x2000)
        assert record.request.value is None  # stale writeback will be dropped
        assert not h.events

    def test_second_racing_getx_is_detected_in_speculative_variant(self):
        h = SnoopHarness(variant=ProtocolVariant.SPECULATIVE)
        self._enter_lost_ownership(h, 0x2000)
        second = BusRequest(requestor=3, address=0x2000, rtype=BusRequestType.GETX)
        h.ctrls[1].snoop(second)
        assert len(h.events) == 1
        event = h.events[0]
        assert event.kind == SpeculationKind.SNOOPING_CORNER_CASE
        assert event.node == 1
        assert event.address == 0x2000

    def test_second_racing_getx_is_handled_in_full_variant(self):
        h = SnoopHarness(variant=ProtocolVariant.FULL)
        self._enter_lost_ownership(h, 0x2000)
        second = BusRequest(requestor=3, address=0x2000, rtype=BusRequestType.GETX)
        h.ctrls[1].snoop(second)
        assert not h.events
        assert h.ctrls[1].corner_cases_handled == 1

    def test_corner_case_requires_two_distinct_racing_writers(self):
        """A single racing RequestReadWrite never triggers detection."""
        h = SnoopHarness(variant=ProtocolVariant.SPECULATIVE)
        self._enter_lost_ownership(h, 0x2000)
        assert not h.events

    def test_stale_writeback_does_not_clobber_new_owner_data(self):
        h = SnoopHarness(variant=ProtocolVariant.FULL)
        self._enter_lost_ownership(h, 0x2000)
        # New owner (node 2) writes; then node 1's stale Writeback is ordered
        # and must be dropped by the memory controller.
        h.access(2, MemoryOp.STORE, 0x2000, value=999)
        h.sim.run_until_idle()
        assert h.access(3, MemoryOp.LOAD, 0x2000).value == 999

    def test_full_run_keeps_swmr_invariant(self):
        h = SnoopHarness()
        for i in range(16):
            h.access(i % 4, MemoryOp.STORE, 0x3000, value=i)
        exclusive_holders = [n for n in range(4)
                             if h.state(n, 0x3000) in (SnoopState.MODIFIED,
                                                       SnoopState.EXCLUSIVE)]
        assert len(exclusive_holders) == 1


class TestBusAndMemory:
    def test_bus_flush_drops_queued_requests(self):
        h = SnoopHarness()
        h.bus.issue(BusRequest(requestor=0, address=0x100, rtype=BusRequestType.GETS))
        h.bus.issue(BusRequest(requestor=1, address=0x200, rtype=BusRequestType.GETS))
        dropped = h.bus.flush()
        assert dropped == 2

    def test_ordered_hook_called_per_request(self):
        h = SnoopHarness()
        calls = []
        h.bus.add_ordered_hook(lambda req: calls.append(req.address))
        h.access(0, MemoryOp.LOAD, 0x100)
        h.access(1, MemoryOp.LOAD, 0x200)
        assert calls == [0x100, 0x200]

    def test_memory_restore_field(self):
        h = SnoopHarness()
        h.memory.write(0x100, 5)
        h.memory.restore_field(0x100, "value", 2)
        assert h.memory.read(0x100) == 2
        with pytest.raises(ValueError):
            h.memory.restore_field(0x100, "state", 1)

    def test_memory_observer_logs_changes(self):
        h = SnoopHarness()
        log = []
        h.memory.set_observer(lambda addr, field, old, new: log.append((addr, old, new)))
        h.memory.write(0x100, 9)
        assert log == [(0x100, 0, 9)]

    def test_bus_arbitration_parameter_validation(self):
        with pytest.raises(ValueError):
            AddressBus(Simulator(), arbitration_cycles=0)

    def test_squash_transient_state(self):
        h = SnoopHarness()
        h.access(1, MemoryOp.STORE, 0x1000, value=1)
        line = h.caches[1].peek(0x1000)
        h.ctrls[1]._evict(line)
        assert h.ctrls[1].writebacks
        h.ctrls[1].squash_transient_state()
        assert not h.ctrls[1].writebacks
        assert h.ctrls[1].transaction is None

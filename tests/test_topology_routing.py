"""Unit and property tests for the torus topology and routing algorithms."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.interconnect.message import MessageClass, NetworkMessage
from repro.interconnect.routing import (
    AdaptiveMinimalRouting,
    DimensionOrderRouting,
    make_routing,
)
from repro.interconnect.topology import Direction, TorusTopology


def _msg(src: int, dst: int) -> NetworkMessage:
    return NetworkMessage(src=src, dst=dst, msg_class=MessageClass.DATA, size_bytes=72)


class TestTopology:
    def test_coordinates_round_trip(self):
        topo = TorusTopology(4, 4)
        for sid in range(topo.num_switches):
            coord = topo.coordinate(sid)
            assert topo.switch_id(coord.x, coord.y) == sid

    def test_neighbors_are_symmetric(self):
        topo = TorusTopology(4, 4)
        for sid in range(topo.num_switches):
            for direction, other in topo.neighbors(sid).items():
                assert topo.neighbor(other, direction.opposite) == sid

    def test_wraparound(self):
        topo = TorusTopology(4, 4)
        assert topo.neighbor(3, Direction.EAST) == 0
        assert topo.neighbor(0, Direction.WEST) == 3
        assert topo.neighbor(0, Direction.NORTH) == 12

    def test_distance_zero_to_self(self):
        topo = TorusTopology(4, 4)
        assert all(topo.distance(s, s) == 0 for s in range(16))

    def test_distance_symmetric(self):
        topo = TorusTopology(4, 4)
        for a in range(16):
            for b in range(16):
                assert topo.distance(a, b) == topo.distance(b, a)

    def test_max_distance_on_4x4_torus(self):
        topo = TorusTopology(4, 4)
        assert max(topo.distance(0, b) for b in range(16)) == 4

    def test_minimal_directions_local(self):
        topo = TorusTopology(4, 4)
        assert topo.minimal_directions(5, 5) == [Direction.LOCAL]

    def test_dimension_order_prefers_x(self):
        topo = TorusTopology(4, 4)
        # 0 -> 5 requires one hop east and one south; X goes first.
        assert topo.dimension_order_direction(0, 5) == Direction.EAST

    def test_invalid_switch_id(self):
        topo = TorusTopology(2, 2)
        with pytest.raises(ValueError):
            topo.coordinate(4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TorusTopology(0, 4)

    def test_mean_distance_positive(self):
        assert TorusTopology(4, 4).all_pairs_mean_distance() > 0
        assert TorusTopology(1, 1).all_pairs_mean_distance() == 0.0

    @given(width=st.integers(2, 6), height=st.integers(2, 6),
           src=st.integers(0, 35), dst=st.integers(0, 35))
    @settings(max_examples=60, deadline=None)
    def test_following_minimal_directions_reaches_destination(self, width, height, src, dst):
        topo = TorusTopology(width, height)
        src %= topo.num_switches
        dst %= topo.num_switches
        current = src
        hops = 0
        while current != dst:
            options = topo.minimal_directions(current, dst)
            assert options and options[0] != Direction.LOCAL
            current = topo.neighbor(current, options[0])
            hops += 1
            assert hops <= topo.distance(src, dst)
        assert hops == topo.distance(src, dst)

    @given(width=st.integers(2, 6), height=st.integers(2, 6),
           src=st.integers(0, 35), dst=st.integers(0, 35))
    @settings(max_examples=60, deadline=None)
    def test_dimension_order_route_length_is_minimal(self, width, height, src, dst):
        topo = TorusTopology(width, height)
        src %= topo.num_switches
        dst %= topo.num_switches
        current, hops = src, 0
        while current != dst:
            current = topo.neighbor(current, topo.dimension_order_direction(current, dst))
            hops += 1
            assert hops <= width + height
        assert hops == topo.distance(src, dst)


class TestRouting:
    def test_static_routing_is_deterministic(self):
        topo = TorusTopology(4, 4)
        routing = DimensionOrderRouting(topo)
        message = _msg(0, 10)
        choices = {routing.route(0, message, lambda d: 0) for _ in range(5)}
        assert len(choices) == 1

    def test_static_routing_ignores_congestion(self):
        topo = TorusTopology(4, 4)
        routing = DimensionOrderRouting(topo)
        message = _msg(0, 5)
        baseline = routing.route(0, message, lambda d: 0)
        congested = routing.route(0, message, lambda d: 100)
        assert baseline == congested

    def test_adaptive_prefers_less_congested_direction(self):
        topo = TorusTopology(4, 4)
        routing = AdaptiveMinimalRouting(topo)
        message = _msg(0, 5)  # minimal directions: EAST and SOUTH
        choice = routing.route(0, message, lambda d: 10 if d == Direction.EAST else 0)
        assert choice == Direction.SOUTH

    def test_adaptive_tie_prefers_dimension_order(self):
        topo = TorusTopology(4, 4)
        routing = AdaptiveMinimalRouting(topo)
        message = _msg(0, 5)
        assert routing.route(0, message, lambda d: 0) == \
               topo.dimension_order_direction(0, 5)

    def test_adaptive_single_direction_has_no_choice(self):
        topo = TorusTopology(4, 4)
        routing = AdaptiveMinimalRouting(topo)
        message = _msg(0, 2)  # same row: only X movement
        assert routing.route(0, message, lambda d: 0) in (Direction.EAST, Direction.WEST)

    def test_disable_until_forces_dimension_order(self):
        topo = TorusTopology(4, 4)
        routing = AdaptiveMinimalRouting(topo)
        clock = {"now": 0}
        routing.bind_clock(lambda: clock["now"])
        routing.disable_until(100)
        message = _msg(0, 5)
        # Congestion would normally push the message south; disabled => east.
        choice = routing.route(0, message, lambda d: 10 if d == Direction.EAST else 0)
        assert choice == Direction.EAST
        clock["now"] = 101
        assert routing.route(0, message, lambda d: 10 if d == Direction.EAST else 0) == Direction.SOUTH

    def test_enable_clears_disable_window(self):
        topo = TorusTopology(4, 4)
        routing = AdaptiveMinimalRouting(topo)
        routing.bind_clock(lambda: 0)
        routing.disable_until(1000)
        routing.enable()
        assert routing.currently_adaptive

    def test_non_dimension_order_choices_counted(self):
        topo = TorusTopology(4, 4)
        routing = AdaptiveMinimalRouting(topo)
        message = _msg(0, 5)
        routing.route(0, message, lambda d: 5 if d == Direction.EAST else 0)
        assert routing.non_dimension_order_choices == 1

    def test_factory(self):
        topo = TorusTopology(4, 4)
        assert isinstance(make_routing("static", topo), DimensionOrderRouting)
        assert isinstance(make_routing("adaptive", topo), AdaptiveMinimalRouting)
        with pytest.raises(ValueError):
            make_routing("xy-ish", topo)

    def test_is_adaptive_flags(self):
        topo = TorusTopology(4, 4)
        assert not DimensionOrderRouting(topo).is_adaptive
        assert AdaptiveMinimalRouting(topo).is_adaptive

"""Integration-level tests for the torus network (switches + links + NICs)."""

from __future__ import annotations

import pytest

from repro.interconnect.deadlock import detect_network_deadlock, detect_switch_deadlock
from repro.interconnect.message import MessageClass, VirtualNetwork
from repro.interconnect.network import OrderingTracker, TorusNetwork, make_message
from repro.sim.config import InterconnectConfig, RoutingPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng


def build_network(policy=RoutingPolicy.STATIC, *, width=4, height=4,
                  buffer_capacity=16, speculative_no_vc=False,
                  bandwidth=1.6e9, nic_limit=8):
    sim = Simulator()
    config = InterconnectConfig(
        mesh_width=width, mesh_height=height, routing=policy,
        link_bandwidth_bytes_per_sec=bandwidth, link_latency_cycles=4,
        switch_buffer_capacity=buffer_capacity,
        speculative_no_vc=speculative_no_vc, nic_injection_limit=nic_limit)
    network = TorusNetwork(sim, config, frequency_hz=4e9, rng=DeterministicRng(1))
    received = []
    for node in range(width * height):
        network.attach(node, lambda m, node=node: received.append((node, m)))
    return sim, config, network, received


class TestDelivery:
    def test_every_message_is_delivered(self):
        sim, config, network, received = build_network()
        rng = DeterministicRng(3)
        sent = 0
        for i in range(150):
            src = rng.randint("s", 0, 16)
            dst = rng.randint("d", 0, 16)
            if src == dst:
                continue
            network.send(make_message(src, dst, MessageClass.DATA, address=64 * i,
                                      config=config))
            sent += 1
        sim.run_until_idle()
        assert network.messages_delivered == sent
        assert len(received) == sent

    def test_messages_delivered_to_correct_node(self):
        sim, config, network, received = build_network()
        network.send(make_message(2, 9, MessageClass.DATA, address=0, config=config))
        sim.run_until_idle()
        assert received == [(9, received[0][1])]
        assert received[0][1].dst == 9

    def test_local_delivery_src_equals_dst(self):
        sim, config, network, received = build_network()
        network.send(make_message(5, 5, MessageClass.ACK, address=0, config=config))
        sim.run_until_idle()
        assert len(received) == 1 and received[0][0] == 5

    def test_hop_count_matches_distance_under_static_routing(self):
        sim, config, network, received = build_network()
        network.send(make_message(0, 10, MessageClass.ACK, address=0, config=config))
        sim.run_until_idle()
        message = received[0][1]
        assert message.hops == network.topology.distance(0, 10)

    def test_latency_positive_and_recorded(self):
        sim, config, network, received = build_network()
        network.send(make_message(0, 15, MessageClass.DATA, address=0, config=config))
        sim.run_until_idle()
        message = received[0][1]
        assert message.latency > 0
        assert network.mean_message_latency() == pytest.approx(message.latency)

    def test_send_requires_attached_endpoints(self):
        sim = Simulator()
        config = InterconnectConfig(mesh_width=2, mesh_height=2)
        network = TorusNetwork(sim, config)
        with pytest.raises(ValueError):
            network.send(make_message(0, 1, MessageClass.ACK, config=config))

    def test_control_vs_data_sizes(self):
        config = InterconnectConfig()
        data = make_message(0, 1, MessageClass.DATA, config=config)
        ctrl = make_message(0, 1, MessageClass.ACK, config=config)
        assert data.size_bytes == config.data_message_bytes
        assert ctrl.size_bytes == config.control_message_bytes


class TestOrdering:
    def test_static_routing_preserves_point_to_point_order(self):
        sim, config, network, received = build_network(RoutingPolicy.STATIC)
        rng = DeterministicRng(5)
        for i in range(300):
            src = rng.randint("s", 0, 16)
            dst = rng.randint("d", 0, 16)
            if src == dst:
                continue
            cls = MessageClass.DATA if i % 3 else MessageClass.REQUEST_READ_ONLY
            network.send(make_message(src, dst, cls, address=64 * i, config=config))
        sim.run_until_idle()
        assert network.ordering.reorder_rate() == 0.0

    def test_adaptive_routing_can_reorder_under_congestion(self):
        sim, config, network, received = build_network(
            RoutingPolicy.ADAPTIVE, bandwidth=400e6)
        rng = DeterministicRng(5)
        # A burst of traffic injected simultaneously creates congestion and
        # path diversity; some same-stream pairs should arrive out of order.
        for i in range(400):
            src = rng.randint("s", 0, 16)
            dst = rng.randint("d", 0, 16)
            if src == dst:
                continue
            network.send(make_message(src, dst, MessageClass.DATA, address=64 * i,
                                      config=config))
        sim.run_until_idle()
        assert network.ordering.reorder_rate() > 0.0

    def test_ordering_tracker_counts_per_vnet(self):
        tracker = OrderingTracker()
        a = make_message(0, 1, MessageClass.WRITEBACK_ACK)
        b = make_message(0, 1, MessageClass.FORWARDED_REQUEST_READ_WRITE)
        tracker.assign_send_seq(b)
        tracker.assign_send_seq(a)
        # Deliver the later-sent message first: the earlier one is reordered.
        assert not tracker.note_delivery(a)
        assert tracker.note_delivery(b)
        assert tracker.reorder_rate(VirtualNetwork.FORWARDED_REQUEST) == pytest.approx(0.5)

    def test_ordering_tracker_reset(self):
        tracker = OrderingTracker()
        message = make_message(0, 1, MessageClass.DATA)
        tracker.assign_send_seq(message)
        tracker.note_delivery(message)
        tracker.reset()
        assert tracker.reorder_rate() == 0.0


class TestUtilizationAndFlush:
    def test_link_utilization_increases_with_traffic(self):
        sim, config, network, _ = build_network(bandwidth=400e6)
        for i in range(100):
            network.send(make_message(0, 15, MessageClass.DATA, address=64 * i,
                                      config=config))
        sim.run_until_idle()
        assert network.mean_link_utilization() > 0.0
        assert network.peak_link_utilization() >= network.mean_link_utilization()

    def test_flush_drops_in_flight_messages(self):
        sim, config, network, received = build_network(bandwidth=400e6)
        for i in range(50):
            network.send(make_message(0, 15, MessageClass.DATA, address=64 * i,
                                      config=config))
        sim.run(until=200)  # partially through delivery
        dropped = network.flush()
        delivered_before = len(received)
        sim.run_until_idle()
        # Nothing new is delivered after the flush (in-flight link transfers
        # are squashed by the epoch check).
        assert len(received) == delivered_before
        assert dropped > 0
        assert network.flushes == 1

    def test_in_flight_count(self):
        sim, config, network, _ = build_network(bandwidth=400e6)
        for i in range(20):
            network.send(make_message(0, 15, MessageClass.DATA, address=64 * i,
                                      config=config))
        assert network.in_flight_messages() > 0
        sim.run_until_idle()
        assert network.in_flight_messages() == 0

    def test_disable_adaptive_routing_hook(self):
        sim, config, network, _ = build_network(RoutingPolicy.ADAPTIVE)
        router = network.adaptive_router
        assert router is not None
        network.disable_adaptive_routing(1_000)
        assert not router.currently_adaptive

    def test_static_network_has_no_adaptive_router(self):
        _, _, network, _ = build_network(RoutingPolicy.STATIC)
        assert network.adaptive_router is None
        network.disable_adaptive_routing(100)  # must not raise


class TestDeadlockDetection:
    def test_healthy_network_has_no_deadlock(self):
        sim, config, network, _ = build_network()
        for i in range(30):
            network.send(make_message(i % 16, (i + 5) % 16, MessageClass.DATA,
                                      address=64 * i, config=config))
        sim.run_until_idle()
        assert not detect_switch_deadlock(network.switches).deadlocked
        assert not detect_network_deadlock(network).deadlocked

    def test_no_vc_network_with_reply_coupling_can_deadlock(self):
        sim, config, network, _ = build_network(
            width=2, height=1, buffer_capacity=2, speculative_no_vc=True,
            bandwidth=200e6, nic_limit=2)
        # Re-attach endpoints that reply to every ingested request.
        def make_receiver(node):
            def receive(message):
                if message.payload == "reply":
                    return
                reply = make_message(node, 1 - node, MessageClass.DATA,
                                     address=message.address, config=config)
                reply.payload = "reply"
                network.send(reply)
            return receive
        network.attach(0, make_receiver(0))
        network.attach(1, make_receiver(1))
        for i in range(40):
            network.send(make_message(0, 1, MessageClass.DATA, address=64 * i,
                                      config=config))
            network.send(make_message(1, 0, MessageClass.DATA, address=64 * i + 32,
                                      config=config))
        sim.run(until=200_000, max_events=100_000)
        report = detect_network_deadlock(network)
        assert report.deadlocked
        assert network.messages_delivered < network.messages_sent

"""Static web server (Apache + SURGE) workload analogue.

The paper's static web workload serves a 2,000-file (~50 MB) repository with
Apache 1.3.19 and SURGE-generated requests, 10 users per processor.  Its
signature:

* a read-mostly shared file/page cache with a Zipf-like popularity skew,
* small per-request private state (low private footprint),
* a low store fraction overall (responses are reads; metadata updates and
  logging provide the writes),
* lock activity around the accept queue and logging.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="apache",
    description="Apache/SURGE-like static web serving",
    private_blocks=3072,
    shared_blocks=3072,
    shared_fraction=0.40,
    shared_write_fraction=0.06,
    private_write_fraction=0.20,
    shared_zipf_alpha=1.5,
    migratory_fraction=0.02,
    migratory_records=48,
    lock_fraction=0.02,
    lock_blocks=8,
    sequential_run_probability=0.60,
    sequential_run_length=10,
)

"""Synthetic workloads standing in for the paper's Table 3 suite.

Five workloads: four commercial (``oltp``, ``jbb``, ``apache``,
``slashcode``) and one scientific (``barnes``), each defined by a
:class:`repro.workloads.base.WorkloadProfile` in its own module and
instantiated through :func:`make_workload` / :func:`workload_names`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import apache, barnes, jbb, oltp, slashcode
from repro.workloads.base import (
    Reference,
    SyntheticWorkload,
    WorkloadProfile,
    mix_statistics,
)

#: All workload profiles, in the order the paper's figures plot them.
PROFILES: Dict[str, WorkloadProfile] = {
    "jbb": jbb.PROFILE,
    "apache": apache.PROFILE,
    "slashcode": slashcode.PROFILE,
    "oltp": oltp.PROFILE,
    "barnes": barnes.PROFILE,
}


def workload_names() -> List[str]:
    """Names of the five workloads, in figure order."""
    return list(PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a workload profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(PROFILES)}") from None


def make_workload(name: str, *, num_processors: int, block_bytes: int = 64,
                  seed: int = 1) -> SyntheticWorkload:
    """Instantiate a named workload generator."""
    return SyntheticWorkload(get_profile(name), num_processors=num_processors,
                             block_bytes=block_bytes, seed=seed)


def table3_rows() -> Dict[str, str]:
    """Table 3 analogue: one descriptive row per workload."""
    return {name: profile.description for name, profile in PROFILES.items()}


__all__ = [
    "Reference",
    "SyntheticWorkload",
    "WorkloadProfile",
    "mix_statistics",
    "PROFILES",
    "workload_names",
    "get_profile",
    "make_workload",
    "table3_rows",
]

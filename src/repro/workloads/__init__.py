"""Registry-driven synthetic workload layer.

The paper's Table 3 suite (``jbb``, ``apache``, ``slashcode``, ``oltp``,
``barnes``) plus parameterized scenario families (``hotspot``,
``producer_consumer``, ``phased``, ``scaled``, ``mixed``), each registered
under a stable name in :mod:`repro.workloads.registry` and instantiated
through :func:`make_workload`.  The paper profiles remain importable as
:data:`PROFILES` / :func:`get_profile` for direct profile access; every
run-time consumer (``System.load_workload``, the experiment drivers, the
campaign layer) resolves through the registry.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads import apache, barnes, jbb, oltp, slashcode
from repro.workloads.base import (
    Reference,
    StreamArtifact,
    SyntheticWorkload,
    WorkloadProfile,
    mix_statistics,
)
from repro.workloads.memo import (
    clear_stream_memo,
    shared_streams,
    stream_key,
)
from repro.workloads.registry import (
    WorkloadFamily,
    get_family,
    make_workload,
    paper_workload_names,
    register_workload,
    table3_rows,
    validate_workload,
    workload_names,
)
from repro.workloads.families import (  # noqa: F401  (registration side effect)
    MixedWorkload,
    PAPER_PROFILES,
)

#: All paper workload profiles, in the order the figures plot them.
PROFILES: Dict[str, WorkloadProfile] = dict(PAPER_PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a paper workload profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(PROFILES)}") from None


__all__ = [
    "Reference",
    "StreamArtifact",
    "SyntheticWorkload",
    "WorkloadProfile",
    "WorkloadFamily",
    "MixedWorkload",
    "mix_statistics",
    "PROFILES",
    "workload_names",
    "paper_workload_names",
    "get_profile",
    "get_family",
    "make_workload",
    "register_workload",
    "validate_workload",
    "table3_rows",
    "clear_stream_memo",
    "shared_streams",
    "stream_key",
]

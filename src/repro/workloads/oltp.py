"""OLTP workload analogue.

The paper's OLTP workload is TPC-C v3.0 on DB2 (1 GB, 10 warehouses, 8 users
per processor).  Its memory-system signature, as characterised by Alameldeen
et al. and the Wisconsin commercial-workload studies, is:

* a large shared database buffer pool (big shared footprint, little reuse),
* heavily contended latches/locks and hot index roots,
* frequent migratory read-modify-write of row/branch records,
* a moderate store fraction dominated by the shared structures.

The profile below emphasises exactly those properties: the largest shared
region of the suite, high lock and migratory fractions, and shared accesses
skewed toward hot blocks.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="oltp",
    description="TPC-C-like on-line transaction processing (DB2 analogue)",
    private_blocks=6144,
    shared_blocks=4096,
    shared_fraction=0.35,
    shared_write_fraction=0.25,
    private_write_fraction=0.30,
    shared_zipf_alpha=1.35,
    migratory_fraction=0.08,
    migratory_records=128,
    lock_fraction=0.05,
    lock_blocks=24,
    sequential_run_probability=0.30,
    sequential_run_length=4,
)

"""barnes-hut (SPLASH-2) workload analogue.

The scientific workload is barnes-hut with the 16K-body input, measured from
the start of the parallel phase.  Relative to the commercial workloads it
has:

* excellent spatial locality (bodies and tree cells are walked
  sequentially), hence long sequential runs and a smaller active footprint,
* producer/consumer and migratory sharing of tree cells during the force
  computation and tree-build phases,
* a lower synchronisation rate (barriers rather than fine-grained locks),
* a moderate store fraction (position/velocity updates).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="barnes",
    description="SPLASH-2 barnes-hut N-body analogue (16K bodies)",
    private_blocks=5120,
    shared_blocks=2048,
    shared_fraction=0.25,
    shared_write_fraction=0.12,
    private_write_fraction=0.25,
    shared_zipf_alpha=1.1,
    migratory_fraction=0.06,
    migratory_records=160,
    lock_fraction=0.008,
    lock_blocks=8,
    sequential_run_probability=0.75,
    sequential_run_length=12,
)

"""The workload registry.

Mirrors the experiment registry (:mod:`repro.campaign.registry`), the
topology registry (:mod:`repro.interconnect.topology`) and the speculation
registry (:mod:`repro.speculation.registry`): a *workload family* is
registered under a stable string name and looked up by
:class:`repro.sim.config.WorkloadConfig` validation and by
:meth:`repro.system.base.System.load_workload` when a built system installs
its reference streams.

A family (:class:`WorkloadFamily`) is a parameterized scenario generator:
it owns a catalogue entry (name, description, order), a set of named
parameters with defaults, and a ``build`` hook that turns
``(num_processors, block_bytes, seed, params)`` into a stream generator
obeying the v2 chunked-substream schema of
:class:`repro.workloads.base.SyntheticWorkload` (deterministic, vectorized,
golden-digest pinned).  The five paper profiles are registered through one
``profile`` family implementation (five instances, figure order preserved);
the parameterized scenario families live in
:mod:`repro.workloads.families`.

==================  ===========================================  ======
registry name       scenario                                     order
==================  ===========================================  ======
``jbb``             SPECjbb2000 analogue (Table 3)               10
``apache``          Apache/SURGE analogue (Table 3)              20
``slashcode``       Slashcode analogue (Table 3)                 30
``oltp``            TPC-C/DB2 analogue (Table 3)                 40
``barnes``          SPLASH-2 barnes-hut analogue (Table 3)       50
``hotspot``         N-block write storm with arrival bursts      60
``producer_consumer``  ring/pipeline handoff across nodes        70
``phased``          alternating compute/communicate epochs       80
``scaled``          paper profiles re-derived from node count    90
``mixed``           heterogeneous per-node family assignment     100
==================  ===========================================  ======
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, List, Mapping, Optional

from repro.sim.config import DEFAULT_BLOCK_BYTES, DEFAULT_WORKLOAD_SEED


class WorkloadFamily(ABC):
    """One registered scenario family.

    Subclasses set the class attributes, declare their parameter surface in
    ``defaults`` (every accepted parameter name with its default value) and
    implement :meth:`build`.  Parameter validation is shared: unknown keys
    are rejected here so a typo'd campaign axis fails at configuration
    time, and value checks go in :meth:`check_params`.
    """

    #: Stable registry name (the ``WorkloadConfig.name`` vocabulary).
    name: ClassVar[str]
    #: One-line catalogue entry (the Table 3 description column).
    description: ClassVar[str] = ""
    #: Catalogue position; the five paper profiles keep figure order.
    order: ClassVar[int] = 1000
    #: True for the paper's Table 3 suite (the figure experiments' default).
    paper: ClassVar[bool] = False
    #: Accepted parameters and their defaults (empty = not parameterized).
    defaults: ClassVar[Mapping[str, Any]] = {}

    # ------------------------------------------------------------- parameters
    def validate_params(self, params: Optional[Mapping[str, Any]]
                        ) -> Dict[str, Any]:
        """Merge ``params`` over the defaults, rejecting unknown keys."""
        merged = dict(self.defaults)
        if params:
            unknown = sorted(set(params) - set(self.defaults))
            if unknown:
                accepted = ", ".join(sorted(self.defaults)) or "<none>"
                raise ValueError(
                    f"workload {self.name!r} does not accept parameter(s) "
                    f"{unknown}; accepted: {accepted}")
            merged.update(params)
        self.check_params(merged)
        return merged

    def check_params(self, params: Dict[str, Any]) -> None:
        """Value-level validation hook (raise ``ValueError`` on bad values)."""

    # ------------------------------------------------------------------ build
    @abstractmethod
    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]):
        """Construct the stream generator for one run.

        ``params`` arrives merged and validated.  The returned object must
        expose the :class:`repro.workloads.base.SyntheticWorkload` surface:
        ``generate(node, n)``, ``generate_all(n)``, ``footprint_blocks`` and
        ``summary()`` — and generate through the v2 chunked-substream
        schema so streams are deterministic and vectorized.
        """


_REGISTRY: Dict[str, WorkloadFamily] = {}


def register_workload(family) -> Any:
    """Register a :class:`WorkloadFamily` (class decorator or instance call).

    As a decorator the class is instantiated once; calling it with an
    already-built instance registers that instance (how the ``profile``
    family registers the five paper workloads).  Registering a name twice
    is an error.
    """
    instance = family() if isinstance(family, type) else family
    if instance.name in _REGISTRY:
        raise ValueError(f"workload {instance.name!r} registered twice")
    _REGISTRY[instance.name] = instance
    return family


def _discover() -> None:
    # Import for the side effect of running the registrations on first use
    # (same lazy pattern as the topology and speculation registries).
    import repro.workloads.families  # noqa: F401


def get_family(name: str) -> WorkloadFamily:
    """Look up a registered workload family by name."""
    _discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(workload_names()) or "<none registered>"
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def workload_names() -> List[str]:
    """Every registered workload name, in catalogue (figure-first) order."""
    _discover()
    return [f.name for f in sorted(_REGISTRY.values(),
                                   key=lambda f: (f.order, f.name))]


def paper_workload_names() -> List[str]:
    """The paper's Table 3 suite, in the order the figures plot them."""
    _discover()
    return [name for name in workload_names() if _REGISTRY[name].paper]


def validate_workload(name: str, params: Optional[Mapping[str, Any]] = None
                      ) -> None:
    """Fail fast on an unknown name or bad params (``ValueError`` both ways).

    :class:`repro.sim.config.WorkloadConfig` calls this at construction
    time, so a bad workload axis dies when the design point is *declared* —
    before any simulation starts.
    """
    _discover()
    if name not in _REGISTRY:
        known = ", ".join(workload_names()) or "<none registered>"
        raise ValueError(f"unknown workload {name!r}; registered: {known}")
    _REGISTRY[name].validate_params(params)


def make_workload(name: str, *, num_processors: int,
                  block_bytes: int = DEFAULT_BLOCK_BYTES,
                  seed: int = DEFAULT_WORKLOAD_SEED,
                  params: Optional[Mapping[str, Any]] = None):
    """Instantiate a named workload generator through the registry.

    The ``block_bytes``/``seed`` defaults are the shared
    :data:`~repro.sim.config.DEFAULT_BLOCK_BYTES` /
    :data:`~repro.sim.config.DEFAULT_WORKLOAD_SEED` constants — the same
    source of truth :class:`~repro.sim.config.WorkloadConfig` uses, so the
    two entry points cannot drift.
    """
    family = get_family(name)
    merged = family.validate_params(params)
    return family.build(num_processors=num_processors,
                        block_bytes=block_bytes, seed=seed, params=merged)


def table3_rows() -> Dict[str, str]:
    """Table 3 analogue: one descriptive row per registered workload."""
    _discover()
    return {name: _REGISTRY[name].description for name in workload_names()}

"""SPECjbb2000 workload analogue ("Java Server").

The paper's Java server workload is SPECjbb2000 with 24 warehouses (~500 MB)
on the HotSpot server JVM.  Compared to OLTP it has:

* mostly warehouse-private object graphs (large private working set, decent
  locality from allocation),
* a smaller shared region (company-wide structures, the JIT code cache),
* a high overall store fraction (object allocation and field updates),
* lighter lock contention than OLTP.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="jbb",
    description="SPECjbb2000-like Java middleware server",
    private_blocks=8192,
    shared_blocks=1536,
    shared_fraction=0.15,
    shared_write_fraction=0.20,
    private_write_fraction=0.40,
    shared_zipf_alpha=1.2,
    migratory_fraction=0.04,
    migratory_records=96,
    lock_fraction=0.015,
    lock_blocks=12,
    sequential_run_probability=0.55,
    sequential_run_length=6,
)

"""Synthetic workload generation.

The paper evaluates with the Wisconsin Commercial Workload Suite (OLTP,
SPECjbb, Apache, Slashcode) plus barnes-hut from SPLASH-2 (Table 3), run
under full-system simulation.  Those workloads and the Simics environment
are not available here, so each workload is replaced by a synthetic memory
reference generator whose coarse memory-system character matches the
original (see DESIGN.md for the substitution argument).  What the
experiments actually consume from a workload is the stream of block
addresses and read/write operations each processor presents to the coherence
protocol; the generator controls exactly those properties:

* per-processor private working set (captures capacity miss rate),
* a globally shared region with configurable access probability, skew
  (hot blocks) and write fraction (captures sharing-induced coherence
  traffic: invalidations, forwarded requests, writeback races),
* migratory sharing (read-modify-write of a moving "record"), the pattern
  that produces Section 3.1's writeback races,
* lock-like hot blocks with very high write fractions (captures contention
  in OLTP/Slashcode),
* sequential scan runs (captures streaming phases in barnes/Apache).

Reference streams are fully deterministic given a seed, which makes every
experiment reproducible and lets the SafetyNet rollback re-execute exactly
the same work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.coherence.common import MemoryOp
from repro.sim.rng import DeterministicRng

#: One memory reference: (operation, block address).
Reference = Tuple[MemoryOp, int]


@dataclass
class WorkloadProfile:
    """Parameters that shape a synthetic workload.

    The numbers are per-reference probabilities; they do not need to sum to
    one — remaining probability mass goes to the private working set.
    """

    name: str
    description: str = ""
    #: Blocks in each processor's private working set.
    private_blocks: int = 4096
    #: Blocks in the globally shared region.
    shared_blocks: int = 2048
    #: Probability that a reference targets the shared region.
    shared_fraction: float = 0.20
    #: Probability that a *shared* reference is a store.
    shared_write_fraction: float = 0.20
    #: Probability that a *private* reference is a store.
    private_write_fraction: float = 0.30
    #: Zipf exponent for shared-region block popularity (>1 = skewed).
    shared_zipf_alpha: float = 1.2
    #: Probability of a migratory read-modify-write burst (owner moves from
    #: processor to processor; generates writebacks racing with requests).
    migratory_fraction: float = 0.05
    #: Number of distinct migratory records.
    migratory_records: int = 64
    #: Probability of touching a lock-like hot block (read-modify-write).
    lock_fraction: float = 0.02
    #: Number of lock blocks.
    lock_blocks: int = 16
    #: Probability that a private reference continues a sequential run.
    sequential_run_probability: float = 0.5
    #: Mean length of sequential runs (blocks).
    sequential_run_length: int = 8

    def __post_init__(self) -> None:
        for attr in ("shared_fraction", "shared_write_fraction",
                     "private_write_fraction", "migratory_fraction",
                     "lock_fraction", "sequential_run_probability"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.private_blocks <= 0 or self.shared_blocks <= 0:
            raise ValueError("working-set sizes must be positive")


class SyntheticWorkload:
    """Generates per-processor reference streams from a profile."""

    def __init__(self, profile: WorkloadProfile, *, num_processors: int,
                 block_bytes: int = 64, seed: int = 1) -> None:
        if num_processors <= 0:
            raise ValueError("num_processors must be positive")
        self.profile = profile
        self.num_processors = num_processors
        self.block_bytes = block_bytes
        self.seed = seed
        self.rng = DeterministicRng(seed)
        # Address-space layout: [shared region][locks][migratory][per-node private]
        self._shared_base = 0
        self._lock_base = self._shared_base + profile.shared_blocks * block_bytes
        self._migratory_base = self._lock_base + profile.lock_blocks * block_bytes
        self._private_base = (self._migratory_base
                              + profile.migratory_records * block_bytes)

    # ------------------------------------------------------------- addressing
    def shared_address(self, index: int) -> int:
        return self._shared_base + (index % self.profile.shared_blocks) * self.block_bytes

    def lock_address(self, index: int) -> int:
        return self._lock_base + (index % self.profile.lock_blocks) * self.block_bytes

    def migratory_address(self, index: int) -> int:
        return self._migratory_base + (index % self.profile.migratory_records) * self.block_bytes

    def private_address(self, node: int, index: int) -> int:
        node_base = self._private_base + node * self.profile.private_blocks * self.block_bytes
        return node_base + (index % self.profile.private_blocks) * self.block_bytes

    @property
    def footprint_blocks(self) -> int:
        """Total distinct blocks the workload can touch."""
        p = self.profile
        return (p.shared_blocks + p.lock_blocks + p.migratory_records
                + p.private_blocks * self.num_processors)

    # -------------------------------------------------------------- generation
    def generate(self, node: int, num_references: int) -> List[Reference]:
        """Generate the reference stream for one processor."""
        if num_references < 0:
            raise ValueError("num_references must be non-negative")
        p = self.profile
        stream = self.rng.stream(f"workload.{p.name}.node{node}")
        refs: List[Reference] = []
        seq_remaining = 0
        seq_cursor = 0
        private_cursor = 0

        draws = stream.random(num_references)
        kind_draws = stream.random(num_references)

        i = 0
        while len(refs) < num_references:
            u = draws[i % len(draws)] if len(draws) else 0.0
            k = kind_draws[i % len(kind_draws)] if len(kind_draws) else 0.0
            i += 1

            if u < p.lock_fraction:
                # Lock acquire/release: read-modify-write of a hot block.
                addr = self.lock_address(int(stream.integers(0, p.lock_blocks)))
                refs.append((MemoryOp.LOAD, addr))
                if len(refs) < num_references:
                    refs.append((MemoryOp.STORE, addr))
                continue
            u -= p.lock_fraction

            if u < p.migratory_fraction:
                # Migratory record: read then write, ownership migrates.
                addr = self.migratory_address(int(stream.integers(0, p.migratory_records)))
                refs.append((MemoryOp.LOAD, addr))
                if len(refs) < num_references:
                    refs.append((MemoryOp.STORE, addr))
                continue
            u -= p.migratory_fraction

            if u < p.shared_fraction:
                index = self._zipf_index(stream, p.shared_blocks, p.shared_zipf_alpha)
                addr = self.shared_address(index)
                op = MemoryOp.STORE if k < p.shared_write_fraction else MemoryOp.LOAD
                refs.append((op, addr))
                continue

            # Private reference, possibly continuing a sequential run.
            if seq_remaining > 0:
                seq_cursor += 1
                seq_remaining -= 1
            elif k < p.sequential_run_probability:
                seq_cursor = int(stream.integers(0, p.private_blocks))
                seq_remaining = max(1, int(stream.geometric(1.0 / p.sequential_run_length)))
            else:
                private_cursor = int(stream.integers(0, p.private_blocks))
                seq_cursor = private_cursor
            addr = self.private_address(node, seq_cursor)
            op = MemoryOp.STORE if k < p.private_write_fraction else MemoryOp.LOAD
            refs.append((op, addr))

        return refs[:num_references]

    @staticmethod
    def _zipf_index(stream: np.random.Generator, n: int, alpha: float) -> int:
        if alpha <= 1.0:
            return int(stream.integers(0, n))
        while True:
            value = int(stream.zipf(alpha)) - 1
            if value < n:
                return value

    def generate_all(self, references_per_processor: int) -> Dict[int, List[Reference]]:
        """Generate streams for every processor."""
        return {node: self.generate(node, references_per_processor)
                for node in range(self.num_processors)}

    # -------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, object]:
        p = self.profile
        return {
            "name": p.name,
            "description": p.description,
            "processors": self.num_processors,
            "footprint_blocks": self.footprint_blocks,
            "shared_fraction": p.shared_fraction,
            "shared_write_fraction": p.shared_write_fraction,
            "migratory_fraction": p.migratory_fraction,
            "lock_fraction": p.lock_fraction,
        }


def mix_statistics(references: Sequence[Reference]) -> Dict[str, float]:
    """Read/write/footprint statistics of a reference stream (for tests)."""
    if not references:
        return {"stores": 0.0, "loads": 0.0, "unique_blocks": 0.0}
    stores = sum(1 for op, _ in references if op == MemoryOp.STORE)
    unique = len({addr for _, addr in references})
    total = len(references)
    return {
        "stores": stores / total,
        "loads": (total - stores) / total,
        "unique_blocks": float(unique),
    }

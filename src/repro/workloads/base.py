"""Synthetic workload generation.

The paper evaluates with the Wisconsin Commercial Workload Suite (OLTP,
SPECjbb, Apache, Slashcode) plus barnes-hut from SPLASH-2 (Table 3), run
under full-system simulation.  Those workloads and the Simics environment
are not available here, so each workload is replaced by a synthetic memory
reference generator whose coarse memory-system character matches the
original (see DESIGN.md for the substitution argument).  What the
experiments actually consume from a workload is the stream of block
addresses and read/write operations each processor presents to the coherence
protocol; the generator controls exactly those properties:

* per-processor private working set (captures capacity miss rate),
* a globally shared region with configurable access probability, skew
  (hot blocks) and write fraction (captures sharing-induced coherence
  traffic: invalidations, forwarded requests, writeback races),
* migratory sharing (read-modify-write of a moving "record"), the pattern
  that produces Section 3.1's writeback races,
* lock-like hot blocks with very high write fractions (captures contention
  in OLTP/Slashcode),
* sequential scan runs (captures streaming phases in barnes/Apache).

Reference streams are fully deterministic given a seed, which makes every
experiment reproducible and lets the SafetyNet rollback re-execute exactly
the same work.

Generation is vectorized (stream schema v2): classification, address and
run-length randomness come from separate named substreams of the workload's
RNG tree and are drawn in chunks of thousands of values per ``Generator``
call, instead of one scalar draw per reference.  The emitted stream for a
given ``(profile, seed, node, n)`` is pinned by golden determinism tests
(``tests/test_processor_workloads.py``): any change to the consumption
schedule — chunk size, draw order, substream names — is a deliberate,
test-visible schema change.  (The pre-v2 scalar generator drew every
call site from one shared stream, which is inherently unvectorizable: the
bit-stream words reach call sites in data-dependent order, so chunking
necessarily re-maps them.  v2 re-keys the substreams once and pins the new
streams instead.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.coherence.common import MemoryOp
from repro.sim.rng import DeterministicRng

#: One memory reference: (operation, block address).
Reference = Tuple[MemoryOp, int]


@dataclass(frozen=True)
class StreamArtifact:
    """Immutable generated reference streams for one workload design point.

    The expensive part of a workload — drawing and classifying every
    reference — depends only on ``(family, params, seed, node count, block
    size, stream length)``, never on the run consuming it.  Freezing the
    generated streams into per-node tuples separates that shareable artifact
    from the cheap per-run state: each run takes a fresh mutable
    :meth:`cursor` per node while the artifact itself can be memoized and
    reused across runs (see :mod:`repro.workloads.memo`).
    """

    workload: str
    num_processors: int
    references_per_processor: int
    #: Per-node streams, indexed by node id; tuples so sharing is safe.
    streams: Tuple[Tuple[Reference, ...], ...]

    def cursor(self, node: int) -> List[Reference]:
        """A fresh per-run copy of one node's stream (callers may consume
        or mutate it freely without touching the shared artifact)."""
        return list(self.streams[node])


@dataclass
class WorkloadProfile:
    """Parameters that shape a synthetic workload.

    The numbers are per-reference probabilities; they do not need to sum to
    one — remaining probability mass goes to the private working set.
    """

    name: str
    description: str = ""
    #: Blocks in each processor's private working set.
    private_blocks: int = 4096
    #: Blocks in the globally shared region.
    shared_blocks: int = 2048
    #: Probability that a reference targets the shared region.
    shared_fraction: float = 0.20
    #: Probability that a *shared* reference is a store.
    shared_write_fraction: float = 0.20
    #: Probability that a *private* reference is a store.
    private_write_fraction: float = 0.30
    #: Zipf exponent for shared-region block popularity (>1 = skewed).
    shared_zipf_alpha: float = 1.2
    #: Probability of a migratory read-modify-write burst (owner moves from
    #: processor to processor; generates writebacks racing with requests).
    migratory_fraction: float = 0.05
    #: Number of distinct migratory records.
    migratory_records: int = 64
    #: Probability of touching a lock-like hot block (read-modify-write).
    lock_fraction: float = 0.02
    #: Number of lock blocks.
    lock_blocks: int = 16
    #: Probability that a private reference continues a sequential run.
    sequential_run_probability: float = 0.5
    #: Mean length of sequential runs (blocks).
    sequential_run_length: int = 8

    def __post_init__(self) -> None:
        for attr in ("shared_fraction", "shared_write_fraction",
                     "private_write_fraction", "migratory_fraction",
                     "lock_fraction", "sequential_run_probability"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.private_blocks <= 0 or self.shared_blocks <= 0:
            raise ValueError("working-set sizes must be positive")


class SyntheticWorkload:
    """Generates per-processor reference streams from a profile."""

    def __init__(self, profile: WorkloadProfile, *, num_processors: int,
                 block_bytes: int = 64, seed: int = 1) -> None:
        if num_processors <= 0:
            raise ValueError("num_processors must be positive")
        self.profile = profile
        self.num_processors = num_processors
        self.block_bytes = block_bytes
        self.seed = seed
        self.rng = DeterministicRng(seed)
        # Address-space layout: [shared region][locks][migratory][per-node private]
        self._shared_base = 0
        self._lock_base = self._shared_base + profile.shared_blocks * block_bytes
        self._migratory_base = self._lock_base + profile.lock_blocks * block_bytes
        self._private_base = (self._migratory_base
                              + profile.migratory_records * block_bytes)

    # ------------------------------------------------------------- addressing
    def shared_address(self, index: int) -> int:
        return self._shared_base + (index % self.profile.shared_blocks) * self.block_bytes

    def lock_address(self, index: int) -> int:
        return self._lock_base + (index % self.profile.lock_blocks) * self.block_bytes

    def migratory_address(self, index: int) -> int:
        return self._migratory_base + (index % self.profile.migratory_records) * self.block_bytes

    def private_address(self, node: int, index: int) -> int:
        node_base = self._private_base + node * self.profile.private_blocks * self.block_bytes
        return node_base + (index % self.profile.private_blocks) * self.block_bytes

    @property
    def footprint_blocks(self) -> int:
        """Total distinct blocks the workload can touch."""
        p = self.profile
        return (p.shared_blocks + p.lock_blocks + p.migratory_records
                + p.private_blocks * self.num_processors)

    # -------------------------------------------------------------- generation
    #: Iterations classified per vectorized chunk.  Part of the pinned
    #: stream schema: changing it changes the draw schedule and therefore
    #: the emitted streams (the golden tests will say so).
    CHUNK_ITERATIONS = 8192

    def generate(self, node: int, num_references: int) -> List[Reference]:
        """Generate the reference stream for one processor (vectorized).

        Each chunk classifies up to :data:`CHUNK_ITERATIONS` iterations from
        the ``.class`` substream (an iteration emits one reference, or two
        for the read-modify-write lock/migratory patterns), then draws every
        category's addresses in one ``Generator`` call each from the
        ``.addr`` substream and the private sequential-run structure from
        the ``.run`` substream.  Repeated calls for the same node continue
        the node's streams, exactly like the scalar generator did.
        """
        if num_references < 0:
            raise ValueError("num_references must be non-negative")
        p = self.profile
        base = f"workload.{p.name}.node{node}"
        cls_stream = self.rng.stream(f"{base}.class")
        addr_stream = self.rng.stream(f"{base}.addr")
        run_stream = self.rng.stream(f"{base}.run")

        store_chunks: List[np.ndarray] = []
        addr_chunks: List[np.ndarray] = []
        produced = 0
        state = self._new_stream_state()
        while produced < num_references:
            stores, addrs = self._generate_chunk(
                node, min(self.CHUNK_ITERATIONS, num_references - produced),
                cls_stream, addr_stream, run_stream, state)
            store_chunks.append(stores)
            addr_chunks.append(addrs)
            produced += len(stores)

        store_flags: List[bool] = []
        addresses: List[int] = []
        for stores, addrs in zip(store_chunks, addr_chunks):
            store_flags.extend(stores.tolist())
            addresses.extend(addrs.tolist())
        del store_flags[num_references:]
        del addresses[num_references:]
        load, store = MemoryOp.LOAD, MemoryOp.STORE
        return [(store if is_store else load, address)
                for is_store, address in zip(store_flags, addresses)]

    def _new_stream_state(self) -> Dict[str, List[int]]:
        """Per-``generate``-call cross-chunk state.

        ``"run"`` is the sequential-run state ``[cursor, remaining]``,
        carried across chunks of one call but reset per call (the scalar
        generator's semantics).  Family subclasses may add further entries
        (e.g. the hotspot burst carry) without changing the base schedule.
        """
        return {"run": [0, 0]}

    def _generate_chunk(self, node: int, iterations: int,
                        cls_stream: np.random.Generator,
                        addr_stream: np.random.Generator,
                        run_stream: np.random.Generator,
                        state: Dict[str, List[int]],
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """One vectorized chunk: ``(store_mask, addresses)`` arrays.

        May emit up to ``2 * iterations`` references (lock/migratory
        iterations emit a load+store pair); the caller truncates.
        """
        p = self.profile
        bb = self.block_bytes
        u = cls_stream.random(iterations)
        k = cls_stream.random(iterations)

        # Branch classification, with the same subtract-then-compare
        # cascade as the scalar generator's if/elif chain.
        lock_m = u < p.lock_fraction
        u2 = u - p.lock_fraction
        mig_m = ~lock_m & (u2 < p.migratory_fraction)
        u3 = u2 - p.migratory_fraction
        shared_m = ~lock_m & ~mig_m & (u3 < p.shared_fraction)
        private_m = ~(lock_m | mig_m | shared_m)

        pair_m = lock_m | mig_m
        refs_per_iter = np.where(pair_m, 2, 1)
        first_ref_pos = np.cumsum(refs_per_iter) - refs_per_iter
        total_refs = int(first_ref_pos[-1]) + int(refs_per_iter[-1])

        store_mask = np.zeros(total_refs, dtype=bool)
        addresses = np.zeros(total_refs, dtype=np.int64)

        # Lock / migratory read-modify-write pairs: LOAD then STORE of the
        # same hot block.
        for mask, region_base, region_blocks in (
                (lock_m, self._lock_base, p.lock_blocks),
                (mig_m, self._migratory_base, p.migratory_records)):
            count = int(mask.sum())
            if count:
                idx = addr_stream.integers(0, region_blocks, size=count)
                pair_addr = region_base + idx * bb
                pos = first_ref_pos[mask]
                addresses[pos] = pair_addr
                addresses[pos + 1] = pair_addr
                store_mask[pos + 1] = True

        # Shared region; how indices are drawn is the family's main hook
        # (zipf-skewed hot blocks by default).
        shared_count = int(shared_m.sum())
        if shared_count:
            idx = self._shared_indices(node, shared_count, k[shared_m],
                                       addr_stream, run_stream, state)
            pos = first_ref_pos[shared_m]
            addresses[pos] = self._shared_base + idx * bb
            store_mask[pos] = k[shared_m] < p.shared_write_fraction

        # Private working set: sequential runs + random singles.
        private_count = int(private_m.sum())
        if private_count:
            cursors = self._private_cursors(private_count, addr_stream,
                                            run_stream, state["run"])
            pos = first_ref_pos[private_m]
            node_base = (self._private_base
                         + node * p.private_blocks * bb)
            addresses[pos] = node_base + (cursors % p.private_blocks) * bb
            store_mask[pos] = k[private_m] < p.private_write_fraction

        return store_mask, addresses

    def _shared_indices(self, node: int, count: int, k_shared: np.ndarray,
                        addr_stream: np.random.Generator,
                        run_stream: np.random.Generator,
                        state: Dict[str, List[int]]) -> np.ndarray:
        """Block indices (into the shared region) for ``count`` shared
        references, in stream order.

        The default draws zipf-skewed indices from the ``.addr`` substream —
        byte-identical to the pre-registry generator.  Family subclasses
        override this to shape the shared traffic (hotspot bursts,
        producer/consumer handoff buffers) while inheriting the whole
        chunked classification schedule; ``k_shared`` is the per-reference
        write-classification draw (the same values the caller compares
        against ``shared_write_fraction``), so an override can correlate
        the target block with load/store direction without extra draws.
        """
        del node, k_shared, run_stream, state  # unused by the default shape
        p = self.profile
        return self._zipf_indices(addr_stream, p.shared_blocks,
                                  p.shared_zipf_alpha, count)

    def _private_cursors(self, count: int,
                         addr_stream: np.random.Generator,
                         run_stream: np.random.Generator,
                         run_state: List[int]) -> np.ndarray:
        """Block cursors for ``count`` private references, in order.

        The private stream is a sequence of segments: with probability
        ``sequential_run_probability`` a sequential run of
        ``1 + max(1, Geometric(1/len))`` blocks from a random start,
        otherwise a single random block.  Segment structure comes from the
        ``.run`` substream, segment start blocks from ``.addr``; a segment
        that overruns the request is carried into the next chunk via
        ``run_state`` — exactly the scalar generator's run state,
        vectorized.
        """
        p = self.profile
        pieces: List[np.ndarray] = []
        filled = 0

        # Continue a run left over from the previous chunk.
        if run_state[1] > 0:
            take = min(run_state[1], count)
            pieces.append(np.arange(run_state[0] + 1,
                                    run_state[0] + take + 1,
                                    dtype=np.int64))
            run_state[0] += take
            run_state[1] -= take
            filled += take

        while filled < count:
            # Expected segment length is >= 1; draw a generous batch so the
            # loop almost always runs once.
            need = count - filled
            nseg = max(16, need // 2)
            is_run = run_stream.random(nseg) < p.sequential_run_probability
            run_extra = np.maximum(
                1, run_stream.geometric(1.0 / p.sequential_run_length,
                                        size=nseg))
            lengths = np.where(is_run, 1 + run_extra, 1)
            starts = addr_stream.integers(0, p.private_blocks, size=nseg)

            ends = np.cumsum(lengths)
            last = int(np.searchsorted(ends, need, side="left"))
            if last >= nseg:
                # Batch fell short: consume it fully and loop for more.
                used, consumed = nseg, int(ends[-1])
            else:
                used, consumed = last + 1, need
            seg_starts = starts[:used]
            seg_lengths = lengths[:used].copy()
            overrun = int(ends[used - 1]) - consumed
            if overrun > 0:
                seg_lengths[-1] -= overrun
            offsets = np.arange(consumed, dtype=np.int64) - np.repeat(
                np.cumsum(seg_lengths) - seg_lengths, seg_lengths)
            pieces.append(np.repeat(seg_starts, seg_lengths) + offsets)
            filled += consumed

            last_start = int(seg_starts[-1])
            last_used = int(seg_lengths[-1])
            run_state[0] = last_start + last_used - 1
            run_state[1] = overrun if overrun > 0 else 0

        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    @staticmethod
    def _zipf_indices(stream: np.random.Generator, n: int, alpha: float,
                      count: int) -> np.ndarray:
        """``count`` zipf-distributed indices in ``[0, n)`` (vectorized
        rejection; uniform for degenerate exponents)."""
        if alpha <= 1.0:
            return stream.integers(0, n, size=count)
        out = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = stream.zipf(alpha, size=max(16, count - filled)) - 1
            valid = draw[draw < n]
            take = min(len(valid), count - filled)
            out[filled:filled + take] = valid[:take]
            filled += take
        return out

    def generate_all(self, references_per_processor: int) -> Dict[int, List[Reference]]:
        """Generate streams for every processor."""
        return {node: self.generate(node, references_per_processor)
                for node in range(self.num_processors)}

    def freeze(self, references_per_processor: int) -> StreamArtifact:
        """Generate every stream once and freeze the result for sharing.

        The artifact carries exactly what :meth:`generate_all` would have
        produced (same draw schedule, same golden digests), packaged
        immutably so the memo layer can hand it to many runs.
        """
        streams = self.generate_all(references_per_processor)
        return StreamArtifact(
            workload=self.profile.name,
            num_processors=self.num_processors,
            references_per_processor=references_per_processor,
            streams=tuple(tuple(streams[node])
                          for node in range(self.num_processors)))

    # -------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, object]:
        p = self.profile
        return {
            "name": p.name,
            "description": p.description,
            "processors": self.num_processors,
            "footprint_blocks": self.footprint_blocks,
            "shared_fraction": p.shared_fraction,
            "shared_write_fraction": p.shared_write_fraction,
            "migratory_fraction": p.migratory_fraction,
            "lock_fraction": p.lock_fraction,
        }


def mix_statistics(references) -> Dict[str, float]:
    """Read/write/footprint statistics of a reference stream.

    Accepts either one stream (a sequence of references) or a *mixed*
    per-node mapping ``{node: stream}`` — the shape heterogeneous families
    (``producer_consumer``, ``mixed``) hand out, where different nodes run
    different reference mixes.  A mapping is characterised as the union of
    its streams, with two extra keys: ``nodes`` (streams aggregated) and
    ``store_fraction_spread`` (max - min per-node store fraction, the
    heterogeneity signal; 0.0 for a homogeneous assignment).
    """
    if isinstance(references, Mapping):
        streams = [references[node] for node in sorted(references)]
        combined: List[Reference] = [ref for stream in streams for ref in stream]
        stats = mix_statistics(combined)
        fractions = [mix_statistics(stream)["stores"]
                     for stream in streams if stream]
        stats["nodes"] = float(len(streams))
        stats["store_fraction_spread"] = (
            max(fractions) - min(fractions) if fractions else 0.0)
        return stats
    if not references:
        return {"stores": 0.0, "loads": 0.0, "unique_blocks": 0.0}
    stores = sum(1 for op, _ in references if op == MemoryOp.STORE)
    unique = len({addr for _, addr in references})
    total = len(references)
    return {
        "stores": stores / total,
        "loads": (total - stores) / total,
        "unique_blocks": float(unique),
    }

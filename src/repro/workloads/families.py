"""The registered workload families.

Importing this module populates the workload registry
(:mod:`repro.workloads.registry`).  Two kinds of families live here:

* the ``profile`` family — one instance per paper workload (Table 3),
  wrapping the :class:`~repro.workloads.base.WorkloadProfile` constants of
  the five profile modules; ``params`` may override any numeric profile
  field, so a campaign can sweep e.g. ``shared_fraction`` without a new
  module;
* four-plus parameterized scenario families that open workload shapes the
  paper suite cannot express: ``hotspot`` (bursty write storm on a few hot
  blocks), ``producer_consumer`` (ring/pipeline handoff between
  neighbouring nodes — per-node heterogeneous by construction), ``phased``
  (alternating compute/communicate epochs), ``scaled`` (paper profiles with
  working sets and sharing degree re-derived from the node count) and
  ``mixed`` (different families assigned to different node ranges).

Every family generates through the v2 chunked-substream schema of
:class:`~repro.workloads.base.SyntheticWorkload` — classification from
``.class``, addresses from ``.addr``, run/burst structure from ``.run`` —
so streams stay deterministic, vectorized and golden-digest pinned
(``tests/test_workload_registry.py``).  Changing a family's draw schedule
is a schema change: re-pin its digests deliberately or not at all.
"""

from __future__ import annotations

import math
from dataclasses import fields, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.workloads import apache, barnes, jbb, oltp, slashcode
from repro.workloads.base import Reference, SyntheticWorkload, WorkloadProfile
from repro.workloads.registry import (
    WorkloadFamily,
    get_family,
    register_workload,
)

#: The paper's Table 3 profiles, in the order the figures plot them.
PAPER_PROFILES: Dict[str, WorkloadProfile] = {
    "jbb": jbb.PROFILE,
    "apache": apache.PROFILE,
    "slashcode": slashcode.PROFILE,
    "oltp": oltp.PROFILE,
    "barnes": barnes.PROFILE,
}

#: Profile fields a ``profile``-family ``params`` mapping may override.
_PROFILE_OVERRIDABLE = tuple(
    f.name for f in fields(WorkloadProfile)
    if f.name not in ("name", "description"))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _require_fractions(params: Mapping[str, Any], *names: str) -> None:
    """Validate probability parameters by their *user-facing* names.

    Part of the fail-fast contract: a bad fraction must die at
    configuration time naming the parameter the user set, not mid-run
    inside ``load_workload`` naming the internal profile field it feeds.
    """
    for name in names:
        value = float(params[name])
        _require(0.0 <= value <= 1.0,
                 f"{name} must be in [0, 1], got {value}")


# ============================================================ profile family
class ProfileWorkloadFamily(WorkloadFamily):
    """One paper workload: a fixed profile, optionally field-overridden."""

    paper = True

    def __init__(self, profile: WorkloadProfile, order: int) -> None:
        self.profile = profile
        self.name = profile.name
        self.description = profile.description
        self.order = order

    def validate_params(self, params: Optional[Mapping[str, Any]]
                        ) -> Dict[str, Any]:
        if not params:
            return {}
        unknown = sorted(set(params) - set(_PROFILE_OVERRIDABLE))
        if unknown:
            raise ValueError(
                f"workload {self.name!r} does not accept parameter(s) "
                f"{unknown}; accepted profile overrides: "
                f"{', '.join(_PROFILE_OVERRIDABLE)}")
        replace(self.profile, **params)  # field validation (__post_init__)
        return dict(params)

    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]) -> SyntheticWorkload:
        profile = replace(self.profile, **params) if params else self.profile
        return SyntheticWorkload(profile, num_processors=num_processors,
                                 block_bytes=block_bytes, seed=seed)


for _order, _profile in enumerate(PAPER_PROFILES.values(), start=1):
    register_workload(ProfileWorkloadFamily(_profile, order=10 * _order))


# =================================================================== hotspot
class HotspotWorkload(SyntheticWorkload):
    """Write storm on a few hot blocks, arriving in bursts.

    Rides the base chunk schedule; only the shared-index shape differs:
    instead of independent zipf draws, a shared reference continues the
    current *burst* (repeated references to one hot block) or starts a new
    one — burst start blocks come zipf-skewed from ``.addr``, burst lengths
    from ``.run`` (``1 + Geometric``-style, mean ``burst_length``), and a
    burst that overruns the chunk carries into the next one.
    """

    def __init__(self, profile: WorkloadProfile, *, burst_length: float,
                 num_processors: int, block_bytes: int, seed: int) -> None:
        super().__init__(profile, num_processors=num_processors,
                         block_bytes=block_bytes, seed=seed)
        self.burst_length = float(burst_length)

    def _new_stream_state(self) -> Dict[str, List[int]]:
        state = super()._new_stream_state()
        state["burst"] = [0, 0]  # [hot block, references remaining]
        return state

    def _shared_indices(self, node: int, count: int, k_shared: np.ndarray,
                        addr_stream: np.random.Generator,
                        run_stream: np.random.Generator,
                        state: Dict[str, List[int]]) -> np.ndarray:
        del node, k_shared
        p = self.profile
        burst = state["burst"]
        out = np.empty(count, dtype=np.int64)
        filled = 0
        if burst[1] > 0:
            take = min(burst[1], count)
            out[:take] = burst[0]
            burst[1] -= take
            filled = take
        while filled < count:
            need = count - filled
            nburst = max(8, int(need / max(1.0, self.burst_length)) + 1)
            starts = self._zipf_indices(addr_stream, p.shared_blocks,
                                        p.shared_zipf_alpha, nburst)
            lengths = np.maximum(
                1, run_stream.geometric(1.0 / self.burst_length, size=nburst))
            ends = np.cumsum(lengths)
            last = int(np.searchsorted(ends, need, side="left"))
            if last >= nburst:
                used, consumed = nburst, int(ends[-1])
            else:
                used, consumed = last + 1, need
            lengths = lengths[:used].copy()
            overrun = int(ends[used - 1]) - consumed
            if overrun > 0:
                lengths[-1] -= overrun
            out[filled:filled + consumed] = np.repeat(starts[:used], lengths)
            filled += consumed
            burst[0] = int(starts[used - 1])
            burst[1] = overrun if overrun > 0 else 0
        return out


@register_workload
class HotspotFamily(WorkloadFamily):
    """N-block write storm with configurable arrival bursts."""

    name = "hotspot"
    description = "bursty write storm on a small set of hot blocks"
    order = 60
    defaults = {
        "hot_blocks": 8,          #: size of the contended block set
        "hot_fraction": 0.45,     #: probability a reference storms a hot block
        "write_fraction": 0.8,    #: probability a hot access is a store
        "burst_length": 4.0,      #: mean consecutive references per burst
        "zipf_alpha": 1.6,        #: skew *within* the hot set
        "private_blocks": 4096,   #: background per-node working set
    }

    def check_params(self, params: Dict[str, Any]) -> None:
        _require(int(params["hot_blocks"]) >= 1, "hot_blocks must be >= 1")
        _require(float(params["burst_length"]) >= 1.0,
                 "burst_length must be >= 1")
        _require(int(params["private_blocks"]) >= 1,
                 "private_blocks must be >= 1")
        _require(float(params["zipf_alpha"]) > 0.0,
                 "zipf_alpha must be positive")
        _require_fractions(params, "hot_fraction", "write_fraction")

    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]) -> HotspotWorkload:
        profile = WorkloadProfile(
            name=self.name,
            description=self.description,
            private_blocks=int(params["private_blocks"]),
            shared_blocks=int(params["hot_blocks"]),
            shared_fraction=float(params["hot_fraction"]),
            shared_write_fraction=float(params["write_fraction"]),
            private_write_fraction=0.2,
            shared_zipf_alpha=float(params["zipf_alpha"]),
            migratory_fraction=0.0,
            lock_fraction=0.0,
            sequential_run_probability=0.4,
            sequential_run_length=6,
        )
        return HotspotWorkload(profile, burst_length=params["burst_length"],
                               num_processors=num_processors,
                               block_bytes=block_bytes, seed=seed)


# ========================================================= producer/consumer
class ProducerConsumerWorkload(SyntheticWorkload):
    """Ring/pipeline handoff: each node writes its own stage buffer and
    reads its upstream neighbour's.

    Heterogeneous per node by construction — node ``i`` stores into buffer
    ``i`` and loads from buffer ``(i - 1) mod N``, so consumer loads keep
    hitting blocks the upstream producer holds MODIFIED: exactly the
    forwarded-request / writeback-race pattern of the directory protocol's
    Section 3.1 corner case.  The shared region of the base schedule *is*
    the concatenated stage buffers; ``k_shared`` (the write-classification
    draw) selects produce vs. consume, so direction and target buffer stay
    correlated without extra draws.
    """

    def __init__(self, profile: WorkloadProfile, *, buffer_blocks: int,
                 num_processors: int, block_bytes: int, seed: int) -> None:
        super().__init__(profile, num_processors=num_processors,
                         block_bytes=block_bytes, seed=seed)
        self.buffer_blocks = int(buffer_blocks)

    def _shared_indices(self, node: int, count: int, k_shared: np.ndarray,
                        addr_stream: np.random.Generator,
                        run_stream: np.random.Generator,
                        state: Dict[str, List[int]]) -> np.ndarray:
        del run_stream, state
        idx = addr_stream.integers(0, self.buffer_blocks, size=count)
        own = node * self.buffer_blocks
        upstream = ((node - 1) % self.num_processors) * self.buffer_blocks
        produce = k_shared < self.profile.shared_write_fraction
        return np.where(produce, own + idx, upstream + idx)


@register_workload
class ProducerConsumerFamily(WorkloadFamily):
    """Ring/pipeline handoff across nodes (directory forwarding races)."""

    name = "producer_consumer"
    description = "ring pipeline: each node feeds its downstream neighbour"
    order = 70
    defaults = {
        "buffer_blocks": 256,        #: blocks per per-node stage buffer
        "handoff_fraction": 0.35,    #: probability a reference is a handoff
        "produce_fraction": 0.5,     #: handoff share that writes (vs. reads)
        "private_blocks": 2048,      #: per-node scratch working set
        "private_write_fraction": 0.25,
        "sequential_run_probability": 0.4,
        "sequential_run_length": 6,
    }

    def check_params(self, params: Dict[str, Any]) -> None:
        _require(int(params["buffer_blocks"]) >= 1,
                 "buffer_blocks must be >= 1")
        _require(int(params["private_blocks"]) >= 1,
                 "private_blocks must be >= 1")
        _require(int(params["sequential_run_length"]) >= 1,
                 "sequential_run_length must be >= 1")
        _require_fractions(params, "handoff_fraction", "produce_fraction",
                           "private_write_fraction",
                           "sequential_run_probability")

    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]) -> ProducerConsumerWorkload:
        buffer_blocks = int(params["buffer_blocks"])
        profile = WorkloadProfile(
            name=self.name,
            description=self.description,
            private_blocks=int(params["private_blocks"]),
            shared_blocks=num_processors * buffer_blocks,
            shared_fraction=float(params["handoff_fraction"]),
            shared_write_fraction=float(params["produce_fraction"]),
            private_write_fraction=float(params["private_write_fraction"]),
            shared_zipf_alpha=1.0,  # unused: indices come from the override
            migratory_fraction=0.0,
            lock_fraction=0.0,
            sequential_run_probability=float(
                params["sequential_run_probability"]),
            sequential_run_length=int(params["sequential_run_length"]),
        )
        return ProducerConsumerWorkload(
            profile, buffer_blocks=buffer_blocks,
            num_processors=num_processors, block_bytes=block_bytes, seed=seed)


# ==================================================================== phased
class PhasedWorkload(SyntheticWorkload):
    """Alternating compute/communicate epochs.

    Epochs are counted in references per node: even epochs use the
    compute-heavy profile (almost all private traffic), odd epochs the
    communicate-heavy one (shared-dominated).  Both profiles share every
    region size — only probabilities differ — so the address-space layout
    and substream names are common and each node's streams simply continue
    across phase switches.  The abrupt swings in coherence traffic are what
    stress checkpoint timing: log pressure spikes in communicate epochs
    right after quiet compute epochs.
    """

    def __init__(self, compute_profile: WorkloadProfile,
                 communicate_profile: WorkloadProfile, *, epoch_length: int,
                 num_processors: int, block_bytes: int, seed: int) -> None:
        for attr in ("name", "private_blocks", "shared_blocks",
                     "lock_blocks", "migratory_records"):
            if getattr(compute_profile, attr) != getattr(communicate_profile,
                                                         attr):
                raise ValueError(
                    f"phase profiles must share {attr} (common layout and "
                    "substream names)")
        super().__init__(compute_profile, num_processors=num_processors,
                         block_bytes=block_bytes, seed=seed)
        self.compute_profile = compute_profile
        self.communicate_profile = communicate_profile
        self.epoch_length = int(epoch_length)
        #: References generated so far per node (epoch position).
        self._position: Dict[int, int] = {}

    def generate(self, node: int, num_references: int) -> List[Reference]:
        out: List[Reference] = []
        position = self._position.get(node, 0)
        remaining = num_references
        while remaining > 0:
            epoch, in_epoch = divmod(position, self.epoch_length)
            take = min(remaining, self.epoch_length - in_epoch)
            self.profile = (self.communicate_profile if epoch % 2
                            else self.compute_profile)
            out.extend(super().generate(node, take))
            position += take
            remaining -= take
        self._position[node] = position
        self.profile = self.compute_profile
        return out


@register_workload
class PhasedFamily(WorkloadFamily):
    """Alternating compute/communicate epochs (checkpoint-timing stress)."""

    name = "phased"
    description = "alternating compute and communicate epochs"
    order = 80
    defaults = {
        "epoch_length": 1500,               #: references per epoch, per node
        "compute_shared_fraction": 0.05,    #: sharing during compute epochs
        "communicate_shared_fraction": 0.6,  #: sharing during communicate
        "shared_blocks": 2048,
        "private_blocks": 4096,
        "shared_write_fraction": 0.3,
        "zipf_alpha": 1.2,
    }

    def check_params(self, params: Dict[str, Any]) -> None:
        _require(int(params["epoch_length"]) >= 1,
                 "epoch_length must be >= 1")
        _require(int(params["shared_blocks"]) >= 1,
                 "shared_blocks must be >= 1")
        _require(int(params["private_blocks"]) >= 1,
                 "private_blocks must be >= 1")
        _require(float(params["zipf_alpha"]) > 0.0,
                 "zipf_alpha must be positive")
        _require_fractions(params, "compute_shared_fraction",
                           "communicate_shared_fraction",
                           "shared_write_fraction")

    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]) -> PhasedWorkload:
        compute = WorkloadProfile(
            name=self.name,
            description=self.description,
            private_blocks=int(params["private_blocks"]),
            shared_blocks=int(params["shared_blocks"]),
            shared_fraction=float(params["compute_shared_fraction"]),
            shared_write_fraction=float(params["shared_write_fraction"]),
            private_write_fraction=0.3,
            shared_zipf_alpha=float(params["zipf_alpha"]),
            migratory_fraction=0.0,
            lock_fraction=0.0,
            sequential_run_probability=0.6,
            sequential_run_length=8,
        )
        communicate = replace(
            compute,
            shared_fraction=float(params["communicate_shared_fraction"]),
            sequential_run_probability=0.2)
        return PhasedWorkload(compute, communicate,
                              epoch_length=params["epoch_length"],
                              num_processors=num_processors,
                              block_bytes=block_bytes, seed=seed)


# ==================================================================== scaled
@register_workload
class ScaledFamily(WorkloadFamily):
    """Paper profiles with footprint and sharing degree derived from scale.

    The Table 3 profiles were sized for the paper's 16-node machine; run at
    64 nodes their fixed regions become trivially cache-resident per node.
    This family re-derives a base profile for the actual node count: with
    growth factor ``g = max(1, num_processors / baseline_processors)``, the
    globally shared region and migratory record set grow linearly with the
    machine (``x g``) while per-node structures — private working set, lock
    set — grow with ``sqrt(g)`` (same data, more contention per lock).
    At the baseline node count the derived profile equals the base profile
    (modulo the ``scaled-<base>`` stream namespace).
    """

    name = "scaled"
    description = "paper profile re-derived from the node count"
    order = 90
    defaults = {
        "base": "jbb",               #: paper profile to scale
        "baseline_processors": 16,   #: node count the base profile targets
    }

    def check_params(self, params: Dict[str, Any]) -> None:
        if params["base"] not in PAPER_PROFILES:
            raise ValueError(
                f"scaled base must be a paper profile "
                f"({', '.join(PAPER_PROFILES)}), got {params['base']!r}")
        _require(int(params["baseline_processors"]) >= 1,
                 "baseline_processors must be >= 1")

    @staticmethod
    def derive_profile(base: WorkloadProfile, *, num_processors: int,
                       baseline_processors: int) -> WorkloadProfile:
        grow = max(1.0, num_processors / baseline_processors)
        per_node = math.sqrt(grow)
        return replace(
            base,
            name=f"scaled-{base.name}",
            shared_blocks=math.ceil(base.shared_blocks * grow),
            migratory_records=math.ceil(base.migratory_records * grow),
            lock_blocks=math.ceil(base.lock_blocks * per_node),
            private_blocks=math.ceil(base.private_blocks * per_node),
        )

    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]) -> SyntheticWorkload:
        profile = self.derive_profile(
            PAPER_PROFILES[params["base"]], num_processors=num_processors,
            baseline_processors=int(params["baseline_processors"]))
        return SyntheticWorkload(profile, num_processors=num_processors,
                                 block_bytes=block_bytes, seed=seed)


# ===================================================================== mixed
class MixedWorkload:
    """Heterogeneous per-node assignment: node ranges run different families.

    Each slice's sub-generator is built for the *full* machine (so node
    numbering and per-node substreams line up) but only serves its node
    range; slice address spaces are disjoint (each shifted past the
    previous slice's footprint), so sharing happens within a slice, never
    accidentally across families.  Exposes the same surface as
    :class:`~repro.workloads.base.SyntheticWorkload`.
    """

    def __init__(self, parts: List[Tuple[str, Any, int, int]], *,
                 num_processors: int, block_bytes: int) -> None:
        #: (family name, generator, first node, node count) per slice.
        self.parts = parts
        self.num_processors = num_processors
        self.block_bytes = block_bytes
        self._offsets: List[int] = []
        offset = 0
        for _name, generator, _first, _count in parts:
            self._offsets.append(offset)
            offset += generator.footprint_blocks * block_bytes

    def _slice_for(self, node: int) -> Tuple[Any, int]:
        for (name, generator, first, count), offset in zip(self.parts,
                                                           self._offsets):
            if first <= node < first + count:
                return generator, offset
        raise ValueError(f"node {node} outside 0..{self.num_processors - 1}")

    @property
    def footprint_blocks(self) -> int:
        return sum(generator.footprint_blocks
                   for _n, generator, _f, _c in self.parts)

    def generate(self, node: int, num_references: int) -> List[Reference]:
        generator, offset = self._slice_for(node)
        if offset == 0:
            return generator.generate(node, num_references)
        return [(op, address + offset)
                for op, address in generator.generate(node, num_references)]

    def generate_all(self, references_per_processor: int
                     ) -> Dict[int, List[Reference]]:
        return {node: self.generate(node, references_per_processor)
                for node in range(self.num_processors)}

    def summary(self) -> Dict[str, object]:
        return {
            "name": "mixed",
            "description": MixedFamily.description,
            "processors": self.num_processors,
            "footprint_blocks": self.footprint_blocks,
            "slices": [{"family": name, "first_node": first, "nodes": count}
                       for name, _g, first, count in self.parts],
        }


@register_workload
class MixedFamily(WorkloadFamily):
    """Different workload families on different node ranges."""

    name = "mixed"
    description = "heterogeneous per-node assignment of other families"
    order = 100
    #: Each slice is ``[family]`` (even share of the machine) or
    #: ``[family, node_count]``; lists, not tuples, so the canonical JSON
    #: params encoding round-trips unchanged.
    defaults = {"slices": [["jbb"], ["hotspot"]]}

    def check_params(self, params: Dict[str, Any]) -> None:
        slices = params["slices"]
        _require(isinstance(slices, (list, tuple)) and len(slices) > 0,
                 "mixed slices must be a non-empty list")
        for entry in slices:
            _require(isinstance(entry, (list, tuple))
                     and len(entry) in (1, 2)
                     and isinstance(entry[0], str),
                     f"mixed slice must be [family] or [family, nodes], "
                     f"got {entry!r}")
            _require(entry[0] != self.name,
                     "mixed slices cannot nest the mixed family")
            try:
                get_family(entry[0])
            except KeyError as exc:
                raise ValueError(str(exc)) from None
            if len(entry) == 2:
                _require(int(entry[1]) >= 1,
                         f"slice node count must be >= 1, got {entry[1]!r}")

    @staticmethod
    def _slice_counts(slices, num_processors: int) -> List[int]:
        counts = [int(entry[1]) if len(entry) == 2 else 0 for entry in slices]
        explicit = sum(counts)
        flexible = counts.count(0)
        remaining = num_processors - explicit
        if remaining < flexible or (flexible == 0
                                    and explicit != num_processors):
            raise ValueError(
                f"mixed slices {slices!r} do not fit {num_processors} "
                "processors")
        for index, count in enumerate(counts):
            if count == 0:
                share = remaining // flexible + (1 if remaining % flexible
                                                 else 0)
                share = min(share, remaining - (flexible - 1))
                counts[index] = share
                remaining -= share
                flexible -= 1
        return counts

    def build(self, *, num_processors: int, block_bytes: int, seed: int,
              params: Dict[str, Any]) -> MixedWorkload:
        from repro.workloads.registry import make_workload

        slices = params["slices"]
        counts = self._slice_counts(slices, num_processors)
        parts: List[Tuple[str, Any, int, int]] = []
        first = 0
        for entry, count in zip(slices, counts):
            generator = make_workload(entry[0], num_processors=num_processors,
                                      block_bytes=block_bytes, seed=seed)
            parts.append((entry[0], generator, first, count))
            first += count
        return MixedWorkload(parts, num_processors=num_processors,
                             block_bytes=block_bytes)

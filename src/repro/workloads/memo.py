"""Content-keyed memo for generated workload reference streams.

Every run of a design point regenerates its reference streams from scratch,
yet the streams are a pure function of ``(family, canonical params, seed,
node count, block size, stream length)`` — a campaign that sweeps protocol
or routing axes re-derives byte-identical streams dozens of times.  This
module memoizes the frozen :class:`~repro.workloads.base.StreamArtifact`
per content key so a process running many related design points generates
each distinct stream once.

The memo is deliberately invisible to results: a hit returns an artifact
whose content is byte-identical to fresh generation (pinned by
``tests/test_precompute.py`` against the golden-digest streams), and hit /
miss tallies live in a module dict — never in a run's
:class:`~repro.sim.stats.StatsRegistry` — so reports stay byte-identical
with or without warm memos.  Capacity is bounded with LRU eviction;
eviction only costs regeneration time, never changes results.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, Mapping, Optional, Tuple

from repro.workloads.base import StreamArtifact
from repro.workloads.registry import get_family, make_workload

#: Maximum distinct stream artifacts kept warm (LRU beyond this).  Streams
#: are the large artifact (nodes x references tuples), so the cap keeps a
#: long multi-family campaign's footprint bounded.
STREAM_MEMO_CAPACITY = 64

#: Process-local hit/miss tallies (observational only, like
#: :data:`repro.campaign.executor.PERF_COUNTERS`).
MEMO_STATS: Dict[str, int] = {"stream_hits": 0, "stream_misses": 0}

_STREAM_MEMO: "OrderedDict[Tuple, StreamArtifact]" = OrderedDict()


def stream_key(name: str, *, num_processors: int, block_bytes: int,
               seed: int, params: Optional[Mapping[str, object]],
               references_per_processor: int) -> Tuple:
    """The content key a generated stream is memoized under.

    ``params`` is canonicalized through the family's
    ``validate_params`` (defaults merged, unknown keys rejected), so
    ``params=None`` and an explicit copy of the family defaults memoize to
    the same key — they generate the same stream.  Any change to family,
    canonical params, seed, node count, block size or stream length misses.
    """
    canonical = get_family(name).validate_params(params)
    params_json = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return (name, params_json, seed, num_processors, block_bytes,
            references_per_processor)


def shared_streams(name: str, *, num_processors: int, block_bytes: int,
                   seed: int, params: Optional[Mapping[str, object]],
                   references_per_processor: int) -> StreamArtifact:
    """The memoized stream artifact for one workload design point.

    On a miss the streams are generated exactly as a direct
    ``make_workload(...).generate_all(...)`` would have (same registry
    path, same RNG tree), then frozen and cached.
    """
    key = stream_key(name, num_processors=num_processors,
                     block_bytes=block_bytes, seed=seed, params=params,
                     references_per_processor=references_per_processor)
    artifact = _STREAM_MEMO.get(key)
    if artifact is not None:
        _STREAM_MEMO.move_to_end(key)
        MEMO_STATS["stream_hits"] += 1
        return artifact
    MEMO_STATS["stream_misses"] += 1
    workload = make_workload(name, num_processors=num_processors,
                             block_bytes=block_bytes, seed=seed, params=params)
    # Freeze from generate_all rather than SyntheticWorkload.freeze: the
    # registry may hand back any generator with the same duck-typed surface
    # (e.g. the heterogeneous MixedWorkload).
    streams = workload.generate_all(references_per_processor)
    artifact = StreamArtifact(
        workload=name,
        num_processors=num_processors,
        references_per_processor=references_per_processor,
        streams=tuple(tuple(streams[node]) for node in range(num_processors)))
    _STREAM_MEMO[key] = artifact
    while len(_STREAM_MEMO) > STREAM_MEMO_CAPACITY:
        _STREAM_MEMO.popitem(last=False)
    return artifact


def stream_memo_len() -> int:
    """Number of artifacts currently warm (tests / diagnostics)."""
    return len(_STREAM_MEMO)


def clear_stream_memo() -> None:
    """Drop every warm artifact and zero the tallies (tests / benchmarks)."""
    _STREAM_MEMO.clear()
    MEMO_STATS["stream_hits"] = 0
    MEMO_STATS["stream_misses"] = 0

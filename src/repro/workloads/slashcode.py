"""Dynamic web server (Slashcode) workload analogue.

The paper's dynamic web workload runs Slashcode 2.0 over Apache/mod_perl and
MySQL with 3 browsing/posting users per processor.  It mixes the static web
server's read-mostly page traffic with database behaviour closer to OLTP:

* a shared message/database cache with moderate skew,
* more stores than the static server (posts, session state, query caches),
* moderate lock contention in the database engine,
* migratory update of hot rows (story/comment counters).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadProfile

PROFILE = WorkloadProfile(
    name="slashcode",
    description="Slashcode-like dynamic web serving (Apache + MySQL analogue)",
    private_blocks=4096,
    shared_blocks=3072,
    shared_fraction=0.30,
    shared_write_fraction=0.15,
    private_write_fraction=0.30,
    shared_zipf_alpha=1.3,
    migratory_fraction=0.05,
    migratory_records=96,
    lock_fraction=0.03,
    lock_blocks=16,
    sequential_run_probability=0.45,
    sequential_run_length=6,
)

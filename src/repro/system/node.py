"""Per-node component bundles.

A node of the target system (Section 5.1) consists of a processor, two
levels of cache, and the protocol-specific machinery — a slice of the
shared memory and its directory for the directory system, a bus snooper
for the snooping system.  :class:`DirectoryNode` and :class:`SnoopingNode`
own those pieces for one node; the wiring between them is done by the
concrete :class:`repro.system.base.System` subclasses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.cache import CacheArray
from repro.coherence.directory.cache_controller import DirectoryCacheController
from repro.coherence.directory.directory_controller import DirectoryController
from repro.coherence.snooping.cache_controller import SnoopingCacheController
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache


@dataclass
class DirectoryNode:
    """All components of one node of the directory-protocol system."""

    node_id: int
    processor: BlockingProcessor
    l1: L1FilterCache
    l2_array: CacheArray
    cache_controller: DirectoryCacheController
    directory: DirectoryController

    def invariant_errors(self):
        """Structural invariant violations across the node's controllers."""
        errors = []
        errors.extend(self.cache_controller.invariant_errors())
        errors.extend(self.directory.invariant_errors())
        return errors


@dataclass
class SnoopingNode:
    """All components of one node of the snooping system."""

    node_id: int
    processor: BlockingProcessor
    l1: L1FilterCache
    l2_array: CacheArray
    cache_controller: SnoopingCacheController

    def invariant_errors(self):
        """Structural invariant violations of the node's cache controller."""
        return list(self.cache_controller.invariant_errors())

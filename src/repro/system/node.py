"""Per-node component bundle for the directory system.

A node of the target system (Section 5.1) consists of a processor, two
levels of cache, a slice of the shared memory and its directory, and a
network interface.  :class:`DirectoryNode` owns those pieces for one node;
the wiring between them is done by
:class:`repro.system.directory_system.DirectorySystem`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.cache import CacheArray
from repro.coherence.directory.cache_controller import DirectoryCacheController
from repro.coherence.directory.directory_controller import DirectoryController
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache


@dataclass
class DirectoryNode:
    """All components of one node of the directory-protocol system."""

    node_id: int
    processor: BlockingProcessor
    l1: L1FilterCache
    l2_array: CacheArray
    cache_controller: DirectoryCacheController
    directory: DirectoryController

    def invariant_errors(self):
        """Structural invariant violations across the node's controllers."""
        errors = []
        errors.extend(self.cache_controller.invariant_errors())
        errors.extend(self.directory.invariant_errors())
        return errors

"""Results of one simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import RecoveryRecord, SpeculationKind


@dataclass
class RunResult:
    """Everything an experiment needs from one completed simulation.

    ``runtime_cycles`` is the primary performance metric (lower is better);
    the paper's "normalized performance" for a configuration is
    ``baseline.runtime_cycles / this.runtime_cycles``.
    """

    workload: str
    config_label: str
    runtime_cycles: int
    references_completed: int
    instructions_retired: int
    finished: bool
    #: Mis-speculation / recovery accounting.
    detections: int = 0
    recoveries: int = 0
    recoveries_by_kind: Dict[str, int] = field(default_factory=dict)
    recovery_records: List[RecoveryRecord] = field(default_factory=list)
    #: Interconnect measurements.
    messages_delivered: int = 0
    mean_message_latency: float = 0.0
    mean_link_utilization: float = 0.0
    peak_link_utilization: float = 0.0
    reorder_rate_overall: float = 0.0
    reorder_rate_by_vnet: Dict[str, float] = field(default_factory=dict)
    #: Cache behaviour.
    l2_misses: int = 0
    l2_hits: int = 0
    #: SafetyNet behaviour.
    checkpoints_taken: int = 0
    peak_log_entries: int = 0
    #: Raw counter dump (prefix-filtered views are cheap to build from this).
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ derived
    @property
    def l2_miss_rate(self) -> float:
        total = self.l2_misses + self.l2_hits
        return self.l2_misses / total if total else 0.0

    @property
    def cycles_per_reference(self) -> float:
        if self.references_completed == 0:
            return 0.0
        return self.runtime_cycles / self.references_completed

    def normalized_to(self, baseline: "RunResult") -> float:
        """Normalized performance relative to a baseline run (1.0 = equal)."""
        if self.runtime_cycles <= 0:
            return 0.0
        return baseline.runtime_cycles / self.runtime_cycles

    def recoveries_of(self, kind: SpeculationKind) -> int:
        return self.recoveries_by_kind.get(kind.value, 0)

    def summary_line(self) -> str:
        """One-line human readable summary (used by example scripts)."""
        return (f"{self.workload:>10s} [{self.config_label}] "
                f"runtime={self.runtime_cycles} cycles, "
                f"refs={self.references_completed}, "
                f"L2 miss rate={self.l2_miss_rate:.3f}, "
                f"recoveries={self.recoveries}, "
                f"link util={self.mean_link_utilization:.2%}")

"""Results of one simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List

from repro.core.events import RecoveryRecord, SpeculationKind

#: Schema tag embedded in every serialized result; consumers (the result
#: cache, the runner's ``--json`` report) check it before trusting a payload.
#: v2: ``detections_by_kind`` added — v1 cache entries would deserialize
#: with it silently empty while fresh runs populate it, so they are
#: rejected (the result cache treats the rejection as a miss and
#: re-simulates).
RESULT_SCHEMA = "repro.system.results/v2"


@dataclass
class RunResult:
    """Everything an experiment needs from one completed simulation.

    ``runtime_cycles`` is the primary performance metric (lower is better);
    the paper's "normalized performance" for a configuration is
    ``baseline.runtime_cycles / this.runtime_cycles``.
    """

    workload: str
    config_label: str
    runtime_cycles: int
    references_completed: int
    instructions_retired: int
    finished: bool
    #: Mis-speculation / recovery accounting.  The ``*_by_kind`` maps are
    #: keyed by :class:`SpeculationKind` values (the speculation-registry
    #: names) and survive the JSON round-trip unchanged.
    detections: int = 0
    recoveries: int = 0
    detections_by_kind: Dict[str, int] = field(default_factory=dict)
    recoveries_by_kind: Dict[str, int] = field(default_factory=dict)
    recovery_records: List[RecoveryRecord] = field(default_factory=list)
    #: Interconnect measurements.
    messages_delivered: int = 0
    mean_message_latency: float = 0.0
    mean_link_utilization: float = 0.0
    peak_link_utilization: float = 0.0
    reorder_rate_overall: float = 0.0
    reorder_rate_by_vnet: Dict[str, float] = field(default_factory=dict)
    #: Cache behaviour.
    l2_misses: int = 0
    l2_hits: int = 0
    #: SafetyNet behaviour.
    checkpoints_taken: int = 0
    peak_log_entries: int = 0
    #: Simulation-kernel events executed by the run.  Deterministic (unlike
    #: wall-clock), so it can appear in byte-compared reports; the
    #: ``topology_scale`` experiment derives its events-per-simulated-second
    #: throughput metric from it.
    events_executed: int = 0
    #: Raw counter dump (prefix-filtered views are cheap to build from this).
    counters: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ derived
    @property
    def l2_miss_rate(self) -> float:
        total = self.l2_misses + self.l2_hits
        return self.l2_misses / total if total else 0.0

    @property
    def cycles_per_reference(self) -> float:
        if self.references_completed == 0:
            return 0.0
        return self.runtime_cycles / self.references_completed

    def normalized_to(self, baseline: "RunResult") -> float:
        """Normalized performance relative to a baseline run (1.0 = equal)."""
        if self.runtime_cycles <= 0:
            return 0.0
        return baseline.runtime_cycles / self.runtime_cycles

    def recoveries_of(self, kind: SpeculationKind) -> int:
        return self.recoveries_by_kind.get(kind.value, 0)

    def detections_of(self, kind: SpeculationKind) -> int:
        return self.detections_by_kind.get(kind.value, 0)

    # -------------------------------------------------------------- serialization
    def to_json(self) -> Dict[str, Any]:
        """JSON-safe payload; :meth:`from_json` is the exact inverse.

        The payload is pure data (ints, floats, strings, dicts), so
        ``json.dumps(result.to_json(), sort_keys=True)`` is a canonical,
        byte-comparable encoding of a run — the determinism tests and the
        executor result cache rely on that.
        """
        payload: Dict[str, Any] = {"schema": RESULT_SCHEMA}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "recovery_records":
                value = [record.to_json() for record in value]
            elif spec.name in ("detections_by_kind", "recoveries_by_kind",
                               "reorder_rate_by_vnet", "counters"):
                value = dict(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_json` output."""
        schema = payload.get("schema", RESULT_SCHEMA)
        if schema != RESULT_SCHEMA:
            raise ValueError(f"unsupported result schema {schema!r}")
        kwargs: Dict[str, Any] = {}
        for spec in fields(cls):
            if spec.name not in payload:
                continue
            value = payload[spec.name]
            if spec.name == "recovery_records":
                value = [RecoveryRecord.from_json(record) for record in value]
            kwargs[spec.name] = value
        return cls(**kwargs)

    def summary_line(self) -> str:
        """One-line human readable summary (used by example scripts).

        Recoveries are broken down per speculation kind when any happened,
        e.g. ``recoveries=3 (injected=2, interconnect-deadlock=1)`` — kinds
        sorted by name for stable output.
        """
        recoveries = f"recoveries={self.recoveries}"
        by_kind = {k: v for k, v in sorted(self.recoveries_by_kind.items()) if v}
        if by_kind:
            detail = ", ".join(f"{kind}={count}" for kind, count in by_kind.items())
            recoveries += f" ({detail})"
        return (f"{self.workload:>10s} [{self.config_label}] "
                f"runtime={self.runtime_cycles} cycles, "
                f"refs={self.references_completed}, "
                f"L2 miss rate={self.l2_miss_rate:.3f}, "
                f"{recoveries}, "
                f"link util={self.mean_link_utilization:.2%}")

"""The directory-protocol multiprocessor (16 nodes in the paper).

This is the target system of Sections 3.1, 4 and 5: a MOSI directory
protocol over a configurable interconnect (the paper's 2D torus by default;
any registered topology and node count via ``TopologyConfig``), with
SafetyNet recovery and the speculation layer wired in.  Depending on the
configuration it realises several of the paper's design points:

* ``variant=FULL`` + virtual channels + static routing — the conventional,
  fully designed baseline;
* ``variant=SPECULATIVE`` + adaptive routing — the Section 3.1 design that
  speculates on point-to-point ordering (the ``directory-p2p-order``
  speculation);
* ``interconnect.speculative_no_vc=True`` (or the
  ``interconnect_no_vc_speculation`` flag) — the Section 4 design that
  removes virtual-channel deadlock avoidance and recovers from deadlocks
  detected by transaction timeouts (the ``interconnect-deadlock``
  speculation);
* with the ``injected`` speculation attached via
  :meth:`~repro.system.base.System.attach_recovery_injector` — the
  Figure 4 stress test.

Which speculations arm is decided by the registry-backed
:class:`repro.sim.config.SpeculationConfig` (see
:meth:`repro.speculation.manager.SpeculationManager.arm`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro import kernel
from repro.coherence.cache import CacheArray, CacheLine
from repro.coherence.common import MemoryOp, Transaction, home_node
from repro.coherence.directory.cache_controller import DirectoryCacheController
from repro.coherence.directory.messages import CoherencePayload
from repro.coherence.directory.directory_controller import DirectoryController
from repro.coherence.directory.states import CacheState, DirectoryState
from repro.interconnect.message import (MessageClass, NetworkMessage,
                                         VirtualNetwork)
from repro.interconnect.network import InterconnectNetwork
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache, L1State
from repro.safetynet.manager import SafetyNet
from repro.sim.config import ProtocolKind, SystemConfig
from repro.system.base import System
from repro.system.node import DirectoryNode


class DirectorySystem(System):
    """A runnable directory-protocol multiprocessor."""

    kind = ProtocolKind.DIRECTORY

    # ------------------------------------------------------------------- build
    @staticmethod
    def _default_label(config: SystemConfig) -> str:
        parts = [config.variant.value, config.interconnect.routing.value]
        if (config.interconnect.speculative_no_vc
                or config.speculation.interconnect_no_vc_speculation):
            parts.append("no-vc")
        return "-".join(parts)

    def _build_fabric(self) -> None:
        self.network = InterconnectNetwork(
            self.sim, self.effective_interconnect(),
            frequency_hz=self.config.processor.frequency_hz,
            rng=self.rng.spawn("network"), stats=self.stats)

    def _build_safetynet(self) -> SafetyNet:
        return SafetyNet(
            self.sim, self.config.checkpoint,
            num_nodes=self.config.num_processors,
            interval_cycles=self.config.checkpoint.directory_interval_cycles,
            stats=self.stats)

    def checkpoint_interval_cycles(self) -> int:
        return self.config.checkpoint.directory_interval_cycles

    def _home(self, address: int) -> int:
        return home_node(address, self.config.num_processors, self.config.block_bytes)

    def _make_send(self, src: int) -> Callable:
        # Hot path: one call per protocol message.  The sizes and the
        # network's send method are fixed once the system is built, so the
        # closure binds them instead of re-deriving size via make_message.
        icfg = self.config.interconnect
        data_bytes = icfg.data_message_bytes
        ctrl_bytes = icfg.control_message_bytes
        network_send = self.network.send

        data = MessageClass.DATA
        writeback = MessageClass.WRITEBACK

        def send(dst: int, msg_class: MessageClass, address: int, payload) -> None:
            size = (data_bytes if (msg_class is data or msg_class is writeback)
                    else ctrl_bytes)
            network_send(NetworkMessage(src, dst, msg_class, size,
                                        payload, address))
        return send

    def _build_nodes(self) -> None:
        cfg = self.config
        for node_id in range(cfg.num_processors):
            l2_array: CacheArray = CacheArray(f"l2.{node_id}", cfg.l2, CacheState.INVALID)
            send = self._make_send(node_id)
            cache_ctrl = DirectoryCacheController(
                node_id, self.sim, cfg, l2_array, send, self._home,
                misspeculation_reporter=self.speculation.report, stats=self.stats)
            cache_ctrl.may_issue = self.slow_start_gate.may_issue
            cache_ctrl.on_retire = self.slow_start_gate.retired
            directory = DirectoryController(node_id, self.sim, cfg, send, stats=self.stats)
            l1 = L1FilterCache(f"l1.{node_id}", cfg.l1)
            processor = BlockingProcessor(
                node_id, self.sim, cfg, [], l1=l1,
                rng=self.rng.spawn(f"proc{node_id}"), stats=self.stats)
            processor.l2_access = cache_ctrl.access
            processor.l2_state_of = l2_array.get_state
            processor.set_store_value_hook(
                lambda addr, val, arr=l2_array: (
                    arr.set_value(addr, val) if arr.contains(addr) else None))

            # SafetyNet wiring: undo logging + restore + squash + rollback.
            l2_array.set_observer(self.safetynet.register_store(
                f"l2.{node_id}", node_id, l2_array.restore_field))
            directory.set_observer(self.safetynet.register_store(
                f"dir.{node_id}", node_id, directory.restore_entry))
            self.safetynet.register_participant(processor)
            self.safetynet.add_squash_hook(cache_ctrl.squash_transient_state)
            self.safetynet.add_squash_hook(directory.squash_transient_state)

            # Network attachment: dispatch by message class.
            self.network.attach(node_id, self._make_receiver(cache_ctrl, directory))
            self.nodes.append(DirectoryNode(
                node_id=node_id, processor=processor, l1=l1, l2_array=l2_array,
                cache_controller=cache_ctrl, directory=directory))

        self.safetynet.add_squash_hook(self.network.flush)
        self.safetynet.add_squash_hook(
            lambda: self.slow_start_gate.reset_outstanding())
        # Runs after the undo log has been replayed (hooks run in order):
        # reconcile directory entries with the restored cache states so the
        # recovery point is a protocol-consistent cut (see method docstring).
        self.safetynet.add_squash_hook(self._reconcile_after_recovery)

    @staticmethod
    def _make_receiver(cache_ctrl: DirectoryCacheController,
                       directory: DirectoryController) -> Callable:
        # One call per delivered message: bind the handlers and dispatch on
        # the precomputed ``vnet`` slot by member identity.
        dir_handle = directory.handle_message
        cache_handle = cache_ctrl.handle_message
        request = VirtualNetwork.REQUEST
        final_ack = VirtualNetwork.FINAL_ACK

        def receive(message) -> None:
            vnet = message.vnet
            if vnet is request or vnet is final_ack:
                dir_handle(message)
            else:
                cache_handle(message)
        return receive

    def _install_compiled_fast_paths(self) -> None:
        # Rebind the protocol message path onto the compiled cores: the
        # processor issue loop, the send closure and the receive dispatch.
        # Each core is a byte-identical port of the pure code above, which
        # remains the single source of truth (and handles every cold path).
        impl = kernel.engine_impl()
        if (impl is None or not hasattr(impl, "ProcessorCore")
                or not hasattr(impl, "TransactionCore")):
            return
        if not isinstance(self.sim, impl.Simulator):
            return
        network = self.network
        cfg = self.config
        icfg = cfg.interconnect
        for node in self.nodes:
            processor = node.processor
            proc_core = None
            if processor.l1 is not None:
                proc_core = impl.ProcessorCore(
                    processor, node.l2_array, MemoryOp.STORE,
                    CacheState.INVALID, (CacheState.MODIFIED,))
                processor._issue_next = proc_core
            send = impl.MessageSendCore(
                network, node.node_id, NetworkMessage, MessageClass.DATA,
                MessageClass.WRITEBACK, icfg.data_message_bytes,
                icfg.control_message_bytes)
            node.cache_controller.send = send
            node.directory.send = send
            # Transaction path: the controller's access() plus the DATA/ACK
            # handlers (built after the send rebind so the core captures the
            # compiled send).  The handler-dict entries give C-to-C dispatch
            # from the receive core; every other message class stays pure.
            txn_core = impl.TransactionCore(
                node.cache_controller, cfg.num_processors, cfg.block_bytes,
                MemoryOp.LOAD, MemoryOp.STORE, CacheState.INVALID,
                CacheState.SHARED, CacheState.MODIFIED,
                MessageClass.REQUEST_READ_ONLY,
                MessageClass.REQUEST_READ_WRITE, MessageClass.FINAL_ACK,
                CoherencePayload, Transaction, CacheLine)
            node.cache_controller._txn_core = txn_core
            node.cache_controller._handlers[MessageClass.DATA] = \
                txn_core.handle_data
            node.cache_controller._handlers[MessageClass.ACK] = \
                txn_core.handle_ack
            processor.l2_access = txn_core.access
            if proc_core is not None:
                processor._memory_complete = impl.MemoryCompleteCore(
                    processor, proc_core, L1State.VALID, CacheLine)
            network._endpoints[node.node_id].receive = impl.DirectoryReceiveCore(
                node.cache_controller, node.directory,
                VirtualNetwork.REQUEST, VirtualNetwork.FINAL_ACK,
                MessageClass.REQUEST_READ_ONLY, MessageClass.REQUEST_READ_WRITE,
                MessageClass.WRITEBACK, MessageClass.FINAL_ACK)

    # --------------------------------------------------------------------- run
    def _default_max_cycles(self) -> int:
        cfg = self.config
        per_ref_bound = 4 * (cfg.memory_latency_cycles
                             + 8 * cfg.interconnect.link_latency_cycles
                             + 100)
        return max(1_000_000, cfg.workload.references_per_processor * per_ref_bound)

    # ----------------------------------------------------------------- results
    def _network_metrics(self, runtime: int) -> Dict[str, object]:
        ordering = self.network.ordering
        return {
            "messages_delivered": self.network.messages_delivered,
            "mean_message_latency": self.network.mean_message_latency(),
            "mean_link_utilization": self.network.mean_link_utilization(runtime),
            "peak_link_utilization": self.network.peak_link_utilization(runtime),
            "reorder_rate_overall": ordering.reorder_rate(),
            "reorder_rate_by_vnet": {vn.name: ordering.reorder_rate(vn)
                                     for vn in VirtualNetwork},
        }

    # ---------------------------------------------------------------- recovery
    def _reconcile_after_recovery(self) -> None:
        """Make directory entries consistent with the restored cache states.

        SafetyNet's hardware implementation coordinates checkpoints in
        logical time so that every checkpoint is a *consistent cut* of the
        protocol state.  This model logs each component independently, so a
        checkpoint taken while an ownership transfer was in flight can
        restore a directory entry that names an owner whose (also restored)
        cache no longer holds the block — which would wedge re-execution.
        This pass recomputes each entry's owner/sharers/state from the
        restored cache contents, which is exactly the state a consistent cut
        would have captured.  It runs inside the recovery (after the undo
        replay) and is not itself logged.
        """
        # This pass runs on every recovery of every Figure 4 run, over every
        # resident line of every node, so it iterates the cache sets
        # directly (no generator chain) and classifies each address's
        # holders in a single sweep.
        modified = CacheState.MODIFIED
        owned = CacheState.OWNED
        shared = CacheState.SHARED
        nodes = self.nodes
        copies: Dict[int, List] = {}
        for node in nodes:
            node_id = node.node_id
            # filter(None, ...) skips the (vast majority of) empty sets at C
            # speed; the Python-level loop only sees occupied ones.
            for cache_set in filter(None, node.l2_array._sets):
                for address, line in cache_set.items():
                    holders = copies.get(address)
                    if holders is None:
                        holders = copies[address] = []
                    holders.append((node_id, line.state))
        every_address = set(copies)
        for node in nodes:
            every_address.update(node.directory.entries.keys())
        num_processors = self.config.num_processors
        block_bytes = self.config.block_bytes
        for address in every_address:
            home = nodes[home_node(address, num_processors,
                                   block_bytes)].directory
            entry = home.entry(address)
            owner = None
            extra_owners = None
            sharers = set()
            for n, s in copies.get(address, ()):
                if s is modified or s is owned:
                    if owner is None:
                        owner = n
                    elif extra_owners is None:
                        extra_owners = [n]
                    else:
                        extra_owners.append(n)
                elif s is shared:
                    sharers.add(n)
            if owner is not None:
                # A cut can never legitimately produce two owners, but be
                # defensive: demote extras to sharers.
                if extra_owners is not None:
                    for extra in extra_owners:
                        nodes[extra].l2_array.force_line(
                            address, shared,
                            nodes[extra].l2_array.peek(address).value)
                        sharers.add(extra)
                entry.owner = owner
                entry.state = DirectoryState.OWNED
                sharers.discard(owner)
                entry.sharers = sharers
            else:
                entry.owner = None
                entry.sharers = sharers
                entry.state = (DirectoryState.SHARED if sharers
                               else DirectoryState.UNCACHED)

    # ------------------------------------------------------------------ checks
    def invariant_errors(self) -> List[str]:
        """Coherence invariant violations across the whole system.

        Checks the single-writer / multiple-reader (SWMR) invariant and the
        consistency between directory entries and cache states.  Empty when
        the system is healthy; property-based tests assert exactly that.
        """
        errors: List[str] = []
        owners: Dict[int, List[int]] = {}
        for node in self.nodes:
            errors.extend(node.invariant_errors())
            for line in node.l2_array.lines():
                if line.state in (CacheState.MODIFIED, CacheState.OWNED):
                    owners.setdefault(line.address, []).append(node.node_id)
                if line.state == CacheState.MODIFIED:
                    for other in self.nodes:
                        if other.node_id == node.node_id:
                            continue
                        other_line = other.l2_array.peek(line.address)
                        if other_line is not None and other_line.state != CacheState.INVALID:
                            errors.append(
                                f"block {line.address:#x}: M at node {node.node_id} "
                                f"but {other_line.state.value} at node {other.node_id}")
        for address, holders in owners.items():
            if len(holders) > 1:
                errors.append(f"block {address:#x}: multiple owners {holders}")
        return errors

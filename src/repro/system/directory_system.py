"""The directory-protocol multiprocessor (16 nodes in the paper).

This is the target system of Sections 3.1, 4 and 5: a MOSI directory
protocol over a configurable interconnect (the paper's 2D torus by default;
any registered topology and node count via ``TopologyConfig``), with
SafetyNet recovery and the
speculation-for-simplicity framework wired in.  Depending on the
configuration it realises several of the paper's design points:

* ``variant=FULL`` + virtual channels + static routing — the conventional,
  fully designed baseline;
* ``variant=SPECULATIVE`` + adaptive routing — the Section 3.1 design that
  speculates on point-to-point ordering;
* ``interconnect.speculative_no_vc=True`` — the Section 4 design that
  removes virtual-channel deadlock avoidance and recovers from deadlocks
  detected by transaction timeouts;
* with a :class:`repro.core.detection.RecoveryRateInjector` attached — the
  Figure 4 stress test.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.coherence.cache import CacheArray
from repro.coherence.common import home_node
from repro.coherence.directory.cache_controller import DirectoryCacheController
from repro.coherence.directory.directory_controller import DirectoryController
from repro.coherence.directory.states import CacheState, DirectoryState
from repro.core.detection import RecoveryRateInjector, transaction_timeout_cycles
from repro.core.events import SpeculationKind
from repro.core.forward_progress import (
    CombinedPolicy,
    DisableAdaptiveRoutingPolicy,
    NoOpPolicy,
    SlowStartGate,
    SlowStartPolicy,
)
from repro.core.framework import SpeculationFramework
from repro.interconnect.message import MessageClass, VirtualNetwork
from repro.interconnect.network import InterconnectNetwork, make_message
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache
from repro.safetynet.manager import SafetyNet
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry
from repro.system.node import DirectoryNode
from repro.system.results import RunResult
from repro.workloads import make_workload
from repro.workloads.base import SyntheticWorkload


class DirectorySystem:
    """A runnable directory-protocol multiprocessor."""

    def __init__(self, config: SystemConfig, *, label: Optional[str] = None) -> None:
        self.config = config
        self.label = label if label is not None else self._default_label(config)
        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.rng = DeterministicRng(config.workload.seed)
        self.network = InterconnectNetwork(
            self.sim, config.interconnect,
            frequency_hz=config.processor.frequency_hz,
            rng=self.rng.spawn("network"), stats=self.stats)
        self.safetynet = SafetyNet(
            self.sim, config.checkpoint, num_nodes=config.num_processors,
            interval_cycles=config.checkpoint.directory_interval_cycles,
            stats=self.stats)
        self.framework = SpeculationFramework(self.sim, self.safetynet, stats=self.stats)
        self.slow_start_gate = SlowStartGate(self.sim)
        self.nodes: List[DirectoryNode] = []
        self.injector: Optional[RecoveryRateInjector] = None
        self._finished_processors = 0
        self._build_nodes()
        self._configure_policies()

    # ------------------------------------------------------------------- build
    @staticmethod
    def _default_label(config: SystemConfig) -> str:
        parts = [config.variant.value, config.interconnect.routing.value]
        if config.interconnect.speculative_no_vc:
            parts.append("no-vc")
        return "-".join(parts)

    def _home(self, address: int) -> int:
        return home_node(address, self.config.num_processors, self.config.block_bytes)

    def _make_send(self, src: int) -> Callable:
        def send(dst: int, msg_class: MessageClass, address: int, payload) -> None:
            message = make_message(src, dst, msg_class, address=address,
                                   payload=payload, config=self.config.interconnect)
            self.network.send(message)
        return send

    def _build_nodes(self) -> None:
        cfg = self.config
        timeout = transaction_timeout_cycles(cfg.checkpoint, cfg.speculation)
        for node_id in range(cfg.num_processors):
            l2_array: CacheArray = CacheArray(f"l2.{node_id}", cfg.l2, CacheState.INVALID)
            send = self._make_send(node_id)
            cache_ctrl = DirectoryCacheController(
                node_id, self.sim, cfg, l2_array, send, self._home,
                misspeculation_reporter=self.framework.report, stats=self.stats)
            cache_ctrl.may_issue = self.slow_start_gate.may_issue
            cache_ctrl.on_retire = self.slow_start_gate.retired
            cache_ctrl.timeout_cycles = timeout
            directory = DirectoryController(node_id, self.sim, cfg, send, stats=self.stats)
            l1 = L1FilterCache(f"l1.{node_id}", cfg.l1)
            processor = BlockingProcessor(
                node_id, self.sim, cfg, [], l1=l1,
                rng=self.rng.spawn(f"proc{node_id}"), stats=self.stats)
            processor.l2_access = cache_ctrl.access
            processor.l2_state_of = l2_array.get_state
            processor.set_store_value_hook(
                lambda addr, val, arr=l2_array: (
                    arr.set_value(addr, val) if arr.contains(addr) else None))

            # SafetyNet wiring: undo logging + restore + squash + rollback.
            l2_array.set_observer(self.safetynet.register_store(
                f"l2.{node_id}", node_id, l2_array.restore_field))
            directory.set_observer(self.safetynet.register_store(
                f"dir.{node_id}", node_id, directory.restore_entry))
            self.safetynet.register_participant(processor)
            self.safetynet.add_squash_hook(cache_ctrl.squash_transient_state)
            self.safetynet.add_squash_hook(directory.squash_transient_state)

            # Network attachment: dispatch by message class.
            self.network.attach(node_id, self._make_receiver(cache_ctrl, directory))
            self.nodes.append(DirectoryNode(
                node_id=node_id, processor=processor, l1=l1, l2_array=l2_array,
                cache_controller=cache_ctrl, directory=directory))

        self.safetynet.add_squash_hook(self.network.flush)
        self.safetynet.add_squash_hook(
            lambda: self.slow_start_gate.reset_outstanding())
        # Runs after the undo log has been replayed (hooks run in order):
        # reconcile directory entries with the restored cache states so the
        # recovery point is a protocol-consistent cut (see method docstring).
        self.safetynet.add_squash_hook(self._reconcile_after_recovery)

    @staticmethod
    def _make_receiver(cache_ctrl: DirectoryCacheController,
                       directory: DirectoryController) -> Callable:
        def receive(message) -> None:
            vnet = message.virtual_network
            if vnet in (VirtualNetwork.REQUEST, VirtualNetwork.FINAL_ACK):
                directory.handle_message(message)
            else:
                cache_ctrl.handle_message(message)
        return receive

    def _configure_policies(self) -> None:
        spec = self.config.speculation
        self.framework.set_policy(
            SpeculationKind.DIRECTORY_P2P_ORDER,
            DisableAdaptiveRoutingPolicy(
                self.network.disable_adaptive_routing,
                spec.adaptive_routing_disable_cycles))
        self.framework.set_policy(
            SpeculationKind.INTERCONNECT_DEADLOCK,
            CombinedPolicy(
                self.sim,
                SlowStartPolicy(self.slow_start_gate,
                                max_outstanding=spec.slow_start_max_outstanding,
                                duration_cycles=spec.slow_start_cycles),
                free_retries=1,
                window_cycles=max(spec.slow_start_cycles,
                                  4 * self.config.checkpoint.directory_interval_cycles)))
        self.framework.set_policy(SpeculationKind.INJECTED, NoOpPolicy())

    # ----------------------------------------------------------------- injector
    def attach_recovery_injector(self, rate_per_second: float) -> RecoveryRateInjector:
        """Attach the Figure 4 stress-test injector (call before :meth:`run`)."""
        self.injector = RecoveryRateInjector(
            self.sim, self.framework.report,
            rate_per_second=rate_per_second,
            cycles_per_second=self.config.cycles_per_second)
        return self.injector

    # --------------------------------------------------------------------- run
    def load_workload(self, workload: Optional[SyntheticWorkload] = None) -> None:
        """Generate and install per-processor reference streams."""
        cfg = self.config
        if workload is None:
            workload = make_workload(cfg.workload.name,
                                     num_processors=cfg.num_processors,
                                     block_bytes=cfg.block_bytes,
                                     seed=cfg.workload.seed)
        streams = workload.generate_all(cfg.workload.references_per_processor)
        for node in self.nodes:
            node.processor.references = list(streams[node.node_id])

    def run(self, *, workload: Optional[SyntheticWorkload] = None,
            max_cycles: Optional[int] = None) -> RunResult:
        """Run the workload to completion and collect results."""
        self.load_workload(workload)
        self.safetynet.start()
        if self.injector is not None:
            self.injector.start()
        self._finished_processors = 0

        def on_finished(_node: int) -> None:
            self._finished_processors += 1
            if all(n.processor.finished_at is not None for n in self.nodes):
                self.sim.stop()

        for node in self.nodes:
            node.processor.start(on_finished)

        limit = max_cycles if max_cycles is not None else self._default_max_cycles()
        self.sim.run(until=limit)
        finished = all(n.processor.finished_at is not None for n in self.nodes)
        return self._collect_results(finished)

    def _default_max_cycles(self) -> int:
        cfg = self.config
        per_ref_bound = 4 * (cfg.memory_latency_cycles
                             + 8 * cfg.interconnect.link_latency_cycles
                             + 100)
        return max(1_000_000, cfg.workload.references_per_processor * per_ref_bound)

    # ----------------------------------------------------------------- results
    def _collect_results(self, finished: bool) -> RunResult:
        runtime = max((n.processor.finished_at or self.sim.now) for n in self.nodes)
        refs = sum(n.processor.references_completed for n in self.nodes)
        instructions = sum(n.processor.retired_instructions for n in self.nodes)
        l2_hits = sum(n.l2_array.hits for n in self.nodes)
        l2_misses = sum(n.l2_array.misses for n in self.nodes)
        ordering = self.network.ordering
        reorder_by_vnet = {vn.name: ordering.reorder_rate(vn) for vn in VirtualNetwork}
        fs = self.framework.framework_stats
        return RunResult(
            workload=self.config.workload.name,
            config_label=self.label,
            runtime_cycles=runtime,
            references_completed=refs,
            instructions_retired=instructions,
            finished=finished,
            detections=fs.detections,
            recoveries=fs.recoveries,
            recoveries_by_kind={k.value: v for k, v in fs.recoveries_by_kind.items()},
            recovery_records=list(self.framework.records),
            messages_delivered=self.network.messages_delivered,
            mean_message_latency=self.network.mean_message_latency(),
            mean_link_utilization=self.network.mean_link_utilization(runtime),
            peak_link_utilization=self.network.peak_link_utilization(runtime),
            reorder_rate_overall=ordering.reorder_rate(),
            reorder_rate_by_vnet=reorder_by_vnet,
            l2_misses=l2_misses,
            l2_hits=l2_hits,
            checkpoints_taken=self.safetynet.checkpoints_taken,
            peak_log_entries=self.safetynet.peak_log_occupancy_entries(),
            events_executed=self.sim.events_executed,
            counters=self.stats.counters(),
        )

    # ---------------------------------------------------------------- recovery
    def _reconcile_after_recovery(self) -> None:
        """Make directory entries consistent with the restored cache states.

        SafetyNet's hardware implementation coordinates checkpoints in
        logical time so that every checkpoint is a *consistent cut* of the
        protocol state.  This model logs each component independently, so a
        checkpoint taken while an ownership transfer was in flight can
        restore a directory entry that names an owner whose (also restored)
        cache no longer holds the block — which would wedge re-execution.
        This pass recomputes each entry's owner/sharers/state from the
        restored cache contents, which is exactly the state a consistent cut
        would have captured.  It runs inside the recovery (after the undo
        replay) and is not itself logged.
        """
        copies: Dict[int, List] = {}
        for node in self.nodes:
            for line in node.l2_array.lines():
                copies.setdefault(line.address, []).append((node.node_id, line.state))
        every_address = set(copies)
        for node in self.nodes:
            every_address.update(node.directory.entries.keys())
        for address in every_address:
            home = self.nodes[self._home(address)].directory
            entry = home.entry(address)
            holders = copies.get(address, [])
            owners = [n for n, s in holders
                      if s in (CacheState.MODIFIED, CacheState.OWNED)]
            sharers = {n for n, s in holders if s == CacheState.SHARED}
            if owners:
                owner = owners[0]
                # A cut can never legitimately produce two owners, but be
                # defensive: demote extras to sharers.
                for extra in owners[1:]:
                    self.nodes[extra].l2_array.force_line(
                        address, CacheState.SHARED,
                        self.nodes[extra].l2_array.peek(address).value)
                    sharers.add(extra)
                entry.owner = owner
                entry.state = DirectoryState.OWNED
                entry.sharers = sharers - {owner}
            else:
                entry.owner = None
                entry.sharers = sharers
                entry.state = (DirectoryState.SHARED if sharers
                               else DirectoryState.UNCACHED)

    # ------------------------------------------------------------------ checks
    def invariant_errors(self) -> List[str]:
        """Coherence invariant violations across the whole system.

        Checks the single-writer / multiple-reader (SWMR) invariant and the
        consistency between directory entries and cache states.  Empty when
        the system is healthy; property-based tests assert exactly that.
        """
        errors: List[str] = []
        owners: Dict[int, List[int]] = {}
        for node in self.nodes:
            errors.extend(node.invariant_errors())
            for line in node.l2_array.lines():
                if line.state in (CacheState.MODIFIED, CacheState.OWNED):
                    owners.setdefault(line.address, []).append(node.node_id)
                if line.state == CacheState.MODIFIED:
                    for other in self.nodes:
                        if other.node_id == node.node_id:
                            continue
                        other_line = other.l2_array.peek(line.address)
                        if other_line is not None and other_line.state != CacheState.INVALID:
                            errors.append(
                                f"block {line.address:#x}: M at node {node.node_id} "
                                f"but {other_line.state.value} at node {other.node_id}")
        for address, holders in owners.items():
            if len(holders) > 1:
                errors.append(f"block {address:#x}: multiple owners {holders}")
        return errors

"""The broadcast snooping multiprocessor (Section 3.2 target system).

A 16-node system whose coherence requests are broadcast on a totally ordered
address network and whose data moves point-to-point.  SafetyNet uses the
request count as its logical time base (Table 2: a checkpoint every 3,000
requests).  The ``SPECULATIVE`` variant leaves the writeback corner case
unhandled and recovers when it is detected; forward progress after such a
recovery is the slow-start mode of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.coherence.cache import CacheArray
from repro.coherence.snooping.bus import AddressBus
from repro.coherence.snooping.cache_controller import SnoopingCacheController
from repro.coherence.snooping.memory_controller import SnoopingMemoryController
from repro.coherence.snooping.states import SnoopState
from repro.core.detection import RecoveryRateInjector, transaction_timeout_cycles
from repro.core.events import SpeculationKind
from repro.core.forward_progress import NoOpPolicy, SlowStartGate, SlowStartPolicy
from repro.core.framework import SpeculationFramework
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache
from repro.safetynet.manager import SafetyNet
from repro.sim.config import SystemConfig
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry
from repro.system.results import RunResult
from repro.workloads import make_workload
from repro.workloads.base import SyntheticWorkload


@dataclass
class SnoopingNode:
    """All components of one node of the snooping system."""

    node_id: int
    processor: BlockingProcessor
    l1: L1FilterCache
    l2_array: CacheArray
    cache_controller: SnoopingCacheController


class SnoopingSystem:
    """A runnable broadcast-snooping multiprocessor."""

    def __init__(self, config: SystemConfig, *, label: Optional[str] = None) -> None:
        self.config = config
        self.label = label if label is not None else f"snooping-{config.variant.value}"
        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.rng = DeterministicRng(config.workload.seed)
        self.bus = AddressBus(self.sim, stats=self.stats)
        self.safetynet = SafetyNet(
            self.sim, config.checkpoint, num_nodes=config.num_processors,
            interval_requests=config.checkpoint.snooping_interval_requests,
            stats=self.stats)
        self.framework = SpeculationFramework(self.sim, self.safetynet, stats=self.stats)
        self.slow_start_gate = SlowStartGate(self.sim)
        self.memory = SnoopingMemoryController(
            self.sim, memory_latency_cycles=config.memory_latency_cycles,
            deliver_data=self._deliver_data, stats=self.stats)
        self.nodes: List[SnoopingNode] = []
        self.injector: Optional[RecoveryRateInjector] = None
        self._build_nodes()
        self._configure_policies()

    # ------------------------------------------------------------------- build
    def _deliver_data(self, dst: int, address: int, value: int) -> None:
        self.nodes[dst].cache_controller.receive_data(address, value)

    def _build_nodes(self) -> None:
        cfg = self.config
        # The snooping system's checkpoint interval is request-based; convert
        # an approximate cycle equivalent for the transaction timeout.
        approx_interval_cycles = (cfg.checkpoint.snooping_interval_requests
                                  * self.bus.arbitration_cycles)
        timeout = transaction_timeout_cycles(
            cfg.checkpoint, cfg.speculation,
            checkpoint_interval_cycles=max(approx_interval_cycles, 10_000))
        for node_id in range(cfg.num_processors):
            l2_array: CacheArray = CacheArray(f"snoop-l2.{node_id}", cfg.l2,
                                              SnoopState.INVALID)
            cache_ctrl = SnoopingCacheController(
                node_id, self.sim, cfg, l2_array, self.bus, self._deliver_data,
                misspeculation_reporter=self.framework.report, stats=self.stats)
            cache_ctrl.may_issue = self.slow_start_gate.may_issue
            cache_ctrl.on_retire = self.slow_start_gate.retired
            cache_ctrl.timeout_cycles = timeout
            l1 = L1FilterCache(f"snoop-l1.{node_id}", cfg.l1)
            processor = BlockingProcessor(
                node_id, self.sim, cfg, [], l1=l1,
                rng=self.rng.spawn(f"proc{node_id}"), stats=self.stats)
            processor.l2_access = cache_ctrl.access
            processor.l2_state_of = l2_array.get_state
            processor.set_store_value_hook(
                lambda addr, val, arr=l2_array: (
                    arr.set_value(addr, val) if arr.contains(addr) else None))

            l2_array.set_observer(self.safetynet.register_store(
                f"snoop-l2.{node_id}", node_id, l2_array.restore_field))
            self.safetynet.register_participant(processor)
            self.safetynet.add_squash_hook(cache_ctrl.squash_transient_state)
            self.bus.attach_snooper(cache_ctrl.snoop)
            self.nodes.append(SnoopingNode(
                node_id=node_id, processor=processor, l1=l1,
                l2_array=l2_array, cache_controller=cache_ctrl))

        self.memory.set_observer(self.safetynet.register_store(
            "snoop-memory", 0, self.memory.restore_field))
        self.bus.attach_memory(self.memory.snoop)
        self.bus.add_ordered_hook(lambda _req: self.safetynet.note_request())
        self.safetynet.add_squash_hook(self.bus.flush)
        self.safetynet.add_squash_hook(
            lambda: self.slow_start_gate.reset_outstanding())

    def _configure_policies(self) -> None:
        spec = self.config.speculation
        slow_start = SlowStartPolicy(self.slow_start_gate,
                                     max_outstanding=spec.slow_start_max_outstanding,
                                     duration_cycles=spec.slow_start_cycles)
        self.framework.set_policy(SpeculationKind.SNOOPING_CORNER_CASE, slow_start)
        self.framework.set_policy(SpeculationKind.INTERCONNECT_DEADLOCK, slow_start)
        self.framework.set_policy(SpeculationKind.INJECTED, NoOpPolicy())

    # ----------------------------------------------------------------- injector
    def attach_recovery_injector(self, rate_per_second: float) -> RecoveryRateInjector:
        """Attach the Figure 4 stress-test injector (call before :meth:`run`)."""
        self.injector = RecoveryRateInjector(
            self.sim, self.framework.report,
            rate_per_second=rate_per_second,
            cycles_per_second=self.config.cycles_per_second)
        return self.injector

    # --------------------------------------------------------------------- run
    def load_workload(self, workload: Optional[SyntheticWorkload] = None) -> None:
        cfg = self.config
        if workload is None:
            workload = make_workload(cfg.workload.name,
                                     num_processors=cfg.num_processors,
                                     block_bytes=cfg.block_bytes,
                                     seed=cfg.workload.seed)
        streams = workload.generate_all(cfg.workload.references_per_processor)
        for node in self.nodes:
            node.processor.references = list(streams[node.node_id])

    def run(self, *, workload: Optional[SyntheticWorkload] = None,
            max_cycles: Optional[int] = None) -> RunResult:
        self.load_workload(workload)
        if self.injector is not None:
            self.injector.start()

        def on_finished(_node: int) -> None:
            if all(n.processor.finished_at is not None for n in self.nodes):
                self.sim.stop()

        for node in self.nodes:
            node.processor.start(on_finished)
        limit = (max_cycles if max_cycles is not None
                 else max(1_000_000,
                          self.config.workload.references_per_processor * 2_000))
        self.sim.run(until=limit)
        finished = all(n.processor.finished_at is not None for n in self.nodes)
        return self._collect_results(finished)

    # ----------------------------------------------------------------- results
    def _collect_results(self, finished: bool) -> RunResult:
        runtime = max((n.processor.finished_at or self.sim.now) for n in self.nodes)
        refs = sum(n.processor.references_completed for n in self.nodes)
        instructions = sum(n.processor.retired_instructions for n in self.nodes)
        l2_hits = sum(n.l2_array.hits for n in self.nodes)
        l2_misses = sum(n.l2_array.misses for n in self.nodes)
        fs = self.framework.framework_stats
        return RunResult(
            workload=self.config.workload.name,
            config_label=self.label,
            runtime_cycles=runtime,
            references_completed=refs,
            instructions_retired=instructions,
            finished=finished,
            detections=fs.detections,
            recoveries=fs.recoveries,
            recoveries_by_kind={k.value: v for k, v in fs.recoveries_by_kind.items()},
            recovery_records=list(self.framework.records),
            messages_delivered=self.bus.requests_ordered,
            mean_message_latency=0.0,
            mean_link_utilization=0.0,
            peak_link_utilization=0.0,
            reorder_rate_overall=0.0,
            l2_misses=l2_misses,
            l2_hits=l2_hits,
            checkpoints_taken=self.safetynet.checkpoints_taken,
            peak_log_entries=self.safetynet.peak_log_occupancy_entries(),
            events_executed=self.sim.events_executed,
            counters=self.stats.counters(),
        )

    # ------------------------------------------------------------------ checks
    def invariant_errors(self) -> List[str]:
        """SWMR and structural violations across the snooping caches."""
        errors: List[str] = []
        owners = {}
        for node in self.nodes:
            errors.extend(node.cache_controller.invariant_errors())
            for line in node.l2_array.lines():
                if line.state in (SnoopState.MODIFIED, SnoopState.EXCLUSIVE):
                    owners.setdefault(line.address, []).append(node.node_id)
        for address, holders in owners.items():
            if len(holders) > 1:
                errors.append(f"block {address:#x}: multiple exclusive holders {holders}")
        return errors

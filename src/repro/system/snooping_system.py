"""The broadcast snooping multiprocessor (Section 3.2 target system).

A 16-node system whose coherence requests are broadcast on a totally ordered
address network and whose data moves point-to-point.  SafetyNet uses the
request count as its logical time base (Table 2: a checkpoint every 3,000
requests).  The ``SPECULATIVE`` variant leaves the writeback corner case
unhandled (the ``snooping-corner-case`` speculation) and recovers when it
is detected; forward progress after such a recovery is the slow-start mode
of Section 3.2.  Which speculations arm is decided by the registry-backed
:class:`repro.sim.config.SpeculationConfig`.
"""

from __future__ import annotations

from typing import Dict, List

from repro import kernel
from repro.coherence.cache import CacheArray, CacheLine
from repro.coherence.common import MemoryOp, Transaction
from repro.coherence.snooping.bus import AddressBus, BusRequest, BusRequestType
from repro.coherence.snooping.cache_controller import SnoopingCacheController
from repro.coherence.snooping.memory_controller import SnoopingMemoryController
from repro.coherence.snooping.states import SnoopState, WritebackPhase
from repro.processor.core import BlockingProcessor
from repro.processor.l1 import L1FilterCache, L1State
from repro.safetynet.manager import SafetyNet
from repro.sim.config import ProtocolKind, SystemConfig
from repro.system.base import System
from repro.system.node import SnoopingNode

__all__ = ["SnoopingNode", "SnoopingSystem"]


class SnoopingSystem(System):
    """A runnable broadcast-snooping multiprocessor."""

    kind = ProtocolKind.SNOOPING

    # ------------------------------------------------------------------- build
    @staticmethod
    def _default_label(config: SystemConfig) -> str:
        return f"snooping-{config.variant.value}"

    def _build_fabric(self) -> None:
        self.bus = AddressBus(self.sim, stats=self.stats)
        self.memory = SnoopingMemoryController(
            self.sim, memory_latency_cycles=self.config.memory_latency_cycles,
            deliver_data=self._deliver_data, stats=self.stats)

    def _build_safetynet(self) -> SafetyNet:
        return SafetyNet(
            self.sim, self.config.checkpoint,
            num_nodes=self.config.num_processors,
            interval_requests=self.config.checkpoint.snooping_interval_requests,
            stats=self.stats)

    def checkpoint_interval_cycles(self) -> int:
        # The snooping system's checkpoint interval is request-based; convert
        # an approximate cycle equivalent for the transaction timeout.
        approx = (self.config.checkpoint.snooping_interval_requests
                  * self.bus.arbitration_cycles)
        return max(approx, 10_000)

    def _deliver_data(self, dst: int, address: int, value: int) -> None:
        self.nodes[dst].cache_controller.receive_data(address, value)

    def _build_nodes(self) -> None:
        cfg = self.config
        for node_id in range(cfg.num_processors):
            l2_array: CacheArray = CacheArray(f"snoop-l2.{node_id}", cfg.l2,
                                              SnoopState.INVALID)
            cache_ctrl = SnoopingCacheController(
                node_id, self.sim, cfg, l2_array, self.bus, self._deliver_data,
                misspeculation_reporter=self.speculation.report, stats=self.stats)
            cache_ctrl.may_issue = self.slow_start_gate.may_issue
            cache_ctrl.on_retire = self.slow_start_gate.retired
            l1 = L1FilterCache(f"snoop-l1.{node_id}", cfg.l1)
            processor = BlockingProcessor(
                node_id, self.sim, cfg, [], l1=l1,
                rng=self.rng.spawn(f"proc{node_id}"), stats=self.stats)
            processor.l2_access = cache_ctrl.access
            processor.l2_state_of = l2_array.get_state
            processor.set_store_value_hook(
                lambda addr, val, arr=l2_array: (
                    arr.set_value(addr, val) if arr.contains(addr) else None))

            l2_array.set_observer(self.safetynet.register_store(
                f"snoop-l2.{node_id}", node_id, l2_array.restore_field))
            self.safetynet.register_participant(processor)
            self.safetynet.add_squash_hook(cache_ctrl.squash_transient_state)
            self.bus.attach_snooper(cache_ctrl.snoop)
            self.nodes.append(SnoopingNode(
                node_id=node_id, processor=processor, l1=l1,
                l2_array=l2_array, cache_controller=cache_ctrl))

        self.memory.set_observer(self.safetynet.register_store(
            "snoop-memory", 0, self.memory.restore_field))
        self.bus.attach_memory(self.memory.snoop)
        self.bus.add_ordered_hook(lambda _req: self.safetynet.note_request())
        self.safetynet.add_squash_hook(self.bus.flush)
        self.safetynet.add_squash_hook(
            lambda: self.slow_start_gate.reset_outstanding())

    def _install_compiled_fast_paths(self) -> None:
        # Rebind the issue loop, bus arbitration and the cache-controller
        # transition handlers onto the compiled cores (byte-identical ports;
        # the pure methods stay authoritative and still handle every cold
        # path).  BusCore is installed first: SnoopCore captures
        # ``ctrl.bus.issue`` at construction and must see the compiled
        # arbitration loop.
        impl = kernel.engine_impl()
        if impl is None or not hasattr(impl, "ProcessorCore"):
            return
        if not isinstance(self.sim, impl.Simulator):
            return
        core = impl.BusCore(self.bus)
        self.bus._bus_core = core
        self.bus.issue = core.issue
        for node in self.nodes:
            processor = node.processor
            if processor.l1 is not None:
                proc_core = impl.ProcessorCore(
                    processor, node.l2_array, MemoryOp.STORE,
                    SnoopState.INVALID,
                    (SnoopState.MODIFIED, SnoopState.EXCLUSIVE))
                processor._issue_next = proc_core
                if hasattr(impl, "MemoryCompleteCore"):
                    processor._memory_complete = impl.MemoryCompleteCore(
                        processor, proc_core, L1State.VALID, CacheLine)
            if hasattr(impl, "SnoopCore"):
                ctrl = node.cache_controller
                snoop_core = impl.SnoopCore(
                    ctrl, MemoryOp.LOAD, MemoryOp.STORE,
                    SnoopState.INVALID, SnoopState.SHARED,
                    SnoopState.EXCLUSIVE, SnoopState.OWNED,
                    SnoopState.MODIFIED,
                    BusRequestType.GETS, BusRequestType.GETX,
                    BusRequestType.WRITEBACK,
                    WritebackPhase.WAITING_OWN_WB,
                    WritebackPhase.LOST_OWNERSHIP,
                    BusRequest, Transaction, CacheLine)
                ctrl._snoop_core = snoop_core
                node.processor.l2_access = snoop_core.access
                ctrl.receive_data = snoop_core.receive_data
                self.bus._snoopers[node.node_id] = snoop_core.snoop

    # --------------------------------------------------------------------- run
    def _default_max_cycles(self) -> int:
        return max(1_000_000,
                   self.config.workload.references_per_processor * 2_000)

    # ----------------------------------------------------------------- results
    def _network_metrics(self, runtime: int) -> Dict[str, object]:
        return {
            "messages_delivered": self.bus.requests_ordered,
            "mean_message_latency": 0.0,
            "mean_link_utilization": 0.0,
            "peak_link_utilization": 0.0,
            "reorder_rate_overall": 0.0,
        }

    # ------------------------------------------------------------------ checks
    def invariant_errors(self) -> List[str]:
        """SWMR and structural violations across the snooping caches."""
        errors: List[str] = []
        owners = {}
        for node in self.nodes:
            errors.extend(node.cache_controller.invariant_errors())
            for line in node.l2_array.lines():
                if line.state in (SnoopState.MODIFIED, SnoopState.EXCLUSIVE):
                    owners.setdefault(line.address, []).append(node.node_id)
        for address, holders in owners.items():
            if len(holders) > 1:
                errors.append(f"block {address:#x}: multiple exclusive holders {holders}")
        return errors

"""System assembly: nodes, multiprocessors and the run harness.

:func:`repro.system.builder.build_system` turns a
:class:`repro.sim.config.SystemConfig` into a runnable multiprocessor — a
directory system over the torus interconnect or a broadcast snooping system —
with SafetyNet, the speculation framework and the workload-driven processors
already wired together.
"""

from repro.system.results import RunResult
from repro.system.directory_system import DirectorySystem
from repro.system.snooping_system import SnoopingSystem
from repro.system.builder import build_system

__all__ = ["RunResult", "DirectorySystem", "SnoopingSystem", "build_system"]

"""System assembly: nodes, multiprocessors and the run harness.

:func:`repro.system.builder.build_system` turns a
:class:`repro.sim.config.SystemConfig` into a runnable multiprocessor — a
directory system over a packet-switched topology or a broadcast snooping
system — with SafetyNet, the speculation layer and the workload-driven
processors already wired together.  Both concrete systems share the
:class:`repro.system.base.System` base class (build / ``load_workload`` /
``run`` / ``attach_recovery_injector``).
"""

from repro.system.results import RunResult
from repro.system.base import System
from repro.system.directory_system import DirectorySystem
from repro.system.snooping_system import SnoopingSystem
from repro.system.builder import AnySystem, build_system

__all__ = ["RunResult", "System", "AnySystem", "DirectorySystem",
           "SnoopingSystem", "build_system"]

"""The shared multiprocessor base class.

:class:`System` captures the surface the directory and snooping systems
always duck-typed — build, ``load_workload``, ``run``, result collection,
and the speculation attach points — so :func:`repro.system.builder
.build_system` returns one concrete type hierarchy instead of a ``Union``.

Construction order is part of the determinism contract (RNG spawns and any
event scheduled during build must happen in a fixed order), so the base
``__init__`` fixes the sequence and subclasses fill in the hooks:

1. simulator, stats, RNG;
2. ``_build_fabric()`` — the message substrate (torus/mesh/ring network or
   the snooping address bus + memory);
3. ``_build_safetynet()`` — SafetyNet on the protocol's logical time base;
4. the :class:`~repro.speculation.manager.SpeculationManager` and the
   slow-start gate;
5. ``_build_nodes()`` — processors, caches, controllers, SafetyNet wiring;
6. ``speculation.arm(self)`` — every speculation the configuration enables
   wires itself in (detection flags, transaction timeouts, forward-progress
   policies).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import ClassVar, Dict, List, Optional

from repro import kernel
from repro.safetynet.manager import SafetyNet
from repro.sim.config import InterconnectConfig, ProtocolKind, SystemConfig
from repro.sim.rng import DeterministicRng
from repro.sim.stats import StatsRegistry
from repro.speculation.detectors import PeriodicInjectionSpeculation
from repro.speculation.manager import SpeculationManager
from repro.core.forward_progress import SlowStartGate
from repro.system.results import RunResult
from repro.workloads.base import SyntheticWorkload
from repro.workloads.memo import shared_streams


class System(ABC):
    """A runnable multiprocessor (directory or snooping)."""

    #: The coherence protocol the concrete system implements.
    kind: ClassVar[ProtocolKind]

    def __init__(self, config: SystemConfig, *, label: Optional[str] = None) -> None:
        self.config = config
        self.label = label if label is not None else self._default_label(config)
        # Kernel tier (pure vs compiled) is resolved here, at construction
        # time — both tiers are byte-identical, so nothing downstream needs
        # to know which one is executing (see repro.kernel).
        self.sim = kernel.new_simulator()
        self.stats = StatsRegistry()
        self.rng = DeterministicRng(config.workload.seed)
        self._build_fabric()
        self.safetynet: SafetyNet = self._build_safetynet()
        self.speculation = SpeculationManager(self.sim, self.safetynet,
                                              stats=self.stats)
        #: Historical name for the coordinator; same object.
        self.framework = self.speculation
        self.slow_start_gate = SlowStartGate(self.sim)
        self.nodes: List = []
        self.injector: Optional[PeriodicInjectionSpeculation] = None
        self._finished_processors = 0
        self._build_nodes()
        self.speculation.arm(self)
        # Rebind protocol hot paths onto compiled cores (no-op on the pure
        # tier).  Wiring is final and no event has run yet, so the cores
        # capture the same state the pure methods would read.
        self._install_compiled_fast_paths()

    # ------------------------------------------------------------------- hooks
    @staticmethod
    @abstractmethod
    def _default_label(config: SystemConfig) -> str:
        """Label used when the caller does not supply one."""

    @abstractmethod
    def _build_fabric(self) -> None:
        """Construct the message substrate (network, or bus + memory)."""

    @abstractmethod
    def _build_safetynet(self) -> SafetyNet:
        """Construct SafetyNet on this protocol's logical time base."""

    @abstractmethod
    def _build_nodes(self) -> None:
        """Construct and wire the per-node components."""

    def _install_compiled_fast_paths(self) -> None:
        """Rebind protocol hot paths onto ``repro._ckernel`` cores.

        Called once at the end of construction.  Subclasses override this
        to install their protocol's compiled cores; the base implementation
        is a no-op so the pure tier (and any system without a compiled
        counterpart) runs the pure methods unchanged.
        """

    @abstractmethod
    def _default_max_cycles(self) -> int:
        """Run horizon used when the caller does not bound the run."""

    @abstractmethod
    def _network_metrics(self, runtime: int) -> Dict[str, object]:
        """Substrate-specific :class:`RunResult` fields."""

    @abstractmethod
    def invariant_errors(self) -> List[str]:
        """Coherence invariant violations across the whole system."""

    # ------------------------------------------------------- speculation layer
    def checkpoint_interval_cycles(self) -> int:
        """Checkpoint interval in cycles (or a cycle-equivalent estimate for
        request-based logical time); the deadlock timeout derives from it."""
        raise NotImplementedError

    def cache_controllers(self) -> List:
        """The per-node L2 cache controllers (timeout/detection sites)."""
        return [node.cache_controller for node in self.nodes]

    def effective_interconnect(self) -> InterconnectConfig:
        """The interconnect to build: the configured one, with the no-VC
        design forced when ``interconnect_no_vc_speculation`` asks for it."""
        interconnect = self.config.interconnect
        if (self.config.speculation.interconnect_no_vc_speculation
                and not interconnect.speculative_no_vc):
            interconnect = replace(interconnect, speculative_no_vc=True)
        return interconnect

    def attach_recovery_injector(self, rate_per_second: float
                                 ) -> PeriodicInjectionSpeculation:
        """Attach the Figure 4 stress-test injector (call before :meth:`run`)."""
        self.injector = self.speculation.attach_injector(
            rate_per_second=rate_per_second,
            cycles_per_second=self.config.cycles_per_second)
        return self.injector

    # --------------------------------------------------------------------- run
    def load_workload(self, workload: Optional[SyntheticWorkload] = None) -> None:
        """Install per-processor reference streams.

        The default path resolves the configured family through the stream
        memo (:mod:`repro.workloads.memo`): the immutable generated artifact
        is shared across runs of the same workload design point, and each
        run receives fresh per-node cursors.  The configuration was already
        validated against the registry at construction time, so failures
        here are generation bugs, not typos.  An explicit ``workload``
        object bypasses the memo and generates directly.
        """
        cfg = self.config
        if workload is None:
            artifact = shared_streams(
                cfg.workload.name,
                num_processors=cfg.num_processors,
                block_bytes=cfg.block_bytes,
                seed=cfg.workload.seed,
                params=cfg.workload.params,
                references_per_processor=cfg.workload.references_per_processor)
            for node in self.nodes:
                node.processor.references = artifact.cursor(node.node_id)
            return
        streams = workload.generate_all(cfg.workload.references_per_processor)
        for node in self.nodes:
            node.processor.references = list(streams[node.node_id])

    def _start_clocks(self) -> None:
        """Begin periodic activity before the processors start.

        The base starts SafetyNet (a no-op scheduler-wise on request-based
        logical time); subclasses may extend.
        """
        self.safetynet.start()

    def run(self, *, workload: Optional[SyntheticWorkload] = None,
            max_cycles: Optional[int] = None) -> RunResult:
        """Run the workload to completion and collect results."""
        self.load_workload(workload)
        self._start_clocks()
        if self.injector is not None:
            self.injector.start()
        self._finished_processors = 0

        def on_finished(_node: int) -> None:
            self._finished_processors += 1
            if all(n.processor.finished_at is not None for n in self.nodes):
                self.sim.stop()

        for node in self.nodes:
            node.processor.start(on_finished)

        limit = max_cycles if max_cycles is not None else self._default_max_cycles()
        self.sim.run(until=limit)
        finished = all(n.processor.finished_at is not None for n in self.nodes)
        return self._collect_results(finished)

    # ----------------------------------------------------------------- results
    def _collect_results(self, finished: bool) -> RunResult:
        runtime = max((n.processor.finished_at or self.sim.now) for n in self.nodes)
        refs = sum(n.processor.references_completed for n in self.nodes)
        instructions = sum(n.processor.retired_instructions for n in self.nodes)
        l2_hits = sum(n.l2_array.hits for n in self.nodes)
        l2_misses = sum(n.l2_array.misses for n in self.nodes)
        fs = self.speculation.framework_stats
        return RunResult(
            workload=self.config.workload.name,
            config_label=self.label,
            runtime_cycles=runtime,
            references_completed=refs,
            instructions_retired=instructions,
            finished=finished,
            detections=fs.detections,
            detections_by_kind={k.value: v
                                for k, v in fs.detections_by_kind.items()},
            recoveries=fs.recoveries,
            recoveries_by_kind={k.value: v for k, v in fs.recoveries_by_kind.items()},
            recovery_records=list(self.speculation.records),
            l2_misses=l2_misses,
            l2_hits=l2_hits,
            checkpoints_taken=self.safetynet.checkpoints_taken,
            peak_log_entries=self.safetynet.peak_log_occupancy_entries(),
            events_executed=self.sim.events_executed,
            counters=self.stats.counters(),
            **self._network_metrics(runtime),
        )

"""System factory.

:func:`build_system` constructs the multiprocessor described by a
:class:`repro.sim.config.SystemConfig` — a directory system on a
packet-switched topology or a broadcast snooping system — so experiments
and examples can stay protocol-agnostic.  Both concrete systems derive
from :class:`repro.system.base.System`, which captures the shared
``run``/``load_workload``/speculation-attach surface.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.config import ProtocolKind, SystemConfig
from repro.system.base import System
from repro.system.directory_system import DirectorySystem
from repro.system.snooping_system import SnoopingSystem

#: Historical alias from when the two systems only duck-typed a common
#: surface and the factory returned a ``Union``; the shared base class is
#: the real type now.
AnySystem = System


def build_system(config: SystemConfig, *, label: Optional[str] = None) -> System:
    """Build the system the configuration asks for."""
    if config.protocol == ProtocolKind.DIRECTORY:
        return DirectorySystem(config, label=label)
    if config.protocol == ProtocolKind.SNOOPING:
        return SnoopingSystem(config, label=label)
    raise ValueError(f"unknown protocol kind {config.protocol!r}")

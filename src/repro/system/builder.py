"""System factory.

:func:`build_system` constructs the multiprocessor described by a
:class:`repro.sim.config.SystemConfig` — a directory system on the torus or
a broadcast snooping system — so experiments and examples can stay
protocol-agnostic.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.sim.config import ProtocolKind, SystemConfig
from repro.system.directory_system import DirectorySystem
from repro.system.snooping_system import SnoopingSystem

AnySystem = Union[DirectorySystem, SnoopingSystem]


def build_system(config: SystemConfig, *, label: Optional[str] = None) -> AnySystem:
    """Build the system the configuration asks for."""
    if config.protocol == ProtocolKind.DIRECTORY:
        return DirectorySystem(config, label=label)
    if config.protocol == ProtocolKind.SNOOPING:
        return SnoopingSystem(config, label=label)
    raise ValueError(f"unknown protocol kind {config.protocol!r}")

"""Plain-text table / figure-series formatting.

The benchmark harness and the standalone experiment drivers both print the
paper's tables and figure series as aligned plain text, so runs are easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence


def format_table(title: str, rows: Mapping[str, Mapping[str, object]], *,
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render ``{row_label: {column: value}}`` as an aligned text table."""
    if columns is None:
        seen: List[str] = []
        for row in rows.values():
            for column in row:
                if column not in seen:
                    seen.append(column)
        columns = seen

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    row_label_width = max([len(label) for label in rows] + [len(title)])
    col_widths = {col: max([len(col)] + [len(fmt(row.get(col, "")))
                                         for row in rows.values()])
                  for col in columns}
    lines = [title]
    header = " " * row_label_width + "  " + "  ".join(
        col.rjust(col_widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in rows.items():
        cells = "  ".join(fmt(row.get(col, "")).rjust(col_widths[col])
                          for col in columns)
        lines.append(label.ljust(row_label_width) + "  " + cells)
    return "\n".join(lines)


def format_figure_series(title: str, series: Mapping[str, Mapping[str, float]], *,
                         value_label: str = "normalized performance") -> str:
    """Render figure data as ``series -> x -> value`` text with bars.

    ``series`` maps a series name (e.g. a workload) to ``{x label: value}``.
    Values are expected in [0, ~1.5]; a simple ASCII bar gives the visual
    shape of the paper's bar charts.
    """
    lines = [f"{title}  ({value_label})"]
    for name, points in series.items():
        lines.append(f"  {name}")
        for x_label, value in points.items():
            bar = "#" * max(0, int(round(value * 40)))
            lines.append(f"    {x_label:>24s}  {value:6.3f}  {bar}")
    return "\n".join(lines)


def rows_from_table(rows: Mapping[str, Mapping[str, object]], *,
                    label_field: str = "label") -> List[Dict[str, object]]:
    """Flatten ``{row_label: {column: value}}`` into a list of row dicts.

    The standard ``to_rows()`` shape for experiments whose result is already
    a label-keyed table: each row keeps its identifying label as a field, so
    the list round-trips through JSON without losing structure.
    """
    return [{label_field: label, **row} for label, row in rows.items()]


def rows_from_series(series: Mapping[str, Mapping[str, float]], *,
                     series_field: str = "series", x_field: str = "x",
                     value_field: str = "value") -> List[Dict[str, object]]:
    """Flatten figure data (``series -> x -> value``) into row dicts."""
    return [{series_field: name, x_field: x_label, value_field: value}
            for name, points in series.items()
            for x_label, value in points.items()]


def write_json_report(path: str, payload: Mapping[str, Any]) -> None:
    """Write a machine-readable report with a stable, diff-friendly encoding."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def format_counters(title: str, counters: Dict[str, int], *, prefix: str = "",
                    limit: int = 40) -> str:
    """Render a (possibly filtered) counter dump."""
    rows = [(k, v) for k, v in sorted(counters.items()) if k.startswith(prefix)]
    lines = [title]
    for name, value in rows[:limit]:
        lines.append(f"  {name:<60s} {value}")
    if len(rows) > limit:
        lines.append(f"  ... ({len(rows) - limit} more)")
    return "\n".join(lines)

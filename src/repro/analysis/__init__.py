"""Analysis helpers: metrics and report formatting for the experiments."""

from repro.analysis.metrics import (
    normalized_performance,
    speedup,
    mean_and_std,
    reorder_percentages,
)
from repro.analysis.report import format_table, format_figure_series

__all__ = [
    "normalized_performance",
    "speedup",
    "mean_and_std",
    "reorder_percentages",
    "format_table",
    "format_figure_series",
]

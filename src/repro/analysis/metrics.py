"""Metrics used by the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.interconnect.message import VirtualNetwork
from repro.system.results import RunResult


def normalized_performance(result: RunResult, baseline: RunResult) -> float:
    """The paper's normalized performance: baseline runtime / this runtime.

    1.0 means "as fast as the baseline"; smaller is slower.  Both runs must
    have executed the same workload (same reference streams).
    """
    if result.workload != baseline.workload:
        raise ValueError(
            f"comparing different workloads: {result.workload} vs {baseline.workload}")
    if result.runtime_cycles <= 0:
        return 0.0
    return baseline.runtime_cycles / result.runtime_cycles


def speedup(new: RunResult, old: RunResult) -> float:
    """Speedup of ``new`` over ``old`` (>1 means new is faster)."""
    if new.runtime_cycles <= 0:
        return 0.0
    return old.runtime_cycles / new.runtime_cycles


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and (population) standard deviation; (0, 0) for empty input.

    The paper plots one standard deviation as its error bars; experiments
    that run several perturbed simulations per design point use this.
    """
    values = list(values)
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)


def reorder_percentages(result: RunResult) -> Dict[str, float]:
    """Per-virtual-network reorder rates as percentages (Section 5.3)."""
    return {name: 100.0 * rate
            for name, rate in result.reorder_rate_by_vnet.items()}


def recoveries_per_scaled_second(result: RunResult, cycles_per_second: float) -> float:
    """Observed recovery rate under the configured cycle/second scale."""
    if result.runtime_cycles <= 0 or cycles_per_second <= 0:
        return 0.0
    return result.recoveries / (result.runtime_cycles / cycles_per_second)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if any value is non-positive)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))

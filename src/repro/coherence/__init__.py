"""Cache-coherence substrate.

Two complete protocols, each in a *full* variant (every race handled by
extra states/transitions) and a *speculative* variant (the rare race left
unhandled and detected as a mis-speculation):

* a MOSI directory protocol over the torus interconnect
  (:mod:`repro.coherence.directory`), and
* a MOESI broadcast snooping protocol over a totally ordered address network
  (:mod:`repro.coherence.snooping`).

Shared building blocks (addresses, memory operations, transactions, cache
arrays) live in :mod:`repro.coherence.common` and
:mod:`repro.coherence.cache`.
"""

from repro.coherence.common import (
    BlockAddress,
    MemoryOp,
    MemoryRequest,
    Transaction,
    block_address,
    home_node,
)
from repro.coherence.cache import CacheArray, CacheLine

__all__ = [
    "BlockAddress",
    "MemoryOp",
    "MemoryRequest",
    "Transaction",
    "block_address",
    "home_node",
    "CacheArray",
    "CacheLine",
]

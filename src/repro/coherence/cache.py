"""Set-associative cache arrays.

The cache array stores, per block, a protocol state (opaque to the array —
each protocol brings its own enum), an optional data value (an integer token
used for correctness checking, not timing) and LRU information.  It is used
for both L1 tag arrays and L2 coherence caches.

State changes flow through :meth:`CacheArray.set_state`, which notifies an
optional observer — this is the hook the SafetyNet undo log uses to record
old values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.coherence.common import BlockAddress
from repro.sim.config import CacheConfig

StateT = TypeVar("StateT")

#: Observer signature: (address, field_name, old_value, new_value).
ChangeObserver = Callable[[BlockAddress, str, object, object], None]


@dataclass(slots=True)
class CacheLine(Generic[StateT]):
    """One cache line."""

    address: BlockAddress
    state: StateT
    value: Optional[int] = None
    last_used: int = 0
    dirty: bool = False


# ------------------------------------------------------------- set-list pool
#: Recycled ``_sets`` lists keyed by set count, populated only while the
#: pool is enabled.  A 16-node campaign design point allocates tens of
#: thousands of empty per-set dicts per run; executors that run many design
#: points in one process (:class:`repro.campaign.multiplex
#: .MultiplexExecutor`) recycle the lists of finished runs instead.  Purely
#: an allocation cache: a recycled list is returned emptied, so array
#: behaviour — and therefore every simulation result — is identical with
#: the pool on or off.
_SET_POOL: Dict[int, List[List[dict]]] = {}
_POOL_ENABLED = False


def enable_set_pool() -> None:
    """Start recycling ``_sets`` lists handed back via :meth:`CacheArray
    .recycle_sets`."""
    global _POOL_ENABLED
    _POOL_ENABLED = True


def disable_set_pool() -> None:
    """Stop recycling and drop every pooled list."""
    global _POOL_ENABLED
    _POOL_ENABLED = False
    _SET_POOL.clear()


def _sets_from_pool(num_sets: int) -> List[dict]:
    if _POOL_ENABLED:
        bucket = _SET_POOL.get(num_sets)
        if bucket:
            return bucket.pop()
    return [{} for _ in range(num_sets)]


class CacheArray(Generic[StateT]):
    """A set-associative cache with explicit state management.

    Parameters
    ----------
    name:
        Used in error messages and stats.
    config:
        Geometry (size / associativity / block size).
    invalid_state:
        The protocol's Invalid state value; lines in this state are treated
        as empty slots.
    """

    def __init__(self, name: str, config: CacheConfig, invalid_state: StateT) -> None:
        self.name = name
        self.config = config
        self.invalid_state = invalid_state
        self._sets: List[Dict[BlockAddress, CacheLine[StateT]]] = (
            _sets_from_pool(config.num_sets))
        # Geometry constants, promoted to instance attributes: set addressing
        # runs on every cache probe and the config indirection is measurable.
        self._block_bytes = config.block_bytes
        self._num_sets = config.num_sets
        self._observer: Optional[ChangeObserver] = None
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -------------------------------------------------------------- observers
    def set_observer(self, observer: Optional[ChangeObserver]) -> None:
        """Install the change observer (used by the SafetyNet undo log)."""
        self._observer = observer

    def _notify(self, address: BlockAddress, field_name: str, old, new) -> None:
        if self._observer is not None and old != new:
            self._observer(address, field_name, old, new)

    # ------------------------------------------------------------- addressing
    def set_index(self, address: BlockAddress) -> int:
        return (address // self._block_bytes) % self._num_sets

    def _set_for(self, address: BlockAddress) -> Dict[BlockAddress, CacheLine[StateT]]:
        return self._sets[(address // self._block_bytes) % self._num_sets]

    # ----------------------------------------------------------------- lookup
    def lookup(self, address: BlockAddress) -> Optional[CacheLine[StateT]]:
        """Return the line for ``address`` if present (any state), else None."""
        line = self._sets[(address // self._block_bytes) % self._num_sets].get(address)
        if line is not None:
            self._tick += 1
            line.last_used = self._tick
        return line

    def peek(self, address: BlockAddress) -> Optional[CacheLine[StateT]]:
        """Like :meth:`lookup` but without touching LRU."""
        return self._sets[(address // self._block_bytes) % self._num_sets].get(address)

    def contains(self, address: BlockAddress) -> bool:
        return address in self._sets[(address // self._block_bytes) % self._num_sets]

    def get_state(self, address: BlockAddress) -> StateT:
        line = self._sets[(address // self._block_bytes) % self._num_sets].get(address)
        return line.state if line is not None else self.invalid_state

    # ----------------------------------------------------------------- update
    def allocate(self, address: BlockAddress, state: StateT,
                 value: Optional[int] = None) -> Tuple[CacheLine[StateT], Optional[CacheLine[StateT]]]:
        """Insert a line, evicting an LRU victim from the set if necessary.

        Returns ``(new_line, victim_line_or_None)``.  The victim is removed
        from the array; the caller decides whether it needs a writeback.
        Lines whose state the caller has marked as *unevictable* (see
        :meth:`find_victim`) are never chosen.
        """
        cache_set = self._set_for(address)
        existing = cache_set.get(address)
        if existing is not None:
            self.set_state(address, state)
            if value is not None:
                self.set_value(address, value)
            return existing, None

        victim = None
        if len(cache_set) >= self.config.associativity:
            victim = self.find_victim(address)
            if victim is None:
                raise RuntimeError(
                    f"{self.name}: set {self.set_index(address)} has no evictable line")
            del cache_set[victim.address]
            self.evictions += 1
            self._notify(victim.address, "value", victim.value, None)
            self._notify(victim.address, "state", victim.state, self.invalid_state)

        self._tick += 1
        line = CacheLine(address=address, state=state, value=value, last_used=self._tick)
        cache_set[address] = line
        self._notify(address, "state", self.invalid_state, state)
        if value is not None:
            self._notify(address, "value", None, value)
        return line, victim

    def find_victim(self, address: BlockAddress,
                    evictable: Optional[Callable[[CacheLine[StateT]], bool]] = None
                    ) -> Optional[CacheLine[StateT]]:
        """LRU victim in the set of ``address`` (without removing it)."""
        cache_set = self._set_for(address)
        candidates = [line for line in cache_set.values()
                      if evictable is None or evictable(line)]
        if not candidates:
            return None
        return min(candidates, key=lambda line: line.last_used)

    def set_state(self, address: BlockAddress, state: StateT) -> None:
        """Change the coherence state of a (present) line."""
        line = self._set_for(address).get(address)
        if line is None:
            if state == self.invalid_state:
                return
            raise KeyError(f"{self.name}: block {address:#x} not present")
        old = line.state
        line.state = state
        if state == self.invalid_state:
            # Log the data value as well so a recovery can faithfully restore
            # the line (state alone would lose the block's contents).
            self._notify(address, "value", line.value, None)
        self._notify(address, "state", old, state)
        if state == self.invalid_state:
            del self._set_for(address)[address]

    def set_value(self, address: BlockAddress, value: Optional[int]) -> None:
        line = self._set_for(address).get(address)
        if line is None:
            raise KeyError(f"{self.name}: block {address:#x} not present")
        old = line.value
        line.value = value
        self._notify(address, "value", old, value)

    def remove(self, address: BlockAddress) -> None:
        """Drop a line entirely (used by recovery restore)."""
        cache_set = self._set_for(address)
        if address in cache_set:
            del cache_set[address]

    def force_line(self, address: BlockAddress, state: StateT,
                   value: Optional[int]) -> None:
        """Install a line bypassing LRU/eviction and observers (recovery only)."""
        cache_set = self._set_for(address)
        if state == self.invalid_state:
            cache_set.pop(address, None)
            return
        self._tick += 1
        cache_set[address] = CacheLine(address=address, state=state, value=value,
                                       last_used=self._tick)

    def restore_field(self, address: BlockAddress, field_name: str, value) -> None:
        """Apply one SafetyNet undo record without notifying observers.

        Restores run newest-record-first, so a line that did not exist at the
        recovery point is eventually removed by the restore of its original
        Invalid state.  Because every state transition logs the data value
        alongside it, a line always exists by the time its value records are
        replayed; a value record with no resident line is therefore a no-op.
        """
        cache_set = self._set_for(address)
        line = cache_set.get(address)
        if field_name == "state":
            if value == self.invalid_state or value is None:
                cache_set.pop(address, None)
                return
            if line is None:
                self.force_line(address, value, None)
            else:
                line.state = value
        elif field_name == "value":
            if line is not None:
                line.value = value
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown cache field {field_name!r}")

    # ------------------------------------------------------------------ stats
    def recycle_sets(self) -> None:
        """Empty this array's ``_sets`` list and hand it to the pool.

        Called by executors on arrays of *finished* runs (the run's result
        is already extracted; nothing reads the array again).  No-op while
        the pool is disabled.
        """
        if not _POOL_ENABLED:
            return
        sets = self._sets
        for cache_set in sets:
            if cache_set:
                cache_set.clear()
        # The array must never serve a probe after recycling: its list now
        # belongs to a future run's array.
        self._sets = []
        _SET_POOL.setdefault(len(sets), []).append(sets)

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def occupancy_of_set(self, address: BlockAddress) -> int:
        """Number of lines currently resident in the set of ``address``."""
        return len(self._set_for(address))

    def lines(self) -> Iterator[CacheLine[StateT]]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def lines_in_state(self, *states: StateT) -> List[CacheLine[StateT]]:
        wanted = set(states)
        return [line for line in self.lines() if line.state in wanted]

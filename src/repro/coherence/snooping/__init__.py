"""MOESI broadcast snooping protocol (Section 3.2 of the paper).

The snooping system broadcasts coherence requests on a totally ordered
address network (:mod:`repro.coherence.snooping.bus`); data moves on a
separate point-to-point data network modelled as a fixed latency.  The
protocol corner case the paper speculates on is reproduced exactly:

    a cache controller holding a block in Modified (or Owned) issues a
    Writeback and, before observing its own Writeback on the address
    network, observes a RequestReadWrite from another node (losing
    ownership), and then observes a *second* RequestReadWrite from yet
    another node.

In the ``FULL`` variant that second transition is specified and handled; in
the ``SPECULATIVE`` variant it is detected as a mis-speculation and triggers
SafetyNet recovery, exactly as Section 3.2 proposes.
"""

from repro.coherence.snooping.states import SnoopState, WritebackPhase
from repro.coherence.snooping.bus import AddressBus, BusRequest, BusRequestType
from repro.coherence.snooping.cache_controller import SnoopingCacheController
from repro.coherence.snooping.memory_controller import SnoopingMemoryController

__all__ = [
    "SnoopState",
    "WritebackPhase",
    "AddressBus",
    "BusRequest",
    "BusRequestType",
    "SnoopingCacheController",
    "SnoopingMemoryController",
]

"""Snooping cache controller (MOESI).

The controller issues requests on the ordered address network, snoops every
ordered request, and supplies data when it is the owner.  The Section 3.2
corner case is modelled faithfully via :class:`SnoopWritebackRecord` (see
:class:`repro.coherence.snooping.states.WritebackPhase`).

Speculative vs. full variant:

* ``SPECULATIVE`` — observing a second foreign RequestReadWrite while in the
  LOST_OWNERSHIP transient is "the unspecified coherence transition"; the
  controller reports a mis-speculation and the system recovers.
* ``FULL`` — the transition is specified: the controller is no longer the
  owner, so it supplies nothing and simply remains in LOST_OWNERSHIP until
  its own Writeback is ordered (at which point the stale Writeback is
  dropped by the memory controller).  The extra specification (and the extra
  verification obligation that comes with it) is exactly what the
  speculative design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.coherence.cache import CacheArray, CacheLine
from repro.coherence.common import BlockAddress, MemoryOp, MemoryRequest, Transaction
from repro.coherence.snooping.bus import AddressBus, BusRequest, BusRequestType
from repro.coherence.snooping.states import SnoopState, WritebackPhase
from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.sim.component import Component
from repro.sim.config import ProtocolVariant, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

MisspeculationReporter = Callable[[MisspeculationEvent], None]
#: Deliver data to another node: (dst_node, address, value).
DataDelivery = Callable[[int, BlockAddress, int], None]


@dataclass
class SnoopWritebackRecord:
    """One outstanding Writeback and its transient-state phase."""

    address: BlockAddress
    value: int
    request: BusRequest
    phase: WritebackPhase = WritebackPhase.WAITING_OWN_WB
    issued_at: int = 0


class SnoopingCacheController(Component):
    """Per-node cache controller of the broadcast snooping system."""

    #: Latency of a cache-to-cache data transfer on the data network.
    CACHE_TO_CACHE_CYCLES = 40

    def __init__(self, node_id: int, sim: Simulator, config: SystemConfig,
                 cache: CacheArray, bus: AddressBus, deliver_data: DataDelivery, *,
                 misspeculation_reporter: Optional[MisspeculationReporter] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__(f"snoopctrl{node_id}", sim, stats)
        self.node_id = node_id
        self.config = config
        self.variant = config.variant
        #: Whether the S2 detection path is live: the speculative variant
        #: with the ``snooping-corner-case`` design enabled.  Derived from
        #: the configuration so directly constructed controllers (unit
        #: tests) behave like system-built ones; the speculation layer
        #: arms the matching slow-start policy.
        self.corner_case_detection_enabled = (
            config.variant == ProtocolVariant.SPECULATIVE
            and config.speculation.speculates(
                SpeculationKind.SNOOPING_CORNER_CASE.value))
        self.cache = cache
        self.bus = bus
        self.deliver_data = deliver_data
        self.misspeculation_reporter = misspeculation_reporter
        self.transaction: Optional[Transaction] = None
        self.writebacks: Dict[BlockAddress, SnoopWritebackRecord] = {}
        #: Foreign requests ordered after our own RequestReadWrite but before
        #: our data arrived; we owe them a data forward once we install
        #: Modified (the classic IM_AD "remember to forward" transient).
        self._pending_forwards: Dict[BlockAddress, List[BusRequest]] = {}
        #: Addresses for which ownership has already been passed on to a
        #: later RequestReadWrite (we stop collecting forwards for them).
        self._ownership_passed: set = set()
        self.may_issue: Callable[[int], bool] = lambda node: True
        self.on_retire: Callable[[int], None] = lambda node: None
        self.timeout_cycles: Optional[int] = None
        self.detected_misspeculations = 0
        self.corner_cases_handled = 0
        #: Bumped on every recovery; delayed retries from before a recovery
        #: are dropped when they fire.
        self.generation = 0
        #: Completion context of the outstanding transaction.  The blocking
        #: processor guarantees at most one, so the (request, on_complete)
        #: pair lives on the controller instead of a per-transaction closure
        #: (one closure per miss is measurable at protocol rates, and the
        #: compiled snoop core completes through the same attributes).
        self._pending_request: Optional[MemoryRequest] = None
        self._pending_on_complete: Optional[Callable[[MemoryRequest], None]] = None

    # ================================================================ processor
    def access(self, request: MemoryRequest,
               on_complete: Callable[[MemoryRequest], None]) -> None:
        """Handle one processor memory reference (blocking)."""
        address = request.address
        request.issued_at = self.sim.now
        line = self.cache.lookup(address)
        state = line.state if line is not None else SnoopState.INVALID

        if request.op == MemoryOp.LOAD and state.has_valid_data:
            self.cache.record_hit()
            self.count("load_hits")
            request.value = line.value
            self._finish(request, on_complete, self.config.processor.l2_hit_cycles)
            return
        if request.op == MemoryOp.STORE and state.can_write:
            self.cache.record_hit()
            self.count("store_hits")
            if state == SnoopState.EXCLUSIVE:
                self.cache.set_state(address, SnoopState.MODIFIED)
            self.cache.set_value(address, request.value)
            self._finish(request, on_complete, self.config.processor.l2_hit_cycles)
            return

        self.cache.record_miss()
        self.count("load_misses" if request.op == MemoryOp.LOAD else "store_misses")
        self._issue_transaction(request, on_complete)

    def _finish(self, request: MemoryRequest,
                on_complete: Callable[[MemoryRequest], None], delay: int) -> None:
        def _done() -> None:
            request.completed_at = self.sim.now
            on_complete(request)
        self.schedule(delay, _done)

    # ============================================================= transactions
    def _issue_transaction(self, request: MemoryRequest,
                           on_complete: Callable[[MemoryRequest], None]) -> None:
        if self.transaction is not None:
            raise RuntimeError(f"{self.name}: second outstanding reference")
        if not self.may_issue(self.node_id):
            self._retry_issue(request, on_complete)
            return
        txn = Transaction(node=self.node_id, address=request.address,
                          op=request.op, started_at=self.sim.now)
        self._pending_request = request
        self._pending_on_complete = on_complete
        txn.on_complete = self._complete_current
        self.transaction = txn
        if self.timeout_cycles is not None:
            txn.timeout_event = self.schedule(
                self.timeout_cycles, lambda: self._transaction_timeout(txn))
        rtype = (BusRequestType.GETS if request.op == MemoryOp.LOAD
                 else BusRequestType.GETX)
        self.bus.issue(BusRequest(requestor=self.node_id, address=request.address,
                                  rtype=rtype))
        self.count("transactions_issued")

    def _retry_issue(self, request: MemoryRequest,
                     on_complete: Callable[[MemoryRequest], None]) -> None:
        # Slow-start gating: retry shortly (void if a recovery intervenes,
        # because the rolled-back processor will re-issue the reference).
        generation = self.generation
        self.schedule(50, lambda: (self._issue_transaction(request, on_complete)
                                   if generation == self.generation else None))

    def _complete_current(self, txn: Transaction) -> None:
        """``on_complete`` of the controller's single outstanding transaction."""
        self._transaction_done(txn, self._pending_request,
                               self._pending_on_complete)

    def _transaction_done(self, txn: Transaction, request: MemoryRequest,
                          on_complete: Callable[[MemoryRequest], None]) -> None:
        self.transaction = None
        self.on_retire(self.node_id)
        self.count("transactions_completed")
        if request.op == MemoryOp.STORE:
            if self.cache.contains(txn.address) and request.value is not None:
                self.cache.set_value(txn.address, request.value)
        else:
            line = self.cache.peek(txn.address)
            if line is not None and line.value is not None:
                request.value = line.value
            else:
                # Late-invalidated load: the data satisfied the load but the
                # line was not retained.
                request.value = getattr(txn, "value_hint", None)
        request.completed_at = self.sim.now
        on_complete(request)

    def _transaction_timeout(self, txn: Transaction) -> None:
        # The timeout event has fired: its handle is dead (the kernel pools
        # fired events) and must not be cancelled later.
        txn.timeout_event = None
        if txn.completed or self.transaction is not txn:
            return
        self.detected_misspeculations += 1
        self.count("timeout_detections")
        self._report(MisspeculationEvent(
            kind=SpeculationKind.INTERCONNECT_DEADLOCK,
            detected_at=self.sim.now, node=self.node_id, address=txn.address,
            description=f"snooping transaction {txn.txn_id} timed out"))

    # ================================================================== snooping
    def snoop(self, request: BusRequest) -> bool:
        """Observe an ordered request; returns True if we will supply data."""
        if request.requestor == self.node_id:
            return self._snoop_own(request)
        return self._snoop_foreign(request)

    # ------------------------------------------------------------- own requests
    def _snoop_own(self, request: BusRequest) -> bool:
        if request.rtype == BusRequestType.WRITEBACK:
            record = self.writebacks.pop(request.address, None)
            if record is not None:
                self.count("writebacks_ordered")
            return False
        # Own GETS/GETX ordered.
        txn = self.transaction
        if txn is not None and txn.address == request.address:
            self.count("own_request_ordered")
            txn.bus_ordered = True  # type: ignore[attr-defined]
            line = self.cache.peek(request.address)
            if line is not None and line.state.has_valid_data:
                # Upgrade: we already hold valid data (e.g. Shared -> store);
                # the global order of our request is what grants permission,
                # so we can complete from our own copy without a data
                # transfer.  Other sharers invalidate on their snoop.
                value = line.value if line.value is not None else 0
                self.schedule(1, lambda: self.receive_data(request.address, value))
                return True
        return False

    # --------------------------------------------------------- foreign requests
    def _snoop_foreign(self, request: BusRequest) -> bool:
        if request.rtype == BusRequestType.WRITEBACK:
            # Another node's writeback does not affect our state.
            return False
        address = request.address
        line = self.cache.peek(address)
        state = line.state if line is not None else SnoopState.INVALID
        record = self.writebacks.get(address)

        if request.rtype == BusRequestType.GETS:
            return self._snoop_foreign_gets(request, line, state, record)
        return self._snoop_foreign_getx(request, line, state, record)

    def _pending_store_txn(self, address: BlockAddress) -> Optional[Transaction]:
        """Our outstanding, already-ordered RequestReadWrite for ``address``."""
        txn = self.transaction
        if (txn is not None and txn.address == address and not txn.completed
                and txn.op == MemoryOp.STORE and not txn.data_received
                and getattr(txn, "bus_ordered", False)
                and address not in self._ownership_passed):
            return txn
        return None

    def _snoop_foreign_gets(self, request: BusRequest, line: Optional[CacheLine],
                            state: SnoopState,
                            record: Optional[SnoopWritebackRecord]) -> bool:
        if state.is_owner:
            # Supply data and keep a shared copy (M/E -> O keeps ownership of
            # the dirty data; O stays O).
            if state in (SnoopState.MODIFIED, SnoopState.EXCLUSIVE):
                self.cache.set_state(request.address, SnoopState.OWNED)
            self._supply(request, line.value if line is not None else 0)
            return True
        if record is not None and record.phase == WritebackPhase.WAITING_OWN_WB:
            # Still the owner until our Writeback is ordered.
            self._supply(request, record.value)
            return True
        if self._pending_store_txn(request.address) is not None:
            # The global order has already made us the next owner; we owe
            # this reader a forward once our data arrives (IM_AD transient).
            self._pending_forwards.setdefault(request.address, []).append(request)
            self.count("forwards_deferred")
            return True
        return False

    def _snoop_foreign_getx(self, request: BusRequest, line: Optional[CacheLine],
                            state: SnoopState,
                            record: Optional[SnoopWritebackRecord]) -> bool:
        supplied = False
        if state.is_owner:
            self._supply(request, line.value if line is not None else 0)
            supplied = True
        if state.has_valid_data:
            self.cache.set_state(request.address, SnoopState.INVALID)

        if self._pending_store_txn(request.address) is not None:
            # We are the owner-to-be; forward to this writer once our data
            # arrives, and stop collecting further forwards (ownership passes
            # to it in the global order).
            self._pending_forwards.setdefault(request.address, []).append(request)
            self._ownership_passed.add(request.address)
            self.count("forwards_deferred")
            supplied = True
        elif (self.transaction is not None
              and self.transaction.address == request.address
              and not self.transaction.completed
              and self.transaction.op == MemoryOp.LOAD
              and getattr(self.transaction, "bus_ordered", False)
              and not self.transaction.data_received):
            # Our ordered read will receive data that this later writer
            # immediately invalidates: use the value for the one load but do
            # not keep the line (IS_A "late invalidate" transient).
            self.transaction.invalidate_on_install = True  # type: ignore[attr-defined]
            self.count("late_invalidates")

        if record is not None:
            if record.phase == WritebackPhase.WAITING_OWN_WB:
                # First racing RequestReadWrite: supply data, lose ownership,
                # keep waiting for our own Writeback to be ordered.
                self._supply(request, record.value)
                record.phase = WritebackPhase.LOST_OWNERSHIP
                record.request.value = None  # our writeback is now stale
                self.count("writeback_race_first_getx")
                supplied = True
            elif record.phase == WritebackPhase.LOST_OWNERSHIP:
                # Second racing RequestReadWrite: the Section 3.2 corner case.
                self._corner_case(request)
        return supplied

    def _corner_case(self, request: BusRequest) -> None:
        if self.corner_case_detection_enabled:
            self.detected_misspeculations += 1
            self.count("corner_case_detections")
            self._report(MisspeculationEvent(
                kind=SpeculationKind.SNOOPING_CORNER_CASE,
                detected_at=self.sim.now, node=self.node_id,
                address=request.address,
                description=("second foreign RequestReadWrite observed while "
                             "awaiting own Writeback with ownership already lost"),
                details={"second_requestor": request.requestor}))
        else:
            # Full protocol: the transition is specified — we are no longer
            # the owner, the current owner supplies data, nothing to do.
            self.corner_cases_handled += 1
            self.count("corner_case_handled")

    def _supply(self, request: BusRequest, value: Optional[int]) -> None:
        self.count("cache_to_cache_transfers")
        self.schedule(self.CACHE_TO_CACHE_CYCLES,
                      lambda: self.deliver_data(request.requestor, request.address,
                                                value if value is not None else 0))

    # ================================================================== data path
    def receive_data(self, address: BlockAddress, value: int) -> None:
        """Data response arriving on the data network."""
        txn = self.transaction
        if txn is None or txn.address != address or txn.completed:
            self.count("stale_data")
            return
        if txn.data_received:
            self.count("duplicate_data")
            return
        txn.data_received = True
        txn.value_hint = value  # type: ignore[attr-defined]
        self._install_line(txn, value)
        if getattr(txn, "invalidate_on_install", False) and self.cache.contains(address):
            # Late invalidate: the value satisfies this one load, the line is
            # not kept (a later writer already owns the block).
            self.cache.set_state(address, SnoopState.INVALID)
        txn.complete()
        self._process_pending_forwards(address)

    def _process_pending_forwards(self, address: BlockAddress) -> None:
        """Serve the foreign requests ordered between our GETX and our data."""
        pending = self._pending_forwards.pop(address, [])
        self._ownership_passed.discard(address)
        if not pending:
            return
        line = self.cache.peek(address)
        value = line.value if line is not None and line.value is not None else 0
        for request in pending:
            self._supply(request, value)
            if request.rtype == BusRequestType.GETX:
                if self.cache.contains(address):
                    self.cache.set_state(address, SnoopState.INVALID)
            else:
                if self.cache.contains(address):
                    self.cache.set_state(address, SnoopState.OWNED)

    def _install_line(self, txn: Transaction, value: int) -> None:
        target = (SnoopState.SHARED if txn.op == MemoryOp.LOAD
                  else SnoopState.MODIFIED)
        if self.cache.contains(txn.address):
            self.cache.set_state(txn.address, target)
            self.cache.set_value(txn.address, value)
            return
        if (self.cache.occupancy_of_set(txn.address)
                >= self.config.l2.associativity):
            victim = self.cache.find_victim(
                txn.address, evictable=lambda line: self._evictable(line))
            if victim is None:
                generation = self.generation
                self.schedule(20, lambda: (self._install_line(txn, value)
                                           if generation == self.generation else None))
                return
            self._evict(victim)
        self.cache.allocate(txn.address, target, value)

    def _evictable(self, line: CacheLine) -> bool:
        return line.address not in self.writebacks and (
            self.transaction is None or line.address != self.transaction.address)

    def _evict(self, victim: CacheLine) -> None:
        state: SnoopState = victim.state
        if state.is_dirty:
            request = BusRequest(requestor=self.node_id, address=victim.address,
                                 rtype=BusRequestType.WRITEBACK,
                                 value=victim.value if victim.value is not None else 0)
            self.writebacks[victim.address] = SnoopWritebackRecord(
                address=victim.address,
                value=victim.value if victim.value is not None else 0,
                request=request, issued_at=self.sim.now)
            self.bus.issue(request)
            self.count("writebacks_issued")
        else:
            self.count("silent_evictions")
        self.cache.set_state(victim.address, SnoopState.INVALID)

    # ==================================================================== misc
    def squash_transient_state(self) -> None:
        """Drop outstanding transactions/writebacks (system recovery)."""
        self.generation += 1
        if self.transaction is not None and self.transaction.timeout_event is not None:
            self.transaction.timeout_event.cancel()
            self.transaction.timeout_event = None
        self.transaction = None
        self.writebacks.clear()
        self._pending_forwards.clear()
        self._ownership_passed.clear()

    def _report(self, event: MisspeculationEvent) -> None:
        if self.misspeculation_reporter is not None:
            self.misspeculation_reporter(event)

    def invariant_errors(self) -> List[str]:
        errors: List[str] = []
        for line in self.cache.lines():
            if line.state == SnoopState.INVALID:
                errors.append(f"{self.name}: invalid line resident {line.address:#x}")
        return errors

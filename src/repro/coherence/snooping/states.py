"""States of the MOESI snooping protocol."""

from __future__ import annotations

from enum import Enum


class SnoopState(str, Enum):
    """Per-block stable states at a snooping cache controller (MOESI)."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def has_valid_data(self) -> bool:
        return self != SnoopState.INVALID

    @property
    def is_owner(self) -> bool:
        """States in which this cache must supply data to snooped requests."""
        return self in (SnoopState.MODIFIED, SnoopState.OWNED, SnoopState.EXCLUSIVE)

    @property
    def can_write(self) -> bool:
        return self in (SnoopState.MODIFIED, SnoopState.EXCLUSIVE)

    @property
    def is_dirty(self) -> bool:
        return self in (SnoopState.MODIFIED, SnoopState.OWNED)


class WritebackPhase(str, Enum):
    """Phases of an outstanding Writeback (the Section 3.2 transients).

    ``WAITING_OWN_WB`` is the first transient state: the Writeback has been
    issued but not yet observed on the address network, and the cache is
    still the owner.  ``LOST_OWNERSHIP`` is the second transient state,
    entered when a foreign RequestReadWrite is observed first.  Observing
    *another* foreign RequestReadWrite while in ``LOST_OWNERSHIP`` is the
    corner case: handled in the FULL variant, detected as a mis-speculation
    in the SPECULATIVE variant.
    """

    WAITING_OWN_WB = "waiting-own-wb"
    LOST_OWNERSHIP = "lost-ownership"

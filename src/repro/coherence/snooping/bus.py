"""Totally ordered broadcast address network ("the bus").

Broadcast snooping relies on a network that establishes a single global
order of coherence requests and delivers every request to every controller
in that order.  The model here is a split-transaction bus: requests queue at
the arbiter, one request is *ordered* per arbitration slot, and the ordered
request is then snooped by all cache controllers and the memory controller.
Data responses do not use the bus; they travel on a point-to-point data
network modelled as a fixed latency chosen by the responder.

The bus is also the snooping system's logical time base for SafetyNet:
checkpoints are taken every N ordered requests (Table 2: 3,000 requests).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, List, Optional

from repro.coherence.common import BlockAddress
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry


class BusRequestType(str, Enum):
    """Request types broadcast on the address network."""

    GETS = "RequestReadOnly"
    GETX = "RequestReadWrite"
    WRITEBACK = "Writeback"


_REQUEST_IDS = itertools.count()


@dataclass
class BusRequest:
    """One coherence request queued for / ordered on the address network."""

    requestor: int
    address: BlockAddress
    rtype: BusRequestType
    #: Data value carried by Writebacks.
    value: Optional[int] = None
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    issued_at: int = -1
    ordered_at: int = -1


#: A snooper receives every ordered request and returns True when it will
#: supply the data for it (i.e. it is the owner).
Snooper = Callable[[BusRequest], bool]


class AddressBus(Component):
    """Split-transaction ordered broadcast network."""

    def __init__(self, sim: Simulator, *, arbitration_cycles: int = 10,
                 snoop_latency_cycles: int = 12,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__("bus", sim, stats)
        if arbitration_cycles < 1:
            raise ValueError("arbitration_cycles must be >= 1")
        self.arbitration_cycles = arbitration_cycles
        self.snoop_latency_cycles = snoop_latency_cycles
        self._queue: Deque[BusRequest] = deque()
        self._snoopers: List[Snooper] = []
        self._memory_snooper: Optional[Callable[[BusRequest, bool], None]] = None
        self._ordered_hooks: List[Callable[[BusRequest], None]] = []
        self._busy = False
        self.requests_ordered = 0

    # ------------------------------------------------------------------ wiring
    def attach_snooper(self, snooper: Snooper) -> None:
        """Attach a cache controller's snoop function."""
        self._snoopers.append(snooper)

    def attach_memory(self, memory_snooper: Callable[["BusRequest", bool], None]) -> None:
        """Attach the memory controller.

        The memory controller is called after the caches with a flag telling
        it whether some cache claimed ownership of the data response.
        """
        self._memory_snooper = memory_snooper

    def add_ordered_hook(self, hook: Callable[[BusRequest], None]) -> None:
        """Called once per ordered request (SafetyNet logical time, stats)."""
        self._ordered_hooks.append(hook)

    # ------------------------------------------------------------------- issue
    def issue(self, request: BusRequest) -> None:
        """Queue a request for arbitration."""
        request.issued_at = self.sim.now
        self._queue.append(request)
        self.count("requests_issued")
        self._try_start()

    @property
    def queued_requests(self) -> int:
        return len(self._queue)

    def _try_start(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        self.schedule(self.arbitration_cycles, self._order_next,
                      label="bus.arbitrate")

    def _order_next(self) -> None:
        self._busy = False
        if not self._queue:
            return
        request = self._queue.popleft()
        request.ordered_at = self.sim.now
        self.requests_ordered += 1
        self.count("requests_ordered")
        self.schedule(self.snoop_latency_cycles,
                      lambda: self._broadcast(request), label="bus.snoop")
        # Keep the pipeline going: next request can arbitrate immediately.
        self._try_start()

    def _broadcast(self, request: BusRequest) -> None:
        owner_found = False
        for snooper in self._snoopers:
            if snooper(request):
                owner_found = True
        if self._memory_snooper is not None:
            self._memory_snooper(request, owner_found)
        for hook in self._ordered_hooks:
            hook(request)

    # ---------------------------------------------------------------- recovery
    def flush(self) -> int:
        """Drop every queued (un-ordered) request: part of system recovery."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

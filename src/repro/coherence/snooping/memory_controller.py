"""Memory controller of the snooping system.

The memory observes every ordered request on the address network.  It
supplies data when no cache claims ownership, and it absorbs Writebacks that
are still owned by their writer when they are ordered (a Writeback whose
writer lost ownership to an intervening RequestReadWrite is stale and is
dropped, matching the protocol's ownership hand-off rules).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.coherence.common import BlockAddress
from repro.coherence.snooping.bus import BusRequest, BusRequestType
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

#: Observer of memory-value changes (SafetyNet undo logging).
MemoryObserver = Callable[[BlockAddress, str, object, object], None]
#: Callback used to deliver data to a requestor: (requestor, address, value).
DataDelivery = Callable[[int, BlockAddress, int], None]


class SnoopingMemoryController(Component):
    """The (logically single) memory image behind the snooping caches."""

    def __init__(self, sim: Simulator, *, memory_latency_cycles: int,
                 deliver_data: DataDelivery,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__("snoop-memory", sim, stats)
        self.memory_latency_cycles = memory_latency_cycles
        self.deliver_data = deliver_data
        self.values: Dict[BlockAddress, int] = {}
        self._observer: Optional[MemoryObserver] = None
        #: Returns True when the writer of a Writeback was still the owner at
        #: ordering time (i.e. memory must accept it).  The default checks the
        #: request's data value, which the writing cache controller nulls out
        #: when it loses ownership before its Writeback is ordered.
        self.writeback_still_owned: Callable[[BusRequest], bool] = (
            lambda req: req.value is not None)

    # -------------------------------------------------------------- observers
    def set_observer(self, observer: Optional[MemoryObserver]) -> None:
        self._observer = observer

    def _notify(self, address: BlockAddress, old, new) -> None:
        if self._observer is not None and old != new:
            self._observer(address, "value", old, new)

    # ------------------------------------------------------------------ values
    def read(self, address: BlockAddress) -> int:
        return self.values.get(address, 0)

    def write(self, address: BlockAddress, value: int) -> None:
        old = self.values.get(address, 0)
        self._notify(address, old, value)
        self.values[address] = value

    def restore_field(self, address: BlockAddress, field_name: str, value) -> None:
        """Apply one SafetyNet undo record."""
        if field_name != "value":  # pragma: no cover - defensive
            raise ValueError(f"unknown memory field {field_name!r}")
        self.values[address] = value if value is not None else 0

    # ------------------------------------------------------------------- snoop
    def snoop(self, request: BusRequest, owner_found: bool) -> None:
        """Observe an ordered request (called by the address bus)."""
        if request.rtype == BusRequestType.WRITEBACK:
            if self.writeback_still_owned(request) and request.value is not None:
                self.write(request.address, request.value)
                self.count("writebacks_accepted")
            else:
                self.count("writebacks_dropped")
            return
        if owner_found:
            # A cache will supply the data (cache-to-cache transfer).
            self.count("cache_supplied")
            return
        self.count("memory_supplied")
        value = self.read(request.address)
        self.schedule(self.memory_latency_cycles,
                      lambda: self.deliver_data(request.requestor, request.address, value),
                      label="memory.data")

"""Stable states of the MOSI directory protocol.

Transient states are not enumerated here because they are represented
structurally: an outstanding :class:`repro.coherence.common.Transaction`
plays the role of the IS_D / IM_AD transient states, and an outstanding
:class:`repro.coherence.directory.cache_controller.WritebackRecord` plays the
role of MI_A / OI_A / II_A.  This mirrors how the paper talks about the
protocol — "a handful of stable states (MOESI)" in the textbook view, with
the transient complexity living in the controllers.
"""

from __future__ import annotations

from enum import Enum


class CacheState(str, Enum):
    """Per-block stable states at an L2 cache controller (MOSI)."""

    MODIFIED = "M"
    OWNED = "O"
    SHARED = "S"
    INVALID = "I"

    @property
    def has_valid_data(self) -> bool:
        return self != CacheState.INVALID

    @property
    def is_owner(self) -> bool:
        return self in (CacheState.MODIFIED, CacheState.OWNED)

    @property
    def can_write(self) -> bool:
        return self == CacheState.MODIFIED


class DirectoryState(str, Enum):
    """Per-block stable states at the directory."""

    UNCACHED = "U"
    SHARED = "S"
    OWNED = "M"   #: some cache holds the block in M or O

"""Coherence payloads carried inside network messages.

The interconnect treats payloads as opaque; this dataclass is the contract
between the directory controller and the cache controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class CoherencePayload:
    """Protocol-level payload of a directory-protocol message.

    Attributes
    ----------
    requestor:
        Node id on whose behalf a forwarded request / invalidation is sent,
        and to whom the Data/Ack responses must be directed.
    acks_expected:
        Number of invalidation acknowledgements the requestor must collect
        before its store can complete.  Carried on Data and forwarded-request
        messages (the owner copies it into the Data it sends).
    value:
        Data value of the block (an integer token used for correctness
        checking).  ``None`` on Data messages means "you already hold the
        freshest copy" (upgrade responses).
    txn_id:
        Transaction id of the requestor's outstanding transaction, echoed in
        responses for bookkeeping/debugging.
    """

    requestor: int
    acks_expected: int = 0
    value: Optional[int] = None
    txn_id: Optional[int] = None

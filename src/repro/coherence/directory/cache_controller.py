"""Cache controller (L2) of the MOSI directory protocol.

One cache controller lives on every node.  The processor issues loads and
stores to it; misses become coherence transactions over the torus network.
Transient states are represented structurally:

* an outstanding :class:`repro.coherence.common.Transaction` is the classic
  IS_D / IM_AD transient (request issued, waiting for Data and, for stores,
  invalidation acks), and
* an outstanding :class:`WritebackRecord` is the MI_A / OI_A / II_A
  transient (Writeback issued, waiting for the WritebackAck; the record
  keeps the block's data so racing forwarded requests can still be served).

Mis-speculation detection (the speculative variant):  a ForwardedRequest for
a block that this controller has neither a valid copy of nor a pending
writeback for is the "one specific invalid transition" of Section 3.1 —
it can only be produced by the network delivering the directory's
WritebackAck ahead of an earlier ForwardedRequest — and triggers a system
recovery through the mis-speculation reporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.coherence.cache import CacheArray, CacheLine
from repro.coherence.common import BlockAddress, MemoryOp, MemoryRequest, Transaction
from repro.coherence.directory.messages import CoherencePayload
from repro.coherence.directory.states import CacheState
from repro.core.events import MisspeculationEvent, SpeculationKind
from repro.interconnect.message import MessageClass, NetworkMessage
from repro.sim.component import Component
from repro.sim.config import ProtocolVariant, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

SendFn = Callable[[int, MessageClass, BlockAddress, CoherencePayload], None]
HomeFn = Callable[[BlockAddress], int]
MisspeculationReporter = Callable[[MisspeculationEvent], None]


@dataclass
class WritebackRecord:
    """State of one outstanding Writeback (the MI_A / OI_A transient)."""

    address: BlockAddress
    value: int
    #: False once a ForwardedRequestReadWrite took ownership away while the
    #: writeback was still outstanding (the II_A transient).
    still_owner: bool = True
    issued_at: int = 0


class DirectoryCacheController(Component):
    """Per-node L2 cache controller speaking the MOSI directory protocol."""

    def __init__(self, node_id: int, sim: Simulator, config: SystemConfig,
                 cache: CacheArray, send: SendFn, home: HomeFn, *,
                 misspeculation_reporter: Optional[MisspeculationReporter] = None,
                 stats: Optional[StatsRegistry] = None) -> None:
        super().__init__(f"l2ctrl{node_id}", sim, stats)
        self.node_id = node_id
        self.config = config
        self.variant = config.variant
        #: Whether the S1 detection path is live: the speculative variant
        #: with the ``directory-p2p-order`` design enabled.  Derived from
        #: the configuration so directly constructed controllers (unit
        #: tests) behave like system-built ones; the speculation layer
        #: (:mod:`repro.speculation.detectors`) arms the matching
        #: forward-progress policy.
        self.p2p_detection_enabled = (
            config.variant == ProtocolVariant.SPECULATIVE
            and config.speculation.speculates(
                SpeculationKind.DIRECTORY_P2P_ORDER.value))
        self.cache = cache
        self.send = send
        self.home = home
        self.misspeculation_reporter = misspeculation_reporter
        #: At most one outstanding demand transaction (blocking processor).
        self.transaction: Optional[Transaction] = None
        #: Outstanding writebacks by address.
        self.writebacks: Dict[BlockAddress, WritebackRecord] = {}
        #: Hook installed by the system to bound outstanding transactions
        #: during slow-start; returns True when a new transaction may issue.
        self.may_issue: Callable[[int], bool] = lambda node: True
        #: Hook called when a transaction is retired (slow-start accounting).
        self.on_retire: Callable[[int], None] = lambda node: None
        #: Timeout configuration; installed by the system builder.
        self.timeout_cycles: Optional[int] = None
        self.detected_misspeculations = 0
        #: Bumped on every recovery; delayed actions from before a recovery
        #: (slow-start retries, install retries) are dropped when they fire.
        self.generation = 0
        #: Lazily bound miss-latency histogram (bound once per controller).
        self._miss_latency_hist = None
        #: Completion context of the outstanding transaction.  The blocking
        #: processor guarantees at most one, so the (request, on_complete)
        #: pair lives on the controller instead of a per-transaction closure
        #: (one closure per miss is measurable at protocol rates, and the
        #: compiled transaction core completes through the same attributes).
        self._pending_request: Optional[MemoryRequest] = None
        self._pending_on_complete: Optional[Callable[[MemoryRequest], None]] = None
        #: Message dispatch table, built once (a fresh dict per message is
        #: measurable at protocol rates).
        self._handlers: Dict[MessageClass, Callable[[BlockAddress, CoherencePayload], None]] = {
            MessageClass.FORWARDED_REQUEST_READ_ONLY: self._handle_fwd_gets,
            MessageClass.FORWARDED_REQUEST_READ_WRITE: self._handle_fwd_getx,
            MessageClass.INVALIDATION: self._handle_invalidation,
            MessageClass.WRITEBACK_ACK: self._handle_writeback_ack,
            MessageClass.DATA: self._handle_data,
            MessageClass.ACK: self._handle_ack,
            MessageClass.NACK: self._handle_nack,
        }

    # ================================================================ processor
    def access(self, request: MemoryRequest,
               on_complete: Callable[[MemoryRequest], None]) -> None:
        """Handle one processor memory reference.

        ``on_complete`` is called (possibly after coherence activity) exactly
        once when the reference retires.  The caller (processor model) only
        ever has one reference outstanding.
        """
        address = request.address
        request.issued_at = self.sim._now
        cache = self.cache
        line = cache.lookup(address)
        state = line.state if line is not None else CacheState.INVALID

        # Identity tests on the enum members (hot path: once per L1 miss;
        # str-enum `==` and the state properties route through str compare).
        is_load = request.op is MemoryOp.LOAD
        if is_load and state is not CacheState.INVALID:
            cache.hits += 1
            self.count("load_hits")
            request.value = line.value
            self._finish(request, on_complete, self.config.processor.l2_hit_cycles)
            return
        if not is_load and state is CacheState.MODIFIED:
            cache.hits += 1
            self.count("store_hits")
            cache.set_value(address, request.value)
            self._finish(request, on_complete, self.config.processor.l2_hit_cycles)
            return

        # Miss (or upgrade): issue a coherence transaction.
        cache.misses += 1
        self.count("load_misses" if is_load else "store_misses")
        self._issue_transaction(request, on_complete)

    def _finish(self, request: MemoryRequest,
                on_complete: Callable[[MemoryRequest], None], delay: int) -> None:
        def _done() -> None:
            request.completed_at = self.sim.now
            on_complete(request)
        self.schedule(delay, _done)

    # ============================================================= transactions
    def _issue_transaction(self, request: MemoryRequest,
                           on_complete: Callable[[MemoryRequest], None]) -> None:
        if self.transaction is not None:
            raise RuntimeError(
                f"{self.name}: blocking processor issued a second reference")
        if not self.may_issue(self.node_id):
            self._retry_issue(request, on_complete)
            return

        txn = Transaction(node=self.node_id, address=request.address,
                          op=request.op, started_at=self.sim._now)
        self._pending_request = request
        self._pending_on_complete = on_complete
        txn.on_complete = self._complete_current
        self.transaction = txn

        if self.timeout_cycles is not None:
            txn.timeout_event = self.schedule(
                self.timeout_cycles, lambda: self._transaction_timeout(txn),
                label=f"{self.name}.timeout")

        msg_class = (MessageClass.REQUEST_READ_ONLY if request.op is MemoryOp.LOAD
                     else MessageClass.REQUEST_READ_WRITE)
        self.send(self.home(request.address), msg_class, request.address,
                  CoherencePayload(requestor=self.node_id, txn_id=txn.txn_id))
        self.count("transactions_issued")

    def _retry_issue(self, request: MemoryRequest,
                     on_complete: Callable[[MemoryRequest], None]) -> None:
        # Slow-start gating: retry shortly (void if a recovery intervenes,
        # because the rolled-back processor will re-issue the reference).
        generation = self.generation
        self.schedule(50, lambda: (self._issue_transaction(request, on_complete)
                                   if generation == self.generation else None))

    def _complete_current(self, txn: Transaction) -> None:
        """``on_complete`` of the controller's single outstanding transaction."""
        self._transaction_done(txn, self._pending_request,
                               self._pending_on_complete)

    def _transaction_done(self, txn: Transaction, request: MemoryRequest,
                          on_complete: Callable[[MemoryRequest], None]) -> None:
        self.transaction = None
        self.on_retire(self.node_id)
        # Send the FinalAck that unblocks the directory for this block.
        self.send(self.home(txn.address), MessageClass.FINAL_ACK, txn.address,
                  CoherencePayload(requestor=self.node_id, txn_id=txn.txn_id))
        self.count("transactions_completed")
        hist = self._miss_latency_hist
        if hist is None:
            hist = self._miss_latency_hist = self.stats.histogram(
                "l2.miss_latency", bucket_width=64)
        hist.record(self.sim._now - txn.started_at)
        if request.op is MemoryOp.STORE:
            # Apply the store's value now that the block is writable here.
            if self.cache.contains(txn.address) and request.value is not None:
                self.cache.set_value(txn.address, request.value)
        else:
            request.value = self._read_value(txn.address)
        request.completed_at = self.sim.now
        on_complete(request)

    def _read_value(self, address: BlockAddress) -> Optional[int]:
        line = self.cache.peek(address)
        return line.value if line is not None else None

    def _transaction_timeout(self, txn: Transaction) -> None:
        """A coherence transaction timed out: the Section 4 deadlock detector."""
        # The timeout event has fired: its handle is dead (the kernel pools
        # fired events) and must not be cancelled later.
        txn.timeout_event = None
        if txn.completed or self.transaction is not txn:
            return
        self.detected_misspeculations += 1
        self.count("timeout_detections")
        self._report(MisspeculationEvent(
            kind=SpeculationKind.INTERCONNECT_DEADLOCK,
            detected_at=self.sim.now,
            node=self.node_id,
            address=txn.address,
            description=(f"transaction {txn.txn_id} ({txn.op.value} {txn.address:#x}) "
                         f"timed out after {self.timeout_cycles} cycles"),
            details={"txn_id": txn.txn_id}))

    # ============================================================ network input
    def handle_message(self, message: NetworkMessage) -> None:
        """Entry point for ForwardedRequest / Response messages."""
        payload: CoherencePayload = message.payload
        address = message.address
        assert address is not None
        handler = self._handlers.get(message.msg_class)
        if handler is None:
            raise ValueError(f"{self.name}: unexpected message {message.msg_class}")
        handler(address, payload)

    # -------------------------------------------------------- forwarded requests
    def _handle_fwd_gets(self, address: BlockAddress, payload: CoherencePayload) -> None:
        line = self.cache.peek(address)
        if line is not None and (line.state is CacheState.MODIFIED
                                 or line.state is CacheState.OWNED):
            # Stay owner, downgrade M -> O, supply data to the requestor.
            if line.state is CacheState.MODIFIED:
                self.cache.set_state(address, CacheState.OWNED)
            self._send_data_to(payload.requestor, address, line.value,
                               acks=payload.acks_expected)
            self.count("fwd_gets_served")
            return
        record = self.writebacks.get(address)
        if record is not None and record.still_owner:
            # MI_A / OI_A: the writeback is still in flight, we still have
            # the data in the writeback buffer.
            self._send_data_to(payload.requestor, address, record.value,
                               acks=payload.acks_expected)
            self.count("fwd_gets_served_from_wb")
            return
        self._forwarded_request_without_data(
            address, payload, MessageClass.FORWARDED_REQUEST_READ_ONLY)

    def _handle_fwd_getx(self, address: BlockAddress, payload: CoherencePayload) -> None:
        line = self.cache.peek(address)
        if line is not None and (line.state is CacheState.MODIFIED
                                 or line.state is CacheState.OWNED):
            self._send_data_to(payload.requestor, address, line.value,
                               acks=payload.acks_expected)
            self.cache.set_state(address, CacheState.INVALID)
            self.count("fwd_getx_served")
            return
        record = self.writebacks.get(address)
        if record is not None and record.still_owner:
            # MI_A -> II_A: supply data, give up ownership, keep waiting for
            # the WritebackAck.
            self._send_data_to(payload.requestor, address, record.value,
                               acks=payload.acks_expected)
            record.still_owner = False
            self.count("fwd_getx_served_from_wb")
            return
        self._forwarded_request_without_data(
            address, payload, MessageClass.FORWARDED_REQUEST_READ_WRITE)

    def _forwarded_request_without_data(self, address: BlockAddress,
                                        payload: CoherencePayload,
                                        msg_class: MessageClass) -> None:
        """A forwarded request arrived for a block we cannot supply.

        With point-to-point ordering this transition is unreachable: the
        directory only forwards to the current owner, and an owner only loses
        its data after the directory's WritebackAck, which was sent *after*
        the forwarded request on the same virtual network.  Observing it
        therefore proves the network reordered the two messages.
        """
        if self.p2p_detection_enabled:
            self.detected_misspeculations += 1
            self.count("p2p_order_detections")
            self._report(MisspeculationEvent(
                kind=SpeculationKind.DIRECTORY_P2P_ORDER,
                detected_at=self.sim.now,
                node=self.node_id,
                address=address,
                description=(f"{msg_class.value} received in state I "
                             "(WritebackAck overtook a ForwardedRequest)"),
                details={"requestor": payload.requestor}))
        else:
            # Full protocol (or S1 disabled): the directory already supplied
            # data to the requestor when it observed the racing writeback,
            # so the stale forward can be ignored.
            self.count("race_forward_ignored")

    # ------------------------------------------------------------ invalidations
    def _handle_invalidation(self, address: BlockAddress, payload: CoherencePayload) -> None:
        line = self.cache.peek(address)
        if line is not None:
            self.cache.set_state(address, CacheState.INVALID)
        # Acknowledge to the requestor even if we had already silently
        # evicted our Shared copy.
        self.send(payload.requestor, MessageClass.ACK, address,
                  CoherencePayload(requestor=payload.requestor))
        self.count("invalidations")

    # -------------------------------------------------------------- writebacks
    def _handle_writeback_ack(self, address: BlockAddress, payload: CoherencePayload) -> None:
        record = self.writebacks.pop(address, None)
        if record is None:
            self.count("spurious_writeback_acks")
            return
        self.count("writebacks_retired")

    # ---------------------------------------------------------------- responses
    def _handle_data(self, address: BlockAddress, payload: CoherencePayload) -> None:
        txn = self.transaction
        if txn is None or txn.address != address or txn.completed:
            # Duplicate data (full-variant race handling) or data for a
            # transaction squashed by recovery.
            self.count("stale_data_messages")
            return
        if txn.data_received:
            self.count("duplicate_data_messages")
            return
        txn.data_received = True
        txn.acks_needed = max(txn.acks_needed, payload.acks_expected)
        self._install_line(txn, payload.value)
        self._maybe_complete(txn)

    def _handle_ack(self, address: BlockAddress, payload: CoherencePayload) -> None:
        txn = self.transaction
        if txn is None or txn.address != address or txn.completed:
            self.count("stale_acks")
            return
        txn.acks_received += 1
        self._maybe_complete(txn)

    def _handle_nack(self, address: BlockAddress, payload: CoherencePayload) -> None:
        """Nacked request: re-issue after a short backoff (not used by default)."""
        txn = self.transaction
        if txn is None or txn.address != address:
            return
        self.count("nacks")
        msg_class = (MessageClass.REQUEST_READ_ONLY if txn.op == MemoryOp.LOAD
                     else MessageClass.REQUEST_READ_WRITE)
        self.schedule(100, lambda: self.send(
            self.home(address), msg_class, address,
            CoherencePayload(requestor=self.node_id, txn_id=txn.txn_id)))

    def _maybe_complete(self, txn: Transaction) -> None:
        if txn.satisfied and not txn.completed:
            txn.complete()

    # ----------------------------------------------------------- line handling
    def _install_line(self, txn: Transaction, value: Optional[int]) -> None:
        target_state = (CacheState.SHARED if txn.op is MemoryOp.LOAD
                        else CacheState.MODIFIED)
        existing = self.cache.peek(txn.address)
        if existing is not None:
            # Upgrade: keep our (fresher) data when the directory sent None.
            self.cache.set_state(txn.address, target_state)
            if value is not None:
                self.cache.set_value(txn.address, value)
            return
        install_value = value if value is not None else 0
        victim = self.cache.find_victim(
            txn.address, evictable=lambda line: self._evictable(line))
        cache_set_full = (self.cache.occupancy_of_set(txn.address)
                          >= self.config.l2.associativity)
        if cache_set_full and victim is None:
            # Every line in the set is mid-transaction; extremely rare with
            # 4-way sets and a blocking processor.  Retry shortly.
            generation = self.generation
            self.schedule(20, lambda: (self._install_line(txn, value)
                                       if generation == self.generation else None))
            return
        if cache_set_full and victim is not None:
            self._evict(victim)
        self.cache.allocate(txn.address, target_state, install_value)

    def _evictable(self, line: CacheLine) -> bool:
        return line.address not in self.writebacks and (
            self.transaction is None or line.address != self.transaction.address)

    def _evict(self, victim: CacheLine) -> None:
        """Evict a line chosen by LRU, issuing a Writeback if it is dirty."""
        state: CacheState = victim.state
        if state is CacheState.MODIFIED or state is CacheState.OWNED:
            record = WritebackRecord(address=victim.address,
                                     value=victim.value if victim.value is not None else 0,
                                     issued_at=self.sim.now)
            self.writebacks[victim.address] = record
            self.send(self.home(victim.address), MessageClass.WRITEBACK,
                      victim.address,
                      CoherencePayload(requestor=self.node_id, value=record.value))
            self.count("writebacks_issued")
        else:
            self.count("silent_evictions")
        self.cache.set_state(victim.address, CacheState.INVALID)

    def _send_data_to(self, requestor: int, address: BlockAddress,
                      value: Optional[int], *, acks: int) -> None:
        self.send(requestor, MessageClass.DATA, address,
                  CoherencePayload(requestor=requestor, acks_expected=acks,
                                   value=value if value is not None else 0))

    # ---------------------------------------------------------------- recovery
    def squash_transient_state(self) -> None:
        """Drop outstanding transactions and writebacks (system recovery).

        The processor that owns the squashed transaction is rolled back by
        the recovery manager and will re-issue its reference; cache stable
        state is restored from the SafetyNet undo log.
        """
        self.generation += 1
        if self.transaction is not None and self.transaction.timeout_event is not None:
            self.transaction.timeout_event.cancel()
            self.transaction.timeout_event = None
        self.transaction = None
        self.writebacks.clear()

    # --------------------------------------------------------------- reporting
    def _report(self, event: MisspeculationEvent) -> None:
        if self.misspeculation_reporter is not None:
            self.misspeculation_reporter(event)

    # ------------------------------------------------------------------ checks
    def invariant_errors(self) -> List[str]:
        errors: List[str] = []
        for line in self.cache.lines():
            if line.state == CacheState.INVALID:
                errors.append(f"{self.name}: invalid line left in array {line.address:#x}")
        return errors

"""Directory controller (home node) of the MOSI directory protocol.

One directory controller lives on every node and owns the directory entries
and memory for the blocks whose home is that node (blocks are interleaved
across nodes by block address).

The controller is a *blocking* directory: while a transaction that required
forwarding or invalidation is in flight, further requests for the same block
are queued and dispatched when the requestor's FinalAck arrives.  This is a
standard simplification that removes a large family of races and leaves
exactly the writeback race of Section 3.1 — the race whose handling the
speculative design chooses to *not* implement and instead detect.

Variant behaviour on a Writeback that races with an in-flight forwarded
request (the block's owner wrote the block back while the directory had
already forwarded another processor's request to it):

* ``SPECULATIVE`` — the directory acknowledges the writeback and relies on
  point-to-point ordering to guarantee the owner saw the forwarded request
  before the WritebackAck (so the owner supplied data to the requestor
  before downgrading).  If the network reordered the two messages, the cache
  controller detects it (see
  :mod:`repro.coherence.directory.cache_controller`).
* ``FULL`` — in addition, the directory sends the written-back data straight
  to the racing requestor, so correctness no longer depends on message
  ordering.  This is the extra design complexity the paper's approach avoids.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.coherence.common import BlockAddress, MemoryOp
from repro.coherence.directory.messages import CoherencePayload
from repro.coherence.directory.states import DirectoryState
from repro.interconnect.message import MessageClass, NetworkMessage
from repro.sim.component import Component
from repro.sim.config import ProtocolVariant, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

#: Signature used to hand outbound messages to the network layer:
#: send(dst, msg_class, address, payload)
SendFn = Callable[[int, MessageClass, BlockAddress, CoherencePayload], None]

#: Observer of directory-entry changes: (address, field, old, new).
EntryObserver = Callable[[BlockAddress, str, object, object], None]


@dataclass
class _BusyTransaction:
    """The in-flight transaction a busy directory entry is waiting on."""

    requestor: int
    op: MemoryOp
    acks_expected: int = 0


@dataclass
class DirectoryEntry:
    """Directory state for one memory block."""

    address: BlockAddress
    state: DirectoryState = DirectoryState.UNCACHED
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)
    value: int = 0
    busy: Optional[_BusyTransaction] = None
    pending: Deque[Tuple[int, MessageClass, CoherencePayload]] = field(default_factory=deque)

    @property
    def is_busy(self) -> bool:
        return self.busy is not None


class DirectoryController(Component):
    """The directory + memory controller of one home node."""

    #: Latency of a directory lookup that does not touch DRAM.
    DIRECTORY_LOOKUP_CYCLES = 20

    def __init__(self, node_id: int, sim: Simulator, config: SystemConfig,
                 send: SendFn, *, stats: Optional[StatsRegistry] = None) -> None:
        super().__init__(f"dir{node_id}", sim, stats)
        self.node_id = node_id
        self.config = config
        self.variant = config.variant
        #: Hoisted str-enum comparison (checked per writeback race).
        self._full_variant = config.variant == ProtocolVariant.FULL
        self.send = send
        self.entries: Dict[BlockAddress, DirectoryEntry] = {}
        self._observer: Optional[EntryObserver] = None
        self.requests_handled = 0
        self.writeback_races = 0
        #: Bumped on every recovery; delayed protocol actions scheduled under
        #: an older generation are dropped when they fire.
        self.generation = 0

    def _schedule_protocol(self, delay: int, action: Callable[[], None]) -> None:
        """Schedule a protocol action that is void if a recovery intervenes."""
        generation = self.generation

        def _run() -> None:
            if generation == self.generation:
                action()
        # Inline of Component.schedule: one push per protocol action.
        sim = self.sim
        sim.queue.push(sim._now + delay, _run, 0, self.name)

    # -------------------------------------------------------------- observers
    def set_observer(self, observer: Optional[EntryObserver]) -> None:
        """Install the change observer (used by the SafetyNet undo log)."""
        self._observer = observer

    def _notify(self, address: BlockAddress, field_name: str, old, new) -> None:
        if self._observer is not None and old != new:
            self._observer(address, field_name, old, new)

    # ----------------------------------------------------------------- entries
    def entry(self, address: BlockAddress) -> DirectoryEntry:
        entry = self.entries.get(address)
        if entry is None:
            entry = self.entries[address] = DirectoryEntry(address=address)
        return entry

    def _set_state(self, entry: DirectoryEntry, state: DirectoryState) -> None:
        self._notify(entry.address, "state", entry.state, state)
        entry.state = state

    def _set_owner(self, entry: DirectoryEntry, owner: Optional[int]) -> None:
        self._notify(entry.address, "owner", entry.owner, owner)
        entry.owner = owner

    def _set_sharers(self, entry: DirectoryEntry, sharers: Set[int]) -> None:
        # Takes ownership of ``sharers`` (every caller passes a set built
        # for the purpose), so no defensive copy.  Only materialise the
        # frozenset snapshots when the observer will actually see them (same
        # old != new gate as _notify); this runs on every gets/getx and the
        # allocations dominate its cost.
        if self._observer is not None and entry.sharers != sharers:
            self._observer(entry.address, "sharers",
                           frozenset(entry.sharers), frozenset(sharers))
        entry.sharers = sharers

    def _set_value(self, entry: DirectoryEntry, value: int) -> None:
        self._notify(entry.address, "value", entry.value, value)
        entry.value = value

    # ------------------------------------------------------------- dispatching
    def handle_message(self, message: NetworkMessage) -> None:
        """Entry point for Request-class messages arriving from the network."""
        payload: CoherencePayload = message.payload
        address = message.address
        assert address is not None
        msg_class = message.msg_class
        if msg_class is MessageClass.REQUEST_READ_ONLY:
            self._handle_request(address, message.src, MessageClass.REQUEST_READ_ONLY, payload)
        elif msg_class is MessageClass.REQUEST_READ_WRITE:
            self._handle_request(address, message.src, MessageClass.REQUEST_READ_WRITE, payload)
        elif msg_class is MessageClass.WRITEBACK:
            self._handle_writeback(address, message.src, payload)
        elif msg_class is MessageClass.FINAL_ACK:
            self._handle_final_ack(address, message.src)
        else:
            raise ValueError(f"{self.name}: unexpected message {message.msg_class}")

    # --------------------------------------------------------------- requests
    def _handle_request(self, address: BlockAddress, requestor: int,
                        kind: MessageClass, payload: CoherencePayload) -> None:
        # Inline of entry(): one call per protocol request.
        entry = self.entries.get(address)
        if entry is None:
            entry = self.entries[address] = DirectoryEntry(address=address)
        if entry.busy is not None:
            entry.pending.append((requestor, kind, payload))
            self.count("stalled_requests")
            return
        self.requests_handled += 1
        if kind is MessageClass.REQUEST_READ_ONLY:
            self._do_gets(entry, requestor, payload)
        else:
            self._do_getx(entry, requestor, payload)

    def _do_gets(self, entry: DirectoryEntry, requestor: int,
                 payload: CoherencePayload) -> None:
        """RequestReadOnly."""
        self.count("gets")
        state = entry.state
        if state is DirectoryState.UNCACHED or state is DirectoryState.SHARED:
            # Data comes from memory; no forwarding, no busy period needed
            # beyond the response (the requestor's FinalAck unblocks).
            entry.busy = _BusyTransaction(requestor=requestor, op=MemoryOp.LOAD)
            sharers = set(entry.sharers)
            sharers.add(requestor)
            self._set_sharers(entry, sharers)
            self._set_state(entry, DirectoryState.SHARED)
            self._send_data(requestor, entry, acks=0, value=entry.value,
                            delay=self.config.memory_latency_cycles)
            return
        # Some cache owns the block: forward the read to the owner.
        assert entry.owner is not None
        entry.busy = _BusyTransaction(requestor=requestor, op=MemoryOp.LOAD)
        sharers = set(entry.sharers)
        sharers.add(requestor)
        self._set_sharers(entry, sharers)
        owner = entry.owner
        self._schedule_protocol(self.DIRECTORY_LOOKUP_CYCLES, lambda: self.send(
            owner, MessageClass.FORWARDED_REQUEST_READ_ONLY, entry.address,
            CoherencePayload(requestor=requestor, acks_expected=0,
                             txn_id=payload.txn_id)))

    def _do_getx(self, entry: DirectoryEntry, requestor: int,
                 payload: CoherencePayload) -> None:
        """RequestReadWrite."""
        self.count("getx")
        invalidatees = [n for n in entry.sharers if n != requestor]
        acks = len(invalidatees)
        entry.busy = _BusyTransaction(requestor=requestor, op=MemoryOp.STORE,
                                      acks_expected=acks)

        if entry.state is DirectoryState.UNCACHED:
            self._set_owner(entry, requestor)
            self._set_sharers(entry, set())
            self._set_state(entry, DirectoryState.OWNED)
            self._send_data(requestor, entry, acks=0, value=entry.value,
                            delay=self.config.memory_latency_cycles)
            return

        if entry.state is DirectoryState.SHARED:
            for node in invalidatees:
                self.send(node, MessageClass.INVALIDATION, entry.address,
                          CoherencePayload(requestor=requestor, txn_id=payload.txn_id))
            self._set_owner(entry, requestor)
            self._set_sharers(entry, set())
            self._set_state(entry, DirectoryState.OWNED)
            self._send_data(requestor, entry, acks=acks, value=entry.value,
                            delay=self.config.memory_latency_cycles)
            return

        # DirectoryState.OWNED: some cache owns the block.
        assert entry.owner is not None
        old_owner = entry.owner
        if old_owner == requestor:
            # Upgrade: the requestor is already the owner (state O with
            # sharers); invalidate the sharers and tell the requestor it can
            # keep its own data (value None).
            for node in invalidatees:
                self.send(node, MessageClass.INVALIDATION, entry.address,
                          CoherencePayload(requestor=requestor, txn_id=payload.txn_id))
            self._set_sharers(entry, set())
            self._send_data(requestor, entry, acks=acks, value=None,
                            delay=self.DIRECTORY_LOOKUP_CYCLES)
            return

        invalidatees = [n for n in invalidatees if n != old_owner]
        acks = len(invalidatees)
        entry.busy.acks_expected = acks
        for node in invalidatees:
            self.send(node, MessageClass.INVALIDATION, entry.address,
                      CoherencePayload(requestor=requestor, txn_id=payload.txn_id))
        self._schedule_protocol(self.DIRECTORY_LOOKUP_CYCLES, lambda: self.send(
            old_owner, MessageClass.FORWARDED_REQUEST_READ_WRITE, entry.address,
            CoherencePayload(requestor=requestor, acks_expected=acks,
                             txn_id=payload.txn_id)))
        self._set_owner(entry, requestor)
        self._set_sharers(entry, set())
        self._set_state(entry, DirectoryState.OWNED)

    def _send_data(self, requestor: int, entry: DirectoryEntry, *, acks: int,
                   value: Optional[int], delay: int) -> None:
        value_at_send = value
        self._schedule_protocol(delay, lambda: self.send(
            requestor, MessageClass.DATA, entry.address,
            CoherencePayload(requestor=requestor, acks_expected=acks,
                             value=value_at_send)))

    # -------------------------------------------------------------- writebacks
    def _handle_writeback(self, address: BlockAddress, writer: int,
                          payload: CoherencePayload) -> None:
        entry = self.entry(address)
        self.count("writebacks")
        if payload.value is not None:
            self._set_value(entry, payload.value)

        if entry.busy is None:
            if entry.owner == writer:
                self._set_owner(entry, None)
                new_state = (DirectoryState.SHARED if entry.sharers
                             else DirectoryState.UNCACHED)
                self._set_state(entry, new_state)
            # A writeback from a non-owner is stale (it lost ownership to a
            # later transaction); acknowledge it either way so the writer can
            # retire its writeback buffer entry.
            self.send(writer, MessageClass.WRITEBACK_ACK, address,
                      CoherencePayload(requestor=writer))
            return

        # Busy: the writeback races with an in-flight transaction for the
        # same block (Section 3.1's race).
        self.writeback_races += 1
        self.count("writeback_races")
        busy = entry.busy
        assert busy is not None
        if busy.op is MemoryOp.LOAD and entry.owner == writer:
            # The forwarded read is in flight to the writer; after the
            # writeback the block's only up-to-date copy is memory.
            self._set_owner(entry, None)
            self._set_state(entry, DirectoryState.SHARED if entry.sharers
                            else DirectoryState.UNCACHED)
        if self._full_variant:
            # Full protocol: make correctness independent of message order by
            # also sending the written-back data straight to the requestor.
            self.count("race_data_from_directory")
            self.send(busy.requestor, MessageClass.DATA, address,
                      CoherencePayload(requestor=busy.requestor,
                                       acks_expected=busy.acks_expected,
                                       value=entry.value))
        self.send(writer, MessageClass.WRITEBACK_ACK, address,
                  CoherencePayload(requestor=writer))

    # --------------------------------------------------------------- final ack
    def _handle_final_ack(self, address: BlockAddress, requestor: int) -> None:
        # Inline of entry(): one call per completed transaction.
        entry = self.entries.get(address)
        if entry is None:
            entry = self.entries[address] = DirectoryEntry(address=address)
        self.count("final_acks")
        if entry.busy is None:
            # A FinalAck for a transaction that was squashed by a recovery.
            return
        entry.busy = None
        if entry.pending:
            next_requestor, kind, payload = entry.pending.popleft()
            # Re-dispatch through the normal path on the next cycle.
            self._schedule_protocol(1, lambda: self._handle_request(
                address, next_requestor, kind, payload))

    # ----------------------------------------------------------------- recovery
    def squash_transient_state(self) -> None:
        """Drop busy markers and queued requests (system-wide recovery).

        The stable part of each entry (state/owner/sharers/value) is restored
        by the SafetyNet undo log; the transient part corresponds to
        transactions whose requestors have been rolled back and will re-issue
        their requests.
        """
        self.generation += 1
        for entry in self.entries.values():
            entry.busy = None
            entry.pending.clear()

    def restore_entry(self, address: BlockAddress, field_name: str, value) -> None:
        """Apply one undo-log record (called during recovery)."""
        entry = self.entry(address)
        if field_name == "state":
            entry.state = value
        elif field_name == "owner":
            entry.owner = value
        elif field_name == "sharers":
            entry.sharers = set(value)
        elif field_name == "value":
            entry.value = value
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown directory field {field_name!r}")

    # ------------------------------------------------------------------ checks
    def invariant_errors(self) -> List[str]:
        """Structural invariant violations (used by tests), empty when clean."""
        errors: List[str] = []
        for address, entry in self.entries.items():
            if entry.state == DirectoryState.OWNED and entry.owner is None:
                errors.append(f"block {address:#x}: OWNED with no owner")
            if entry.state == DirectoryState.UNCACHED and (entry.owner or entry.sharers):
                errors.append(f"block {address:#x}: UNCACHED but has owner/sharers")
            if entry.owner is not None and entry.owner in entry.sharers:
                errors.append(f"block {address:#x}: owner listed as sharer")
        return errors

"""MOSI directory cache-coherence protocol over the torus interconnect.

The protocol follows Section 3.1 of the paper: four message classes
(Request, ForwardedRequest, Response, FinalAck), each on its own virtual
network; three request types (RequestReadOnly, RequestReadWrite, Writeback);
four forwarded-request types (ForwardedRequestReadOnly,
ForwardedRequestReadWrite, Invalidation, WritebackAck); and Data/Ack/Nack
responses.

Two variants are provided:

* ``ProtocolVariant.FULL`` — the writeback / forwarded-request race is
  handled with extra directory behaviour (the directory supplies data to the
  racing requestor itself), which is the "more states and transitions" cost
  the paper wants to avoid paying.
* ``ProtocolVariant.SPECULATIVE`` — the protocol relies on point-to-point
  ordering per virtual network; a cache controller that receives a forwarded
  request for a block it no longer has data for has, by construction,
  observed a reordering and reports a mis-speculation
  (:class:`repro.core.events.MisspeculationEvent`).
"""

from repro.coherence.directory.states import CacheState, DirectoryState
from repro.coherence.directory.messages import CoherencePayload
from repro.coherence.directory.cache_controller import DirectoryCacheController, WritebackRecord
from repro.coherence.directory.directory_controller import DirectoryController, DirectoryEntry

__all__ = [
    "CacheState",
    "DirectoryState",
    "CoherencePayload",
    "DirectoryCacheController",
    "WritebackRecord",
    "DirectoryController",
    "DirectoryEntry",
]

"""Common coherence-protocol types: addresses, requests, transactions."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional

#: Block addresses are plain integers (byte address of the block's base).
BlockAddress = int


class MemoryOp(str, Enum):
    """Processor-visible memory operations."""

    LOAD = "load"
    STORE = "store"


@dataclass
class MemoryRequest:
    """One memory reference issued by a processor."""

    node: int
    op: MemoryOp
    address: BlockAddress
    issued_at: int = -1
    completed_at: int = -1
    #: Value observed by a load / written by a store (data tracking for
    #: correctness checks; the timing model does not depend on it).
    value: Optional[int] = None

    @property
    def latency(self) -> int:
        if self.completed_at < 0 or self.issued_at < 0:
            raise ValueError("request not complete")
        return self.completed_at - self.issued_at


_TRANSACTION_IDS = itertools.count()


@dataclass
class Transaction:
    """One outstanding coherence transaction at a cache controller."""

    node: int
    address: BlockAddress
    op: MemoryOp
    started_at: int
    txn_id: int = field(default_factory=lambda: next(_TRANSACTION_IDS))
    #: Invalidation acknowledgements still outstanding (directory protocol).
    acks_needed: int = 0
    acks_received: int = 0
    data_received: bool = False
    #: Called exactly once when the transaction completes.
    on_complete: Optional[Callable[["Transaction"], None]] = None
    #: Timeout event handle (cancelled on completion).
    timeout_event: Any = None
    completed: bool = False

    @property
    def satisfied(self) -> bool:
        """True when data and all expected acks have arrived."""
        return self.data_received and self.acks_received >= self.acks_needed

    def complete(self) -> None:
        if self.completed:
            return
        self.completed = True
        if self.timeout_event is not None:
            self.timeout_event.cancel()
            self.timeout_event = None
        if self.on_complete is not None:
            self.on_complete(self)


def block_address(byte_address: int, block_bytes: int) -> BlockAddress:
    """Align a byte address down to its block base."""
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ValueError("block size must be a positive power of two")
    return byte_address & ~(block_bytes - 1)


def home_node(address: BlockAddress, num_nodes: int, block_bytes: int) -> int:
    """Home (directory) node for a block: blocks interleaved across nodes."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    return (address // block_bytes) % num_nodes

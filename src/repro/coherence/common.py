"""Common coherence-protocol types: addresses, requests, transactions."""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Callable, Optional

#: Block addresses are plain integers (byte address of the block's base).
BlockAddress = int


class MemoryOp(str, Enum):
    """Processor-visible memory operations."""

    LOAD = "load"
    STORE = "store"


class MemoryRequest:
    """One memory reference issued by a processor.

    Slotted and hand-rolled (not a dataclass): one is allocated per L2 miss,
    which at protocol rates makes the dataclass ``__init__`` indirection and
    the per-instance ``__dict__`` measurable.
    """

    __slots__ = ("node", "op", "address", "issued_at", "completed_at", "value")

    def __init__(self, node: int, op: MemoryOp, address: BlockAddress,
                 issued_at: int = -1, completed_at: int = -1,
                 value: Optional[int] = None) -> None:
        self.node = node
        self.op = op
        self.address = address
        self.issued_at = issued_at
        self.completed_at = completed_at
        #: Value observed by a load / written by a store (data tracking for
        #: correctness checks; the timing model does not depend on it).
        self.value = value

    @property
    def latency(self) -> int:
        if self.completed_at < 0 or self.issued_at < 0:
            raise ValueError("request not complete")
        return self.completed_at - self.issued_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryRequest(node={self.node}, op={self.op!r}, "
                f"address={self.address:#x}, value={self.value!r})")


_TRANSACTION_IDS = itertools.count()


class Transaction:
    """One outstanding coherence transaction at a cache controller.

    Slotted and hand-rolled for the same reason as :class:`MemoryRequest`:
    one per coherence transaction, and the dataclass ``default_factory``
    machinery for ``txn_id`` alone is a measurable fraction of issue cost.
    """

    __slots__ = ("node", "address", "op", "started_at", "txn_id",
                 "acks_needed", "acks_received", "data_received",
                 "on_complete", "timeout_event", "completed",
                 "bus_ordered", "invalidate_on_install", "value_hint")

    def __init__(self, node: int, address: BlockAddress, op: MemoryOp,
                 started_at: int, txn_id: Optional[int] = None,
                 acks_needed: int = 0, acks_received: int = 0,
                 data_received: bool = False,
                 on_complete: Optional[Callable[["Transaction"], None]] = None,
                 timeout_event: Any = None, completed: bool = False) -> None:
        self.node = node
        self.address = address
        self.op = op
        self.started_at = started_at
        self.txn_id = next(_TRANSACTION_IDS) if txn_id is None else txn_id
        #: Invalidation acknowledgements still outstanding (directory protocol).
        self.acks_needed = acks_needed
        self.acks_received = acks_received
        self.data_received = data_received
        #: Called exactly once when the transaction completes.
        self.on_complete = on_complete
        #: Timeout event handle (cancelled on completion).
        self.timeout_event = timeout_event
        self.completed = completed
        # Snooping-controller annotations (read back via getattr with a
        # default, so the defaults here must stay the getattr fallbacks).
        self.bus_ordered = False
        self.invalidate_on_install = False
        self.value_hint = None

    @property
    def satisfied(self) -> bool:
        """True when data and all expected acks have arrived."""
        return self.data_received and self.acks_received >= self.acks_needed

    def complete(self) -> None:
        if self.completed:
            return
        self.completed = True
        if self.timeout_event is not None:
            self.timeout_event.cancel()
            self.timeout_event = None
        if self.on_complete is not None:
            self.on_complete(self)


def block_address(byte_address: int, block_bytes: int) -> BlockAddress:
    """Align a byte address down to its block base."""
    if block_bytes <= 0 or block_bytes & (block_bytes - 1):
        raise ValueError("block size must be a positive power of two")
    return byte_address & ~(block_bytes - 1)


def home_node(address: BlockAddress, num_nodes: int, block_bytes: int) -> int:
    """Home (directory) node for a block: blocks interleaved across nodes."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    return (address // block_bytes) % num_nodes

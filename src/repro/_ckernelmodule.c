/* Compiled kernel tier: C implementations of the simulation hot paths.
 *
 * This module mirrors the pure-Python kernel byte-for-byte:
 *
 *   - Event / EventQueue / Simulator  <->  repro.sim.engine
 *   - UndoRecord / CheckpointLogBuffer / make_log_observer
 *                                     <->  repro.safetynet.log + the
 *                                          SafetyNet.register_store observer
 *
 * Byte-identity contract (DESIGN.md par.10): dispatch order is a pure
 * function of the (time, priority, seq) ordering keys, every counter keeps
 * the pure tier's lazy-creation semantics, and no behaviour may depend on
 * the heap's internal arrangement.  The heap here is a C array of
 * {time, priority, seq, event} structs -- no tuple allocation and no rich
 * comparisons -- but it pops in exactly the order heapq would, so reports,
 * golden digests and spec hashes are unchanged.
 *
 * Selection lives in repro.kernel (REPRO_KERNEL=auto|pure|compiled); this
 * module is imported lazily and is entirely optional -- nothing in the
 * repository requires it to exist.  Build with `python tools/build_kernel.py`.
 *
 * All simulation times and sequence numbers are C long longs.  The pure
 * kernel documents the same bound (run() uses 1 << 62 as its sentinel), and
 * every producer in the tree schedules at integer cycles, so the narrowing
 * from Python ints is exact; a non-int time raises TypeError rather than
 * silently diverging from the pure tier.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stddef.h>

#if defined(__clang__)
#define CKERNEL_COMPILER "clang " __clang_version__
#elif defined(__GNUC__)
#define CKERNEL_COMPILER "gcc " __VERSION__
#else
#define CKERNEL_COMPILER "unknown"
#endif

#define FREELIST_MAX 8192
#define COMPACT_MIN_ENTRIES 512
#define TIME_SENTINEL (1LL << 62)

/* Set at module init from repro.sim.engine so both tiers raise the same
 * exception class. */
static PyObject *SimulationError = NULL;
static PyObject *empty_string = NULL;

/* ------------------------------------------------------------------ Event */

typedef struct {
    PyObject_HEAD
    long long time;
    long priority;
    long long seq;
    PyObject *callback;     /* NULL means None */
    PyObject *label;        /* never NULL once constructed */
    PyObject *queue;        /* owning CEventQueue, NULL means None */
    char cancelled;
    char is_static;
} CEvent;

typedef struct {
    long long time;
    long priority;
    long long seq;
    CEvent *ev;             /* strong reference */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t heap_size;
    Py_ssize_t heap_cap;
    PyObject **free_pool;   /* strong references, LIFO */
    Py_ssize_t free_size;
    long long seq;
    Py_ssize_t live;
    long long compactions;
} CEventQueue;

static PyTypeObject CEvent_Type;
static PyTypeObject CEventQueue_Type;
static PyTypeObject CDrainIter_Type;
static PyTypeObject CSimulator_Type;

static void queue_compact(CEventQueue *q);

static inline int
entry_less(const HeapEntry *a, const HeapEntry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq < b->seq;
}

/* ---- heap primitives (identical pop order to heapq on tuple keys) ---- */

static int
heap_reserve(CEventQueue *q)
{
    if (q->heap_size < q->heap_cap)
        return 0;
    Py_ssize_t cap = q->heap_cap ? q->heap_cap * 2 : 256;
    HeapEntry *heap = PyMem_Realloc(q->heap, (size_t)cap * sizeof(HeapEntry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->heap = heap;
    q->heap_cap = cap;
    return 0;
}

static void
heap_bubble_up(HeapEntry *heap, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (entry_less(&item, &heap[parent])) {
            heap[pos] = heap[parent];
            pos = parent;
        }
        else
            break;
    }
    heap[pos] = item;
}

static void
heap_bubble_down(HeapEntry *heap, Py_ssize_t size, Py_ssize_t pos)
{
    HeapEntry item = heap[pos];
    Py_ssize_t child;
    while ((child = 2 * pos + 1) < size) {
        if (child + 1 < size && entry_less(&heap[child + 1], &heap[child]))
            child++;
        if (entry_less(&heap[child], &item)) {
            heap[pos] = heap[child];
            pos = child;
        }
        else
            break;
    }
    heap[pos] = item;
}

/* Push an entry; steals the caller's reference to entry.ev. */
static int
heap_push_entry(CEventQueue *q, HeapEntry entry)
{
    if (heap_reserve(q) < 0) {
        Py_DECREF(entry.ev);
        return -1;
    }
    q->heap[q->heap_size++] = entry;
    heap_bubble_up(q->heap, q->heap_size - 1);
    return 0;
}

/* Pop the root; the caller owns the returned entry's event reference.
 * Must only be called with heap_size > 0. */
static HeapEntry
heap_pop_root(CEventQueue *q)
{
    HeapEntry root = q->heap[0];
    q->heap_size--;
    if (q->heap_size > 0) {
        q->heap[0] = q->heap[q->heap_size];
        heap_bubble_down(q->heap, q->heap_size, 0);
    }
    return root;
}

/* ---- freelist ---- */

static inline void
freelist_put(CEventQueue *q, CEvent *ev)
{
    if (q->free_size < FREELIST_MAX) {
        if (q->free_pool == NULL) {
            q->free_pool = PyMem_Malloc(FREELIST_MAX * sizeof(PyObject *));
            if (q->free_pool == NULL)
                return;         /* just skip pooling on allocation failure */
        }
        Py_INCREF(ev);
        q->free_pool[q->free_size++] = (PyObject *)ev;
    }
}

/* Pool a cancelled entry skimmed off the heap (cancel() already nulled the
 * callback and disowned the queue). */
static inline void
recycle_cancelled(CEventQueue *q, CEvent *ev)
{
    Py_INCREF(empty_string);
    Py_XSETREF(ev->label, empty_string);
    freelist_put(q, ev);
}

/* ------------------------------------------------------------ Event type */

static CEvent *
event_alloc(long long time, long priority, long long seq,
            PyObject *callback, PyObject *label)
{
    CEvent *ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->time = time;
    ev->priority = priority;
    ev->seq = seq;
    Py_XINCREF(callback);
    ev->callback = callback;
    Py_INCREF(label);
    ev->label = label;
    ev->queue = NULL;
    ev->cancelled = 0;
    ev->is_static = 0;
    PyObject_GC_Track((PyObject *)ev);
    return ev;
}

static PyObject *
Event_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "priority", "seq", "callback", "label",
                             "queue", NULL};
    long long time, seq;
    long priority;
    PyObject *callback, *label = NULL, *queue = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "LlLO|UO", kwlist,
                                     &time, &priority, &seq, &callback,
                                     &label, &queue))
        return NULL;
    if (queue != Py_None && !Py_IS_TYPE(queue, &CEventQueue_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "queue must be a compiled EventQueue or None");
        return NULL;
    }
    CEvent *ev = event_alloc(time, priority, seq, callback,
                             label ? label : empty_string);
    if (ev == NULL)
        return NULL;
    if (queue != Py_None) {
        Py_INCREF(queue);
        ev->queue = queue;
    }
    return (PyObject *)ev;
}

static int
Event_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->label);
    Py_VISIT(self->queue);
    return 0;
}

static int
Event_clear_gc(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->label);
    Py_CLEAR(self->queue);
    return 0;
}

static void
Event_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    Event_clear_gc(self);
    PyObject_GC_Del(self);
}

/* Shared cancel logic (Event.cancel / EventQueue.cancel / Simulator.cancel):
 * mirror of the pure tier's inlined bookkeeping. */
static void
event_cancel_internal(CEvent *self)
{
    if (self->cancelled)
        return;
    self->cancelled = 1;
    Py_CLEAR(self->callback);
    PyObject *queue = self->queue;
    if (queue != NULL) {
        self->queue = NULL;
        CEventQueue *q = (CEventQueue *)queue;
        Py_ssize_t live = q->live - 1;
        q->live = live;
        if (q->heap_size >= COMPACT_MIN_ENTRIES && live < (q->heap_size >> 1))
            queue_compact(q);
        Py_DECREF(queue);
    }
}

static PyObject *
Event_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    event_cancel_internal(self);
    Py_RETURN_NONE;
}

static PyObject *
Event_repr(CEvent *self)
{
    return PyUnicode_FromFormat("<Event t=%lld p=%ld %R%s>",
                                self->time, self->priority, self->label,
                                self->cancelled ? " cancelled" : "");
}

static PyObject *
Event_get_time(CEvent *self, void *closure)
{
    return PyLong_FromLongLong(self->time);
}

static int
Event_set_time(CEvent *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->time = v;
    return 0;
}

static PyObject *
Event_get_priority(CEvent *self, void *closure)
{
    return PyLong_FromLong(self->priority);
}

static int
Event_set_priority(CEvent *self, PyObject *value, void *closure)
{
    long v = PyLong_AsLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->priority = v;
    return 0;
}

static PyObject *
Event_get_seq(CEvent *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static int
Event_set_seq(CEvent *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->seq = v;
    return 0;
}

static PyObject *
Event_get_callback(CEvent *self, void *closure)
{
    PyObject *cb = self->callback ? self->callback : Py_None;
    Py_INCREF(cb);
    return cb;
}

static int
Event_set_callback(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL || value == Py_None) {
        Py_CLEAR(self->callback);
        return 0;
    }
    Py_INCREF(value);
    Py_XSETREF(self->callback, value);
    return 0;
}

static PyObject *
Event_get_label(CEvent *self, void *closure)
{
    Py_INCREF(self->label);
    return self->label;
}

static int
Event_set_label(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL)
        value = empty_string;
    Py_INCREF(value);
    Py_XSETREF(self->label, value);
    return 0;
}

static PyObject *
Event_get_cancelled(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static int
Event_set_cancelled(CEvent *self, PyObject *value, void *closure)
{
    int v = PyObject_IsTrue(value);
    if (v < 0)
        return -1;
    self->cancelled = (char)v;
    return 0;
}

static PyObject *
Event_get_static(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->is_static);
}

static int
Event_set_static(CEvent *self, PyObject *value, void *closure)
{
    int v = PyObject_IsTrue(value);
    if (v < 0)
        return -1;
    self->is_static = (char)v;
    return 0;
}

static PyObject *
Event_get_queue(CEvent *self, void *closure)
{
    PyObject *q = self->queue ? self->queue : Py_None;
    Py_INCREF(q);
    return q;
}

static int
Event_set_queue(CEvent *self, PyObject *value, void *closure)
{
    if (value == NULL || value == Py_None) {
        Py_CLEAR(self->queue);
        return 0;
    }
    if (!Py_IS_TYPE(value, &CEventQueue_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "_queue must be a compiled EventQueue or None");
        return -1;
    }
    Py_INCREF(value);
    Py_XSETREF(self->queue, value);
    return 0;
}

static PyGetSetDef Event_getset[] = {
    {"time", (getter)Event_get_time, (setter)Event_set_time, NULL, NULL},
    {"priority", (getter)Event_get_priority, (setter)Event_set_priority,
     NULL, NULL},
    {"seq", (getter)Event_get_seq, (setter)Event_set_seq, NULL, NULL},
    {"callback", (getter)Event_get_callback, (setter)Event_set_callback,
     NULL, NULL},
    {"label", (getter)Event_get_label, (setter)Event_set_label, NULL, NULL},
    {"cancelled", (getter)Event_get_cancelled, (setter)Event_set_cancelled,
     NULL, NULL},
    {"static", (getter)Event_get_static, (setter)Event_set_static,
     NULL, NULL},
    {"_queue", (getter)Event_get_queue, (setter)Event_set_queue, NULL, NULL},
    {NULL}
};

static PyMethodDef Event_methods[] = {
    {"cancel", (PyCFunction)Event_cancel, METH_NOARGS,
     "Mark the event as cancelled; it will be dropped when reached."},
    {NULL}
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_repr = (reprfunc)Event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled counterpart of repro.sim.engine.Event.",
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear_gc,
    .tp_methods = Event_methods,
    .tp_getset = Event_getset,
    .tp_new = Event_new,
};

/* ------------------------------------------------------- EventQueue type */

static CEventQueue *
queue_alloc(void)
{
    CEventQueue *q = PyObject_GC_New(CEventQueue, &CEventQueue_Type);
    if (q == NULL)
        return NULL;
    q->heap = NULL;
    q->heap_size = 0;
    q->heap_cap = 0;
    q->free_pool = NULL;
    q->free_size = 0;
    q->seq = 0;
    q->live = 0;
    q->compactions = 0;
    PyObject_GC_Track((PyObject *)q);
    return q;
}

static PyObject *
Queue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "EventQueue() takes no arguments");
        return NULL;
    }
    return (PyObject *)queue_alloc();
}

static int
Queue_traverse(CEventQueue *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->heap_size; i++)
        Py_VISIT(self->heap[i].ev);
    for (Py_ssize_t i = 0; i < self->free_size; i++)
        Py_VISIT(self->free_pool[i]);
    return 0;
}

static int
Queue_clear_gc(CEventQueue *self)
{
    Py_ssize_t n = self->heap_size;
    self->heap_size = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_DECREF(self->heap[i].ev);
    n = self->free_size;
    self->free_size = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_DECREF(self->free_pool[i]);
    return 0;
}

static void
Queue_dealloc(CEventQueue *self)
{
    PyObject_GC_UnTrack(self);
    Queue_clear_gc(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->free_pool);
    PyObject_GC_Del(self);
}

static void
queue_compact(CEventQueue *q)
{
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < q->heap_size; i++) {
        CEvent *ev = q->heap[i].ev;
        if (ev->cancelled) {
            Py_INCREF(empty_string);
            Py_XSETREF(ev->label, empty_string);
            freelist_put(q, ev);
            Py_DECREF(ev);
        }
        else
            q->heap[out++] = q->heap[i];
    }
    q->heap_size = out;
    for (Py_ssize_t i = out / 2 - 1; i >= 0; i--)
        heap_bubble_down(q->heap, out, i);
    q->compactions++;
}

/* Core push shared by EventQueue.push and Simulator.schedule*.  Returns a
 * new reference to the scheduled event. */
static PyObject *
queue_push_internal(CEventQueue *q, long long time, long priority,
                    PyObject *callback, PyObject *label)
{
    if (time < 0) {
        PyErr_Format(SimulationError,
                     "cannot schedule event at negative time %lld", time);
        return NULL;
    }
    long long seq = q->seq++;
    CEvent *ev;
    if (q->free_size > 0) {
        ev = (CEvent *)q->free_pool[--q->free_size];   /* we own this ref */
        ev->time = time;
        ev->priority = priority;
        ev->seq = seq;
        Py_INCREF(callback);
        Py_XSETREF(ev->callback, callback);
        Py_INCREF(label);
        Py_XSETREF(ev->label, label);
        ev->cancelled = 0;
        Py_INCREF(q);
        Py_XSETREF(ev->queue, (PyObject *)q);
    }
    else {
        ev = event_alloc(time, priority, seq, callback, label);
        if (ev == NULL)
            return NULL;
        Py_INCREF(q);
        ev->queue = (PyObject *)q;
    }
    HeapEntry entry = {time, priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(q, entry) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    q->live++;
    return (PyObject *)ev;
}

/* Parse (time, callback, priority=0, label="") from a fastcall. */
static int
parse_push_args(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                const char *who, long long *time, PyObject **callback,
                long *priority, PyObject **label)
{
    PyObject *slots[4] = {NULL, NULL, NULL, NULL};
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (nargs > 4 || total > 4 || total < 2) {
        PyErr_Format(PyExc_TypeError,
                     "%s expected 2 to 4 arguments, got %zd", who, total);
        return -1;
    }
    for (Py_ssize_t i = 0; i < nargs; i++)
        slots[i] = args[i];
    if (kwnames) {
        static const char *names[4] = {"time", "callback", "priority",
                                       "label"};
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            int matched = 0;
            for (int s = 0; s < 4; s++) {
                if (PyUnicode_CompareWithASCIIString(name, names[s]) == 0) {
                    if (slots[s] != NULL) {
                        PyErr_Format(PyExc_TypeError,
                                     "%s got multiple values for '%s'",
                                     who, names[s]);
                        return -1;
                    }
                    slots[s] = args[nargs + i];
                    matched = 1;
                    break;
                }
            }
            if (!matched) {
                PyErr_Format(PyExc_TypeError,
                             "%s got an unexpected keyword argument %R",
                             who, name);
                return -1;
            }
        }
    }
    if (slots[0] == NULL || slots[1] == NULL) {
        PyErr_Format(PyExc_TypeError, "%s missing time/callback", who);
        return -1;
    }
    if (!PyLong_Check(slots[0])) {
        PyErr_Format(PyExc_TypeError, "%s: event time must be an int", who);
        return -1;
    }
    *time = PyLong_AsLongLong(slots[0]);
    if (*time == -1 && PyErr_Occurred())
        return -1;
    *callback = slots[1];
    if (slots[2] != NULL) {
        *priority = PyLong_AsLong(slots[2]);
        if (*priority == -1 && PyErr_Occurred())
            return -1;
    }
    else
        *priority = 0;
    *label = slots[3] != NULL ? slots[3] : empty_string;
    return 0;
}

static PyObject *
Queue_push(CEventQueue *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    long long time;
    long priority;
    PyObject *callback, *label;
    if (parse_push_args(args, nargs, kwnames, "push()", &time, &callback,
                        &priority, &label) < 0)
        return NULL;
    return queue_push_internal(self, time, priority, callback, label);
}

static PyObject *
Queue_push_static(CEventQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "push_static() takes exactly 2 arguments");
        return NULL;
    }
    if (!Py_IS_TYPE(args[0], &CEvent_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "push_static() requires a compiled Event");
        return NULL;
    }
    CEvent *ev = (CEvent *)args[0];
    if (!PyLong_Check(args[1])) {
        PyErr_SetString(PyExc_TypeError, "event time must be an int");
        return NULL;
    }
    long long time = PyLong_AsLongLong(args[1]);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    long long seq = self->seq++;
    ev->time = time;
    ev->seq = seq;
    ev->cancelled = 0;
    Py_INCREF(self);
    Py_XSETREF(ev->queue, (PyObject *)self);
    HeapEntry entry = {time, ev->priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(self, entry) < 0)
        return NULL;
    self->live++;
    Py_RETURN_NONE;
}

static PyObject *
Queue_new_static_event(CEventQueue *self, PyObject *const *args,
                       Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *callback = NULL, *label = empty_string;
    long priority = 0;
    PyObject *slots[3] = {NULL, NULL, NULL};
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (nargs > 3 || total > 3 || total < 1) {
        PyErr_SetString(PyExc_TypeError,
                        "new_static_event(callback, label='', priority=0)");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < nargs; i++)
        slots[i] = args[i];
    if (kwnames) {
        static const char *names[3] = {"callback", "label", "priority"};
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            int matched = 0;
            for (int s = 0; s < 3; s++) {
                if (PyUnicode_CompareWithASCIIString(name, names[s]) == 0) {
                    slots[s] = args[nargs + i];
                    matched = 1;
                    break;
                }
            }
            if (!matched) {
                PyErr_Format(PyExc_TypeError,
                             "new_static_event() got an unexpected keyword "
                             "argument %R", name);
                return NULL;
            }
        }
    }
    callback = slots[0];
    if (slots[1] != NULL)
        label = slots[1];
    if (slots[2] != NULL) {
        priority = PyLong_AsLong(slots[2]);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    CEvent *ev = event_alloc(0, priority, 0, callback, label);
    if (ev == NULL)
        return NULL;
    ev->is_static = 1;
    return (PyObject *)ev;
}

static PyObject *
Queue_pop(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    while (self->heap_size) {
        HeapEntry entry = heap_pop_root(self);
        CEvent *ev = entry.ev;
        if (ev->cancelled) {
            recycle_cancelled(self, ev);
            Py_DECREF(ev);
            continue;
        }
        self->live--;
        Py_CLEAR(ev->queue);
        return (PyObject *)ev;
    }
    Py_RETURN_NONE;
}

static PyObject *
Queue_pop_batch(CEventQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "pop_batch(batch, max_count=None)");
        return NULL;
    }
    PyObject *batch = args[0];
    long long max_count = TIME_SENTINEL;
    if (nargs == 2 && args[1] != Py_None) {
        max_count = PyLong_AsLongLong(args[1]);
        if (max_count == -1 && PyErr_Occurred())
            return NULL;
    }
    long long batch_time = 0;
    long batch_priority = 0;
    Py_ssize_t count = 0;
    while (self->heap_size) {
        HeapEntry *top = &self->heap[0];
        CEvent *ev = top->ev;
        if (ev->cancelled) {
            HeapEntry entry = heap_pop_root(self);
            recycle_cancelled(self, entry.ev);
            Py_DECREF(entry.ev);
            continue;
        }
        if (count == 0) {
            batch_time = top->time;
            batch_priority = top->priority;
        }
        else if (top->time != batch_time || top->priority != batch_priority)
            break;
        HeapEntry entry = heap_pop_root(self);
        Py_CLEAR(entry.ev->queue);
        int rc;
        if (PyList_Check(batch))
            rc = PyList_Append(batch, (PyObject *)entry.ev);
        else {
            PyObject *r = PyObject_CallMethod(batch, "append", "O", entry.ev);
            rc = r == NULL ? -1 : 0;
            Py_XDECREF(r);
        }
        Py_DECREF(entry.ev);
        if (rc < 0) {
            self->live -= count;
            return NULL;
        }
        count++;
        if (count >= max_count)
            break;
    }
    self->live -= count;
    return PyLong_FromSsize_t(count);
}

static PyObject *
Queue_unpop(CEventQueue *self, PyObject *events)
{
    PyObject *seq = PySequence_Fast(events, "unpop() expects a sequence");
    if (seq == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject **items = PySequence_Fast_ITEMS(seq);
    for (Py_ssize_t i = 0; i < n; i++) {
        if (!Py_IS_TYPE(items[i], &CEvent_Type)) {
            PyErr_SetString(PyExc_TypeError,
                            "unpop() requires compiled Events");
            Py_DECREF(seq);
            return NULL;
        }
        CEvent *ev = (CEvent *)items[i];
        if (ev->cancelled)
            continue;
        Py_INCREF(self);
        Py_XSETREF(ev->queue, (PyObject *)self);
        HeapEntry entry = {ev->time, ev->priority, ev->seq, ev};
        Py_INCREF(ev);
        if (heap_push_entry(self, entry) < 0) {
            Py_DECREF(seq);
            return NULL;
        }
        self->live++;
    }
    Py_DECREF(seq);
    Py_RETURN_NONE;
}

static PyObject *
Queue_recycle(CEventQueue *self, PyObject *event)
{
    if (!Py_IS_TYPE(event, &CEvent_Type)) {
        PyErr_SetString(PyExc_TypeError, "recycle() requires a compiled Event");
        return NULL;
    }
    CEvent *ev = (CEvent *)event;
    Py_CLEAR(ev->callback);
    Py_INCREF(empty_string);
    Py_XSETREF(ev->label, empty_string);
    Py_CLEAR(ev->queue);
    ev->cancelled = 1;
    freelist_put(self, ev);
    Py_RETURN_NONE;
}

static PyObject *
Queue_peek_time(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    while (self->heap_size && self->heap[0].ev->cancelled) {
        HeapEntry entry = heap_pop_root(self);
        recycle_cancelled(self, entry.ev);
        Py_DECREF(entry.ev);
    }
    if (self->heap_size == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0].time);
}

static PyObject *
Queue_cancel(CEventQueue *self, PyObject *event)
{
    if (Py_IS_TYPE(event, &CEvent_Type)) {
        event_cancel_internal((CEvent *)event);
        Py_RETURN_NONE;
    }
    return PyObject_CallMethod(event, "cancel", NULL);
}

static PyObject *
Queue_compact_method(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    queue_compact(self);
    Py_RETURN_NONE;
}

/* drain() iterator */

typedef struct {
    PyObject_HEAD
    CEventQueue *queue;
} CDrainIter;

static void
DrainIter_dealloc(CDrainIter *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->queue);
    PyObject_GC_Del(self);
}

static int
DrainIter_traverse(CDrainIter *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    return 0;
}

static PyObject *
DrainIter_next(CDrainIter *self)
{
    CEventQueue *q = self->queue;
    if (q == NULL)
        return NULL;
    while (q->heap_size) {
        HeapEntry entry = heap_pop_root(q);
        CEvent *ev = entry.ev;
        if (ev->cancelled) {
            recycle_cancelled(q, ev);
            Py_DECREF(ev);
            continue;
        }
        q->live--;
        Py_CLEAR(ev->queue);
        return (PyObject *)ev;
    }
    return NULL;
}

static PyTypeObject CDrainIter_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DrainIter",
    .tp_basicsize = sizeof(CDrainIter),
    .tp_dealloc = (destructor)DrainIter_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)DrainIter_traverse,
    .tp_iter = PyObject_SelfIter,
    .tp_iternext = (iternextfunc)DrainIter_next,
};

static PyObject *
Queue_drain(CEventQueue *self, PyObject *Py_UNUSED(ignored))
{
    CDrainIter *it = PyObject_GC_New(CDrainIter, &CDrainIter_Type);
    if (it == NULL)
        return NULL;
    Py_INCREF(self);
    it->queue = self;
    PyObject_GC_Track((PyObject *)it);
    return (PyObject *)it;
}

static Py_ssize_t
Queue_len(CEventQueue *self)
{
    return self->live;
}

static PyObject *
Queue_get_heap(CEventQueue *self, void *closure)
{
    PyObject *list = PyList_New(self->heap_size);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->heap_size; i++) {
        HeapEntry *e = &self->heap[i];
        PyObject *tuple = Py_BuildValue("LlLO", e->time, e->priority, e->seq,
                                        e->ev);
        if (tuple == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, tuple);
    }
    return list;
}

static PyObject *
Queue_get_free(CEventQueue *self, void *closure)
{
    PyObject *list = PyList_New(self->free_size);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < self->free_size; i++) {
        Py_INCREF(self->free_pool[i]);
        PyList_SET_ITEM(list, i, self->free_pool[i]);
    }
    return list;
}

static PyObject *
Queue_get_seq(CEventQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
Queue_get_live(CEventQueue *self, void *closure)
{
    return PyLong_FromSsize_t(self->live);
}

static PyObject *
Queue_get_compactions(CEventQueue *self, void *closure)
{
    return PyLong_FromLongLong(self->compactions);
}

static int
Queue_set_compactions(CEventQueue *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->compactions = v;
    return 0;
}

static PyGetSetDef Queue_getset[] = {
    {"_heap", (getter)Queue_get_heap, NULL,
     "Snapshot of the heap as (time, priority, seq, event) tuples.", NULL},
    {"_free", (getter)Queue_get_free, NULL,
     "Snapshot of the event freelist.", NULL},
    {"_seq", (getter)Queue_get_seq, NULL, NULL, NULL},
    {"_live", (getter)Queue_get_live, NULL, NULL, NULL},
    {"compactions", (getter)Queue_get_compactions,
     (setter)Queue_set_compactions, NULL, NULL},
    {NULL}
};

static PyMethodDef Queue_methods[] = {
    {"push", (PyCFunction)(void (*)(void))Queue_push,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule callback at absolute cycle `time` and return the event."},
    {"push_static", (PyCFunction)(void (*)(void))Queue_push_static,
     METH_FASTCALL,
     "Re-queue a caller-owned permanent event at absolute cycle `time`."},
    {"new_static_event", (PyCFunction)(void (*)(void))Queue_new_static_event,
     METH_FASTCALL | METH_KEYWORDS,
     "Create a caller-owned static event compatible with this queue."},
    {"pop", (PyCFunction)Queue_pop, METH_NOARGS,
     "Pop the next non-cancelled event, or None if the queue is empty."},
    {"pop_batch", (PyCFunction)(void (*)(void))Queue_pop_batch, METH_FASTCALL,
     "Pop every live event sharing the minimal (time, priority)."},
    {"unpop", (PyCFunction)Queue_unpop, METH_O,
     "Return popped-but-unexecuted events to the queue."},
    {"recycle", (PyCFunction)Queue_recycle, METH_O,
     "Return a fired event to the pool (kernel use only)."},
    {"peek_time", (PyCFunction)Queue_peek_time, METH_NOARGS,
     "Firing time of the next live event without popping it."},
    {"cancel", (PyCFunction)Queue_cancel, METH_O,
     "Cancel a previously scheduled event."},
    {"_compact", (PyCFunction)Queue_compact_method, METH_NOARGS,
     "Drop cancelled entries and rebuild the heap from live ones."},
    {"drain", (PyCFunction)Queue_drain, METH_NOARGS,
     "Yield and remove every remaining live event (teardown)."},
    {NULL}
};

static PySequenceMethods Queue_as_sequence = {
    .sq_length = (lenfunc)Queue_len,
};

static PyTypeObject CEventQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.EventQueue",
    .tp_basicsize = sizeof(CEventQueue),
    .tp_dealloc = (destructor)Queue_dealloc,
    .tp_as_sequence = &Queue_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled counterpart of repro.sim.engine.EventQueue.",
    .tp_traverse = (traverseproc)Queue_traverse,
    .tp_clear = (inquiry)Queue_clear_gc,
    .tp_methods = Queue_methods,
    .tp_getset = Queue_getset,
    .tp_new = Queue_new,
};

/* -------------------------------------------------------- Simulator type */

typedef struct {
    PyObject_HEAD
    CEventQueue *queue;     /* strong */
    PyObject *quiesce_hooks;/* PyList */
    long long now;
    long long events_executed;
    char running;
    char stop_requested;
} CSimulator;

static PyObject *
Sim_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return NULL;
    }
    CSimulator *self = PyObject_GC_New(CSimulator, &CSimulator_Type);
    if (self == NULL)
        return NULL;
    self->queue = NULL;
    self->quiesce_hooks = NULL;
    self->now = 0;
    self->events_executed = 0;
    self->running = 0;
    self->stop_requested = 0;
    PyObject_GC_Track((PyObject *)self);
    self->queue = queue_alloc();
    self->quiesce_hooks = PyList_New(0);
    if (self->queue == NULL || self->quiesce_hooks == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static int
Sim_traverse(CSimulator *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    Py_VISIT(self->quiesce_hooks);
    return 0;
}

static int
Sim_clear_gc(CSimulator *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->quiesce_hooks);
    return 0;
}

static void
Sim_dealloc(CSimulator *self)
{
    PyObject_GC_UnTrack(self);
    Sim_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
Sim_schedule(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    long long delay;
    long priority;
    PyObject *callback, *label;
    /* Same slot layout as push(): (delay, callback, priority, label). */
    if (parse_push_args(args, nargs, kwnames, "schedule()", &delay,
                        &callback, &priority, &label) < 0)
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationError, "negative delay %lld", delay);
        return NULL;
    }
    return queue_push_internal(self->queue, self->now + delay, priority,
                               callback, label);
}

static PyObject *
Sim_schedule_at(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    long long time;
    long priority;
    PyObject *callback, *label;
    if (parse_push_args(args, nargs, kwnames, "schedule_at()", &time,
                        &callback, &priority, &label) < 0)
        return NULL;
    if (time < self->now) {
        PyErr_Format(SimulationError,
                     "cannot schedule event in the past (now=%lld, time=%lld)",
                     self->now, time);
        return NULL;
    }
    return queue_push_internal(self->queue, time, priority, callback, label);
}

static PyObject *
Sim_cancel(CSimulator *self, PyObject *event)
{
    return Queue_cancel(self->queue, event);
}

static PyObject *
Sim_add_quiesce_hook(CSimulator *self, PyObject *hook)
{
    if (PyList_Append(self->quiesce_hooks, hook) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Sim_stop(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_requested = 1;
    Py_RETURN_NONE;
}

/* The fused dispatch loop -- a line-for-line port of Simulator.run() in
 * repro.sim.engine (see that docstring for the semantics). */
static PyObject *
sim_run_internal(CSimulator *self, PyObject *until_obj, PyObject *maxev_obj)
{
    long long until_bound = TIME_SENTINEL;
    long long events_bound = TIME_SENTINEL;
    if (until_obj != NULL && until_obj != Py_None) {
        until_bound = PyLong_AsLongLong(until_obj);
        if (until_bound == -1 && PyErr_Occurred())
            return NULL;
    }
    if (maxev_obj != NULL && maxev_obj != Py_None) {
        events_bound = PyLong_AsLongLong(maxev_obj);
        if (events_bound == -1 && PyErr_Occurred())
            return NULL;
    }
    CEventQueue *q = self->queue;
    self->running = 1;
    self->stop_requested = 0;
    long long executed = 0;
    int failed = 0;
    for (;;) {
        if (self->stop_requested)
            break;
        if (executed >= events_bound)
            break;
        if (q->heap_size == 0) {
            PyObject *hooks = self->quiesce_hooks;
            Py_INCREF(hooks);
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(hooks); i++) {
                PyObject *hook = PyList_GET_ITEM(hooks, i);
                Py_INCREF(hook);
                PyObject *res = PyObject_CallNoArgs(hook);
                Py_DECREF(hook);
                if (res == NULL) {
                    Py_DECREF(hooks);
                    failed = 1;
                    goto done;
                }
                Py_DECREF(res);
            }
            Py_DECREF(hooks);
            /* peek_time(): skim cancelled heads, then check progress. */
            while (q->heap_size && q->heap[0].ev->cancelled) {
                HeapEntry entry = heap_pop_root(q);
                recycle_cancelled(q, entry.ev);
                Py_DECREF(entry.ev);
            }
            if (q->heap_size == 0)
                break;
            continue;
        }
        HeapEntry entry = heap_pop_root(q);
        CEvent *ev = entry.ev;
        if (ev->cancelled) {
            recycle_cancelled(q, ev);
            Py_DECREF(ev);
            continue;
        }
        if (entry.time > until_bound) {
            /* Out of the window: put the event back (same key, ordering
             * untouched) and stop at the bound. */
            if (heap_push_entry(q, entry) < 0) {
                failed = 1;
                goto done;
            }
            self->now = until_bound;
            break;
        }
        q->live--;
        Py_CLEAR(ev->queue);
        self->now = entry.time;
        PyObject *callback = ev->callback ? ev->callback : Py_None;
        Py_INCREF(callback);
        PyObject *res = PyObject_CallNoArgs(callback);
        Py_DECREF(callback);
        if (res == NULL) {
            Py_DECREF(ev);
            failed = 1;
            goto done;
        }
        Py_DECREF(res);
        executed++;
        if (!ev->is_static) {
            Py_CLEAR(ev->callback);
            Py_INCREF(empty_string);
            Py_XSETREF(ev->label, empty_string);
            ev->cancelled = 1;
            freelist_put(q, ev);
        }
        Py_DECREF(ev);
    }
done:
    self->running = 0;
    self->events_executed += executed;
    if (failed)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Sim_run(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
        PyObject *kwnames)
{
    PyObject *until = NULL, *max_events = NULL;
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "run(until=None, max_events=None)");
        return NULL;
    }
    if (nargs >= 1)
        until = args[0];
    if (nargs >= 2)
        max_events = args[1];
    if (kwnames) {
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "until") == 0)
                until = args[nargs + i];
            else if (PyUnicode_CompareWithASCIIString(name,
                                                      "max_events") == 0)
                max_events = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "run() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    return sim_run_internal(self, until, max_events);
}

static PyObject *
Sim_run_until_idle(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
                   PyObject *kwnames)
{
    PyObject *max_events = NULL;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "run_until_idle(max_events=None)");
        return NULL;
    }
    if (nargs == 1)
        max_events = args[0];
    if (kwnames) {
        for (Py_ssize_t i = 0; i < PyTuple_GET_SIZE(kwnames); i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "max_events") == 0)
                max_events = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "run_until_idle() got an unexpected keyword "
                             "argument %R", name);
                return NULL;
            }
        }
    }
    PyObject *saved = self->quiesce_hooks;
    PyObject *empty = PyList_New(0);
    if (empty == NULL)
        return NULL;
    self->quiesce_hooks = empty;
    PyObject *result = sim_run_internal(self, NULL, max_events);
    self->quiesce_hooks = saved;
    Py_DECREF(empty);
    return result;
}

static PyObject *
Sim_get_now(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->now);
}

static int
Sim_set_now(CSimulator *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->now = v;
    return 0;
}

static PyObject *
Sim_get_events_executed(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->events_executed);
}

static int
Sim_set_events_executed(CSimulator *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->events_executed = v;
    return 0;
}

static PyObject *
Sim_get_queue(CSimulator *self, void *closure)
{
    Py_INCREF(self->queue);
    return (PyObject *)self->queue;
}

static PyObject *
Sim_get_running(CSimulator *self, void *closure)
{
    return PyBool_FromLong(self->running);
}

static PyObject *
Sim_get_stop_requested(CSimulator *self, void *closure)
{
    return PyBool_FromLong(self->stop_requested);
}

static int
Sim_set_stop_requested(CSimulator *self, PyObject *value, void *closure)
{
    int v = PyObject_IsTrue(value);
    if (v < 0)
        return -1;
    self->stop_requested = (char)v;
    return 0;
}

static PyObject *
Sim_get_quiesce_hooks(CSimulator *self, void *closure)
{
    Py_INCREF(self->quiesce_hooks);
    return self->quiesce_hooks;
}

static int
Sim_set_quiesce_hooks(CSimulator *self, PyObject *value, void *closure)
{
    if (value == NULL || !PyList_Check(value)) {
        PyErr_SetString(PyExc_TypeError, "_quiesce_hooks must be a list");
        return -1;
    }
    Py_INCREF(value);
    Py_XSETREF(self->quiesce_hooks, value);
    return 0;
}

static PyGetSetDef Sim_getset[] = {
    {"now", (getter)Sim_get_now, NULL,
     "Current simulation time in cycles.", NULL},
    {"_now", (getter)Sim_get_now, (setter)Sim_set_now, NULL, NULL},
    {"events_executed", (getter)Sim_get_events_executed,
     (setter)Sim_set_events_executed, NULL, NULL},
    {"queue", (getter)Sim_get_queue, NULL, NULL, NULL},
    {"_running", (getter)Sim_get_running, NULL, NULL, NULL},
    {"_stop_requested", (getter)Sim_get_stop_requested,
     (setter)Sim_set_stop_requested, NULL, NULL},
    {"_quiesce_hooks", (getter)Sim_get_quiesce_hooks,
     (setter)Sim_set_quiesce_hooks, NULL, NULL},
    {NULL}
};

static PyMethodDef Sim_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))Sim_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule callback `delay` cycles from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))Sim_schedule_at,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule callback at an absolute cycle (must not be in the past)."},
    {"cancel", (PyCFunction)Sim_cancel, METH_O,
     "Cancel a scheduled event."},
    {"add_quiesce_hook", (PyCFunction)Sim_add_quiesce_hook, METH_O,
     "Register a callable invoked whenever the event queue drains."},
    {"stop", (PyCFunction)Sim_stop, METH_NOARGS,
     "Request that run() return after the current event."},
    {"run", (PyCFunction)(void (*)(void))Sim_run,
     METH_FASTCALL | METH_KEYWORDS,
     "Run events until the queue drains, `until` cycles, or `max_events`."},
    {"run_until_idle", (PyCFunction)(void (*)(void))Sim_run_until_idle,
     METH_FASTCALL | METH_KEYWORDS,
     "Run until the event queue is empty (ignoring quiesce hooks)."},
    {NULL}
};

static PyTypeObject CSimulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Simulator",
    .tp_basicsize = sizeof(CSimulator),
    .tp_dealloc = (destructor)Sim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled counterpart of repro.sim.engine.Simulator.",
    .tp_traverse = (traverseproc)Sim_traverse,
    .tp_clear = (inquiry)Sim_clear_gc,
    .tp_methods = Sim_methods,
    .tp_getset = Sim_getset,
    .tp_new = Sim_new,
};

/* ----------------------------------------------------------- switch core */

/* Per-switch compiled hot path: inject / receive_from_link / scan / credit
 * wake, a line-for-line port of repro.interconnect.switch.Switch's hot
 * methods.  The core shares all Python-visible state (FiniteBuffer fields,
 * link occupancy, stats counters, the switch's message counters) by reading
 * and writing the same attributes at the same points, so reports and the
 * wait-for-graph detector see exactly what the pure tier produces.  Only
 * kernel-private state (the occupancy mask, the scan-scheduled flag) moves
 * into the C struct -- the pure methods are unbound once a core is
 * installed, so nothing else reads them.
 *
 * Cores are installed network-wide or not at all (see
 * InterconnectNetwork._install_compiled_cores): every switch must have
 * <= 64 scan slots (the mask is a uint64) and the simulator must be the
 * compiled one.  Construction is two-phase: SwitchCore(switch) captures
 * switch-local state, bind() resolves cross-switch references once every
 * core exists. */

/* Interned attribute names used on the hot paths. */
static struct {
    PyObject *reserved, *total_enqueued, *peak_occupancy, *name,
        *busy_until, *busy_cycles, *messages_carried, *bytes_carried,
        *hops, *dst, *src, *vnet, *size_bytes, *value, *flush_epoch,
        *messages_forwarded, *messages_ejected, *blocked_events,
        *c_injected, *c_ejected, *c_forwarded, *queue_attr, *popleft,
        *append, *core_attr, *capacity_attr, *latency_cycles_attr,
        *delivered_at, *injected_at, *messages_delivered,
        *total_message_latency, *delivered, *receive, *ordering,
        *note_delivery, *deliver_label, *squashed_net, *delivered_name,
        *reordered_name;
} S;

static PyObject *Direction_LOCAL = NULL;     /* lazily imported */
static PyObject *delay_kwnames = NULL;       /* ("delay",) */

typedef struct CSwitchCoreT CSwitchCore;

typedef struct {
    PyObject *port;             /* Direction member */
    PyObject *deque;
    PyObject *popleft;          /* bound method */
    int credit_local;           /* local port: wake the NIC, not a switch */
    CSwitchCore *credit_up;     /* upstream core, strong, NULL when local */
} ScanSlot;

typedef struct {
    PyObject *buf;              /* FiniteBuffer */
    PyObject *deque;
    PyObject *append;           /* bound deque.append */
    long capacity;
    uint64_t bit;
} GridSlot;

typedef struct {
    PyObject *dir;              /* Direction member (identity key) */
    PyObject *link;
    PyObject *ser_cache;        /* link._ser_cache dict */
    PyObject *ser_method;       /* bound link.serialization_cycles */
    long long latency_cycles;
    CSwitchCore *down;          /* strong */
    int shared;
    long vns, vcc;
    GridSlot *dslots;           /* downstream slots, [vn][vc] row-major */
    long ndslots;               /* actual allocated count (1 when shared) */
    PyObject *fwd_label;
} OutPort;

struct CSwitchCoreT {
    PyObject_HEAD
    PyObject *py_switch;
    CSimulator *sim;
    CEventQueue *cqueue;
    PyObject *network;
    PyObject *stats_counter;    /* bound stats.counter */
    PyObject *count_meth;       /* bound switch.count */
    CEvent *scan_event;
    Py_ssize_t nslots;
    ScanSlot *slots;
    uint64_t active_mask;
    int scan_scheduled;
    int bound;
    int local_shared;
    long local_vns, local_vcc;
    long local_nslots;          /* actual allocated count (1 when shared) */
    GridSlot *local_slots;      /* [vn][vc] row-major */
    PyObject *route_row;        /* list, or NULL for adaptive */
    PyObject *route_fn;         /* bound routing.route */
    PyObject *congestion_fn;    /* bound switch._congestion_for */
    PyObject *switch_id_obj;
    long long ejection_latency;
    PyObject *ejection_delay_obj;
    PyObject *can_eject, *deliver, *notify_space;
    PyObject *credit_wake_dict; /* switch._credit_wake */
    PyObject *endpoints;        /* network._endpoints dict */
    PyObject *delivered_counters, *reordered_counters;  /* cache lists */
    PyObject *vnet_counter_meth;/* bound network._vnet_counter */
    int always_eject;           /* can_eject is identically True (has VCs) */
    Py_ssize_t nout;
    OutPort *outs;
    PyObject *c_injected, *c_ejected, *c_forwarded;  /* Counter cache */
    PyObject *name_injected, *name_ejected, *name_forwarded;
    PyObject *lbl_injection_blocked, *lbl_ejection_blocked,
        *lbl_blocked_on_buffer, *lbl_squashed;
};

static PyTypeObject CSwitchCore_Type;
static PyTypeObject CForwardThunk_Type;

/* ---- small attribute helpers (interned-name get/set of C integers) ---- */

static int
getattr_ll(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
setattr_ll(PyObject *obj, PyObject *name, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    if (v == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return rc;
}

static int
addattr_ll(PyObject *obj, PyObject *name, long long delta)
{
    long long v;
    if (getattr_ll(obj, name, &v) < 0)
        return -1;
    return setattr_ll(obj, name, v + delta);
}

/* counter.value += n (Counter stores a plain int attribute) */
static int
counter_add(PyObject *counter, long long n)
{
    return addattr_ll(counter, S.value, n);
}

/* Lazy hot counter: mirror of `counter = self._c_x or stats.counter(name)`,
 * kept in sync with the pure tier by also storing the Counter back onto the
 * Python switch attribute. */
static PyObject *
core_lazy_counter(CSwitchCore *self, PyObject **cache, PyObject *switch_attr,
                  PyObject *counter_name)
{
    if (*cache != NULL)
        return *cache;
    PyObject *counter = PyObject_CallOneArg(self->stats_counter, counter_name);
    if (counter == NULL)
        return NULL;
    if (PyObject_SetAttr(self->py_switch, switch_attr, counter) < 0) {
        Py_DECREF(counter);
        return NULL;
    }
    *cache = counter;                       /* keep the reference */
    return counter;
}

static int
core_count(CSwitchCore *self, PyObject *label)
{
    PyObject *res = PyObject_CallOneArg(self->count_meth, label);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* Schedule this core's scan via push_static at absolute cycle `time`. */
static int
core_push_scan(CSwitchCore *self, long long time)
{
    CEventQueue *q = self->cqueue;
    CEvent *ev = self->scan_event;
    long long seq = q->seq++;
    ev->time = time;
    ev->seq = seq;
    ev->cancelled = 0;
    Py_INCREF(q);
    Py_XSETREF(ev->queue, (PyObject *)q);
    HeapEntry entry = {time, ev->priority, seq, ev};
    Py_INCREF(ev);
    if (heap_push_entry(q, entry) < 0)
        return -1;
    q->live++;
    return 0;
}

/* The shared "message landed in a buffer slot" tail used by inject /
 * receive / the forward thunk: set the mask bit and make sure a scan is
 * pending *now*. */
static inline int
core_wake_scan_now(CSwitchCore *self)
{
    if (!self->scan_scheduled) {
        self->scan_scheduled = 1;
        return core_push_scan(self, self->sim->now);
    }
    return 0;
}

/* ---------------------------------------------------------- ForwardThunk */

/* Replaces the per-forward Python lambda: carries the resolved downstream
 * slot, the message and the captured flush epoch; calling it performs the
 * downstream receive_from_link inline. */
typedef struct {
    PyObject_HEAD
    CSwitchCore *down;          /* strong */
    PyObject *message;          /* strong */
    PyObject *buf;              /* strong */
    PyObject *deque;            /* strong */
    PyObject *append;           /* strong */
    uint64_t bit;
    long long epoch;
} CForwardThunk;

static int
Thunk_traverse(CForwardThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->down);
    Py_VISIT(self->message);
    Py_VISIT(self->buf);
    Py_VISIT(self->deque);
    Py_VISIT(self->append);
    return 0;
}

static int
Thunk_clear_gc(CForwardThunk *self)
{
    Py_CLEAR(self->down);
    Py_CLEAR(self->message);
    Py_CLEAR(self->buf);
    Py_CLEAR(self->deque);
    Py_CLEAR(self->append);
    return 0;
}

static void
Thunk_dealloc(CForwardThunk *self)
{
    PyObject_GC_UnTrack(self);
    Thunk_clear_gc(self);
    PyObject_GC_Del(self);
}

/* Inline of FiniteBuffer.push_reserved + the arrival bookkeeping of
 * Switch.receive_from_link (the epoch was already captured at send). */
static int
core_receive_into_slot(CSwitchCore *down, PyObject *message, PyObject *buf,
                       PyObject *deque, PyObject *append, uint64_t bit,
                       int count_hop)
{
    long long reserved;
    if (getattr_ll(buf, S.reserved, &reserved) < 0)
        return -1;
    if (reserved <= 0) {
        PyObject *name = PyObject_GetAttr(buf, S.name);
        PyErr_Format(PyExc_RuntimeError, "buffer %S: push without reservation",
                     name ? name : Py_None);
        Py_XDECREF(name);
        return -1;
    }
    if (setattr_ll(buf, S.reserved, reserved - 1) < 0)
        return -1;
    PyObject *res = PyObject_CallOneArg(append, message);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    if (addattr_ll(buf, S.total_enqueued, 1) < 0)
        return -1;
    Py_ssize_t qlen = PyObject_Size(deque);
    if (qlen < 0)
        return -1;
    long long occupancy = (long long)qlen + reserved - 1;
    long long peak;
    if (getattr_ll(buf, S.peak_occupancy, &peak) < 0)
        return -1;
    if (occupancy > peak && setattr_ll(buf, S.peak_occupancy, occupancy) < 0)
        return -1;
    down->active_mask |= bit;
    if (count_hop && addattr_ll(message, S.hops, 1) < 0)
        return -1;
    return core_wake_scan_now(down);
}

static PyObject *
Thunk_call(CForwardThunk *self, PyObject *args, PyObject *kwds)
{
    CSwitchCore *down = self->down;
    long long cur_epoch;
    if (getattr_ll(down->network, S.flush_epoch, &cur_epoch) < 0)
        return NULL;
    if (cur_epoch != self->epoch) {
        if (core_count(down, down->lbl_squashed) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (core_receive_into_slot(down, self->message, self->buf, self->deque,
                               self->append, self->bit, 1) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyTypeObject CForwardThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._ForwardThunk",
    .tp_basicsize = sizeof(CForwardThunk),
    .tp_dealloc = (destructor)Thunk_dealloc,
    .tp_call = (ternaryfunc)Thunk_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)Thunk_traverse,
    .tp_clear = (inquiry)Thunk_clear_gc,
};

/* ---------------------------------------------------------- DeliverThunk */

/* Replaces the per-delivery `_deliver` closure of
 * InterconnectNetwork.deliver_to_endpoint for ejections performed by a
 * compiled switch core: same epoch check, same delivery accounting, same
 * lazy per-virtual-network counters, then the endpoint receive callback. */
typedef struct {
    PyObject_HEAD
    CSwitchCore *core;          /* strong; owns network/sim/counter caches */
    PyObject *endpoint;
    PyObject *message;
    long long epoch;
} CDeliverThunk;

static PyTypeObject CDeliverThunk_Type;

static int
DThunk_traverse(CDeliverThunk *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->endpoint);
    Py_VISIT(self->message);
    return 0;
}

static int
DThunk_clear_gc(CDeliverThunk *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->endpoint);
    Py_CLEAR(self->message);
    return 0;
}

static void
DThunk_dealloc(CDeliverThunk *self)
{
    PyObject_GC_UnTrack(self);
    DThunk_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
DThunk_call(CDeliverThunk *self, PyObject *args, PyObject *kwds)
{
    CSwitchCore *core = self->core;
    PyObject *network = core->network;
    PyObject *message = self->message;
    long long cur_epoch;
    if (getattr_ll(network, S.flush_epoch, &cur_epoch) < 0)
        return NULL;
    if (cur_epoch != self->epoch) {
        PyObject *counter = PyObject_CallOneArg(core->stats_counter,
                                                S.squashed_net);
        if (counter == NULL)
            return NULL;
        PyObject *res = PyObject_CallMethod(counter, "add", NULL);
        Py_DECREF(counter);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        Py_RETURN_NONE;
    }
    long long now = core->sim->now;
    if (setattr_ll(message, S.delivered_at, now) < 0 ||
        addattr_ll(network, S.messages_delivered, 1) < 0 ||
        addattr_ll(self->endpoint, S.delivered, 1) < 0)
        return NULL;
    long long injected;
    if (getattr_ll(message, S.injected_at, &injected) < 0 ||
        addattr_ll(network, S.total_message_latency, now - injected) < 0)
        return NULL;
    PyObject *ordering = PyObject_GetAttr(network, S.ordering);
    if (ordering == NULL)
        return NULL;
    PyObject *note = PyObject_GetAttr(ordering, S.note_delivery);
    Py_DECREF(ordering);
    if (note == NULL)
        return NULL;
    PyObject *reordered_obj = PyObject_CallOneArg(note, message);
    Py_DECREF(note);
    if (reordered_obj == NULL)
        return NULL;
    int reordered = PyObject_IsTrue(reordered_obj);
    Py_DECREF(reordered_obj);
    if (reordered < 0)
        return NULL;
    PyObject *vn_obj = PyObject_GetAttr(message, S.vnet);
    if (vn_obj == NULL)
        return NULL;
    Py_ssize_t vn = PyLong_AsSsize_t(vn_obj);
    if (vn == -1 && PyErr_Occurred()) {
        Py_DECREF(vn_obj);
        return NULL;
    }
    PyObject *counter = PyList_GetItem(core->delivered_counters, vn);
    if (counter == NULL) {
        Py_DECREF(vn_obj);
        return NULL;
    }
    if (counter == Py_None) {
        counter = PyObject_CallFunctionObjArgs(
            core->vnet_counter_meth, core->delivered_counters,
            S.delivered_name, vn_obj, NULL);
        if (counter == NULL) {
            Py_DECREF(vn_obj);
            return NULL;
        }
        Py_DECREF(counter);     /* the cache list keeps it alive */
        counter = PyList_GetItem(core->delivered_counters, vn);
        if (counter == NULL) {
            Py_DECREF(vn_obj);
            return NULL;
        }
    }
    if (counter_add(counter, 1) < 0) {
        Py_DECREF(vn_obj);
        return NULL;
    }
    if (reordered) {
        PyObject *rc = PyObject_CallFunctionObjArgs(
            core->vnet_counter_meth, core->reordered_counters,
            S.reordered_name, vn_obj, NULL);
        if (rc == NULL) {
            Py_DECREF(vn_obj);
            return NULL;
        }
        int ok = counter_add(rc, 1);
        Py_DECREF(rc);
        if (ok < 0) {
            Py_DECREF(vn_obj);
            return NULL;
        }
    }
    Py_DECREF(vn_obj);
    PyObject *receive = PyObject_GetAttr(self->endpoint, S.receive);
    if (receive == NULL)
        return NULL;
    PyObject *res = PyObject_CallOneArg(receive, message);
    Py_DECREF(receive);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyTypeObject CDeliverThunk_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel._DeliverThunk",
    .tp_basicsize = sizeof(CDeliverThunk),
    .tp_dealloc = (destructor)DThunk_dealloc,
    .tp_call = (ternaryfunc)DThunk_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)DThunk_traverse,
    .tp_clear = (inquiry)DThunk_clear_gc,
};

/* C fast path of deliver_to_endpoint(switch_id, message, delay=EJECTION):
 * same unattached-node check at schedule time, then a C thunk instead of a
 * Python closure.  `message` reference is borrowed. */
static int
core_deliver_local(CSwitchCore *self, PyObject *message)
{
    PyObject *endpoint = PyDict_GetItemWithError(self->endpoints,
                                                 self->switch_id_obj);
    if (endpoint == NULL && PyErr_Occurred())
        return -1;
    PyObject *receive = NULL;
    if (endpoint != NULL) {
        receive = PyObject_GetAttr(endpoint, S.receive);
        if (receive == NULL)
            return -1;
    }
    if (endpoint == NULL || receive == Py_None) {
        Py_XDECREF(receive);
        PyErr_Format(PyExc_RuntimeError,
                     "message delivered to unattached node %S: %R",
                     self->switch_id_obj, message);
        return -1;
    }
    Py_DECREF(receive);
    long long epoch;
    if (getattr_ll(self->network, S.flush_epoch, &epoch) < 0)
        return -1;
    CDeliverThunk *thunk = PyObject_GC_New(CDeliverThunk,
                                           &CDeliverThunk_Type);
    if (thunk == NULL)
        return -1;
    Py_INCREF(self);
    thunk->core = self;
    Py_INCREF(endpoint);
    thunk->endpoint = endpoint;
    Py_INCREF(message);
    thunk->message = message;
    thunk->epoch = epoch;
    PyObject_GC_Track((PyObject *)thunk);
    PyObject *ev = queue_push_internal(
        self->cqueue, self->sim->now + self->ejection_latency, 0,
        (PyObject *)thunk, S.deliver_label);
    Py_DECREF(thunk);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

/* ------------------------------------------------------ SwitchCore: init */

static int
Core_traverse(CSwitchCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->py_switch);
    Py_VISIT(self->sim);
    Py_VISIT(self->cqueue);
    Py_VISIT(self->network);
    Py_VISIT(self->stats_counter);
    Py_VISIT(self->count_meth);
    Py_VISIT(self->scan_event);
    if (self->slots) {
        for (Py_ssize_t i = 0; i < self->nslots; i++) {
            Py_VISIT(self->slots[i].port);
            Py_VISIT(self->slots[i].deque);
            Py_VISIT(self->slots[i].popleft);
            Py_VISIT(self->slots[i].credit_up);
        }
    }
    if (self->local_slots) {
        for (long i = 0; i < self->local_nslots; i++) {
            Py_VISIT(self->local_slots[i].buf);
            Py_VISIT(self->local_slots[i].deque);
            Py_VISIT(self->local_slots[i].append);
        }
    }
    Py_VISIT(self->route_row);
    Py_VISIT(self->route_fn);
    Py_VISIT(self->congestion_fn);
    Py_VISIT(self->switch_id_obj);
    Py_VISIT(self->ejection_delay_obj);
    Py_VISIT(self->can_eject);
    Py_VISIT(self->deliver);
    Py_VISIT(self->notify_space);
    Py_VISIT(self->credit_wake_dict);
    Py_VISIT(self->endpoints);
    Py_VISIT(self->delivered_counters);
    Py_VISIT(self->reordered_counters);
    Py_VISIT(self->vnet_counter_meth);
    for (Py_ssize_t i = 0; i < self->nout; i++) {
        OutPort *out = &self->outs[i];
        Py_VISIT(out->dir);
        Py_VISIT(out->link);
        Py_VISIT(out->ser_cache);
        Py_VISIT(out->ser_method);
        Py_VISIT(out->down);
        Py_VISIT(out->fwd_label);
        if (out->dslots) {
            for (long j = 0; j < out->ndslots; j++) {
                Py_VISIT(out->dslots[j].buf);
                Py_VISIT(out->dslots[j].deque);
                Py_VISIT(out->dslots[j].append);
            }
        }
    }
    Py_VISIT(self->c_injected);
    Py_VISIT(self->c_ejected);
    Py_VISIT(self->c_forwarded);
    Py_VISIT(self->name_injected);
    Py_VISIT(self->name_ejected);
    Py_VISIT(self->name_forwarded);
    return 0;
}

static int
Core_clear_gc(CSwitchCore *self)
{
    Py_CLEAR(self->py_switch);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cqueue);
    Py_CLEAR(self->network);
    Py_CLEAR(self->stats_counter);
    Py_CLEAR(self->count_meth);
    Py_CLEAR(self->scan_event);
    if (self->slots) {
        for (Py_ssize_t i = 0; i < self->nslots; i++) {
            Py_CLEAR(self->slots[i].port);
            Py_CLEAR(self->slots[i].deque);
            Py_CLEAR(self->slots[i].popleft);
            Py_CLEAR(self->slots[i].credit_up);
        }
    }
    if (self->local_slots) {
        for (long i = 0; i < self->local_nslots; i++) {
            Py_CLEAR(self->local_slots[i].buf);
            Py_CLEAR(self->local_slots[i].deque);
            Py_CLEAR(self->local_slots[i].append);
        }
    }
    Py_CLEAR(self->route_row);
    Py_CLEAR(self->route_fn);
    Py_CLEAR(self->congestion_fn);
    Py_CLEAR(self->switch_id_obj);
    Py_CLEAR(self->ejection_delay_obj);
    Py_CLEAR(self->can_eject);
    Py_CLEAR(self->deliver);
    Py_CLEAR(self->notify_space);
    Py_CLEAR(self->credit_wake_dict);
    Py_CLEAR(self->endpoints);
    Py_CLEAR(self->delivered_counters);
    Py_CLEAR(self->reordered_counters);
    Py_CLEAR(self->vnet_counter_meth);
    for (Py_ssize_t i = 0; i < self->nout; i++) {
        OutPort *out = &self->outs[i];
        Py_CLEAR(out->dir);
        Py_CLEAR(out->link);
        Py_CLEAR(out->ser_cache);
        Py_CLEAR(out->ser_method);
        Py_CLEAR(out->down);
        Py_CLEAR(out->fwd_label);
        if (out->dslots) {
            for (long j = 0; j < out->ndslots; j++) {
                Py_CLEAR(out->dslots[j].buf);
                Py_CLEAR(out->dslots[j].deque);
                Py_CLEAR(out->dslots[j].append);
            }
        }
    }
    Py_CLEAR(self->c_injected);
    Py_CLEAR(self->c_ejected);
    Py_CLEAR(self->c_forwarded);
    Py_CLEAR(self->name_injected);
    Py_CLEAR(self->name_ejected);
    Py_CLEAR(self->name_forwarded);
    return 0;
}

static void
Core_dealloc(CSwitchCore *self)
{
    PyObject_GC_UnTrack(self);
    Core_clear_gc(self);
    PyMem_Free(self->slots);
    PyMem_Free(self->local_slots);
    for (Py_ssize_t i = 0; i < self->nout; i++)
        PyMem_Free(self->outs[i].dslots);
    PyMem_Free(self->outs);
    PyObject_GC_Del(self);
}

/* Fill a GridSlot from a FiniteBuffer (+ its mask bit). */
static int
grid_slot_init(GridSlot *slot, PyObject *buf, uint64_t bit)
{
    PyObject *deque = PyObject_GetAttr(buf, S.queue_attr);
    if (deque == NULL)
        return -1;
    PyObject *append = PyObject_GetAttr(deque, S.append);
    if (append == NULL) {
        Py_DECREF(deque);
        return -1;
    }
    long long capacity;
    if (getattr_ll(buf, S.capacity_attr, &capacity) < 0) {
        Py_DECREF(deque);
        Py_DECREF(append);
        return -1;
    }
    Py_INCREF(buf);
    slot->buf = buf;
    slot->deque = deque;
    slot->append = append;
    slot->capacity = (long)capacity;
    slot->bit = bit;
    return 0;
}

static PyObject *
Core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *sw;
    if (!PyArg_ParseTuple(args, "O", &sw))
        return NULL;
    if (kwds && PyDict_GET_SIZE(kwds)) {
        PyErr_SetString(PyExc_TypeError, "SwitchCore() takes no kwargs");
        return NULL;
    }
    if (Direction_LOCAL == NULL) {
        PyObject *topo = PyImport_ImportModule("repro.interconnect.topology");
        if (topo == NULL)
            return NULL;
        PyObject *dir_enum = PyObject_GetAttrString(topo, "Direction");
        Py_DECREF(topo);
        if (dir_enum == NULL)
            return NULL;
        Direction_LOCAL = PyObject_GetAttrString(dir_enum, "LOCAL");
        Py_DECREF(dir_enum);
        if (Direction_LOCAL == NULL)
            return NULL;
    }

    CSwitchCore *self = PyObject_GC_New(CSwitchCore, &CSwitchCore_Type);
    if (self == NULL)
        return NULL;
    memset(((char *)self) + sizeof(PyObject), 0,
           sizeof(CSwitchCore) - sizeof(PyObject));
    PyObject_GC_Track((PyObject *)self);

    Py_INCREF(sw);
    self->py_switch = sw;

    PyObject *sim = PyObject_GetAttrString(sw, "sim");
    if (sim == NULL)
        goto fail;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        Py_DECREF(sim);
        PyErr_SetString(PyExc_TypeError,
                        "SwitchCore requires a compiled Simulator");
        goto fail;
    }
    self->sim = (CSimulator *)sim;
    Py_INCREF(self->sim->queue);
    self->cqueue = self->sim->queue;

    self->network = PyObject_GetAttrString(sw, "network");
    if (self->network == NULL)
        goto fail;
    PyObject *stats = PyObject_GetAttrString(sw, "stats");
    if (stats == NULL)
        goto fail;
    self->stats_counter = PyObject_GetAttrString(stats, "counter");
    Py_DECREF(stats);
    if (self->stats_counter == NULL)
        goto fail;
    self->count_meth = PyObject_GetAttrString(sw, "count");
    if (self->count_meth == NULL)
        goto fail;

    /* scan slots: switch._scan_slots is [(port, deque, bit), ...] */
    PyObject *slots = PyObject_GetAttrString(sw, "_scan_slots");
    if (slots == NULL || !PyList_Check(slots)) {
        Py_XDECREF(slots);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "_scan_slots must be a list");
        goto fail;
    }
    self->nslots = PyList_GET_SIZE(slots);
    if (self->nslots > 64) {
        Py_DECREF(slots);
        PyErr_SetString(PyExc_ValueError,
                        "SwitchCore supports at most 64 scan slots");
        goto fail;
    }
    self->slots = PyMem_Calloc((size_t)(self->nslots ? self->nslots : 1),
                               sizeof(ScanSlot));
    if (self->slots == NULL) {
        Py_DECREF(slots);
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < self->nslots; i++) {
        PyObject *entry = PyList_GET_ITEM(slots, i);
        PyObject *port = PyTuple_GET_ITEM(entry, 0);
        PyObject *deque = PyTuple_GET_ITEM(entry, 1);
        Py_INCREF(port);
        self->slots[i].port = port;
        Py_INCREF(deque);
        self->slots[i].deque = deque;
        self->slots[i].popleft = PyObject_GetAttr(deque, S.popleft);
        if (self->slots[i].popleft == NULL) {
            Py_DECREF(slots);
            goto fail;
        }
    }
    Py_DECREF(slots);

    /* local injection geometry */
    PyObject *tmp = PyObject_GetAttrString(sw, "_local_shared");
    if (tmp == NULL)
        goto fail;
    self->local_shared = PyObject_IsTrue(tmp);
    Py_DECREF(tmp);
    if (self->local_shared < 0)
        goto fail;
    long long lv;
    tmp = PyObject_GetAttrString(sw, "_local_vns");
    if (tmp == NULL)
        goto fail;
    lv = PyLong_AsLongLong(tmp);
    Py_DECREF(tmp);
    if (lv == -1 && PyErr_Occurred())
        goto fail;
    self->local_vns = (long)lv;
    tmp = PyObject_GetAttrString(sw, "_local_vcc");
    if (tmp == NULL)
        goto fail;
    lv = PyLong_AsLongLong(tmp);
    Py_DECREF(tmp);
    if (lv == -1 && PyErr_Occurred())
        goto fail;
    self->local_vcc = (long)lv;

    /* The grid's *actual* shape: 1x1 in the shared (no-VC) design even
     * though virtual_networks keeps the configured count -- channel
     * selection short-circuits to (0, 0) there, so slot indexing with the
     * vn/vc strides only ever touches the slots that exist. */
    PyObject *local_grid = PyObject_GetAttrString(sw, "_local_slot_grid");
    if (local_grid == NULL)
        goto fail;
    Py_ssize_t lrows = PyList_GET_SIZE(local_grid);
    Py_ssize_t lcols = lrows ? PyList_GET_SIZE(PyList_GET_ITEM(local_grid, 0))
                             : 0;
    self->local_nslots = (long)(lrows * lcols);
    self->local_slots = PyMem_Calloc(
        (size_t)(self->local_nslots ? self->local_nslots : 1),
        sizeof(GridSlot));
    if (self->local_slots == NULL) {
        Py_DECREF(local_grid);
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t vn = 0; vn < lrows; vn++) {
        PyObject *row = PyList_GET_ITEM(local_grid, vn);
        for (Py_ssize_t vc = 0; vc < lcols; vc++) {
            /* row entries are (buf, deque, bit) */
            PyObject *entry = PyList_GET_ITEM(row, vc);
            PyObject *buf = PyTuple_GET_ITEM(entry, 0);
            PyObject *bit_obj = PyTuple_GET_ITEM(entry, 2);
            unsigned long long bit = PyLong_AsUnsignedLongLong(bit_obj);
            if (bit == (unsigned long long)-1 && PyErr_Occurred()) {
                Py_DECREF(local_grid);
                goto fail;
            }
            GridSlot *slot = &self->local_slots[vn * lcols + vc];
            if (grid_slot_init(slot, buf, (uint64_t)bit) < 0) {
                Py_DECREF(local_grid);
                goto fail;
            }
        }
    }
    Py_DECREF(local_grid);

    /* routing */
    tmp = PyObject_GetAttrString(sw, "_route_row");
    if (tmp == NULL)
        goto fail;
    if (tmp == Py_None)
        Py_DECREF(tmp);
    else
        self->route_row = tmp;
    self->route_fn = PyObject_GetAttrString(sw, "_route");
    if (self->route_fn == NULL)
        goto fail;
    self->congestion_fn = PyObject_GetAttrString(sw, "_congestion_for");
    if (self->congestion_fn == NULL)
        goto fail;
    self->switch_id_obj = PyObject_GetAttrString(sw, "switch_id");
    if (self->switch_id_obj == NULL)
        goto fail;
    long long ej;
    tmp = PyObject_GetAttrString(sw, "EJECTION_LATENCY");
    if (tmp == NULL)
        goto fail;
    ej = PyLong_AsLongLong(tmp);
    Py_DECREF(tmp);
    if (ej == -1 && PyErr_Occurred())
        goto fail;
    self->ejection_latency = ej;
    self->ejection_delay_obj = PyLong_FromLongLong(ej);
    if (self->ejection_delay_obj == NULL)
        goto fail;
    self->can_eject = PyObject_GetAttrString(sw, "_can_eject");
    if (self->can_eject == NULL)
        goto fail;
    self->deliver = PyObject_GetAttrString(sw, "_deliver");
    if (self->deliver == NULL)
        goto fail;
    self->notify_space = PyObject_GetAttrString(self->network,
                                                "notify_injection_space");
    if (self->notify_space == NULL)
        goto fail;
    self->credit_wake_dict = PyObject_GetAttrString(sw, "_credit_wake");
    if (self->credit_wake_dict == NULL)
        goto fail;

    /* delivery fast path */
    self->endpoints = PyObject_GetAttrString(self->network, "_endpoints");
    if (self->endpoints == NULL)
        goto fail;
    if (!PyDict_Check(self->endpoints)) {
        PyErr_SetString(PyExc_TypeError, "_endpoints must be a dict");
        goto fail;
    }
    self->delivered_counters = PyObject_GetAttrString(self->network,
                                                      "_delivered_counters");
    if (self->delivered_counters == NULL)
        goto fail;
    if (!PyList_Check(self->delivered_counters)) {
        PyErr_SetString(PyExc_TypeError, "_delivered_counters must be a list");
        goto fail;
    }
    self->reordered_counters = PyObject_GetAttrString(self->network,
                                                      "_reordered_counters");
    if (self->reordered_counters == NULL)
        goto fail;
    self->vnet_counter_meth = PyObject_GetAttrString(self->network,
                                                     "_vnet_counter");
    if (self->vnet_counter_meth == NULL)
        goto fail;
    tmp = PyObject_GetAttrString(self->network, "config");
    if (tmp == NULL)
        goto fail;
    PyObject *no_vc = PyObject_GetAttrString(tmp, "speculative_no_vc");
    Py_DECREF(tmp);
    if (no_vc == NULL)
        goto fail;
    int no_vc_truth = PyObject_IsTrue(no_vc);
    Py_DECREF(no_vc);
    if (no_vc_truth < 0)
        goto fail;
    self->always_eject = !no_vc_truth;

    /* counter names + hot labels */
    PyObject *name = PyObject_GetAttr(sw, S.name);
    if (name == NULL)
        goto fail;
    self->name_injected = PyUnicode_FromFormat("%S.injected", name);
    self->name_ejected = PyUnicode_FromFormat("%S.ejected", name);
    self->name_forwarded = PyUnicode_FromFormat("%S.forwarded", name);
    Py_DECREF(name);
    if (self->name_injected == NULL || self->name_ejected == NULL ||
        self->name_forwarded == NULL)
        goto fail;
    self->lbl_injection_blocked = PyUnicode_InternFromString(
        "injection_blocked");
    self->lbl_ejection_blocked = PyUnicode_InternFromString(
        "ejection_blocked");
    self->lbl_blocked_on_buffer = PyUnicode_InternFromString(
        "blocked_on_buffer");
    self->lbl_squashed = PyUnicode_InternFromString("squashed_in_flight");
    if (self->lbl_injection_blocked == NULL ||
        self->lbl_ejection_blocked == NULL ||
        self->lbl_blocked_on_buffer == NULL || self->lbl_squashed == NULL)
        goto fail;

    /* the static scan event, owned by this core, firing core.scan */
    PyObject *scan_cb = PyObject_GetAttrString((PyObject *)self, "scan");
    if (scan_cb == NULL)
        goto fail;
    PyObject *label = PyObject_GetAttrString(sw, "_scan_label");
    if (label == NULL) {
        Py_DECREF(scan_cb);
        goto fail;
    }
    self->scan_event = event_alloc(0, 0, 0, scan_cb, label);
    Py_DECREF(scan_cb);
    Py_DECREF(label);
    if (self->scan_event == NULL)
        goto fail;
    self->scan_event->is_static = 1;
    return (PyObject *)self;

fail:
    Py_DECREF(self);
    return NULL;
}

/* bind(): second construction phase, run once every switch has a core. */
static PyObject *
Core_bind(CSwitchCore *self, PyObject *Py_UNUSED(ignored))
{
    if (self->bound)
        Py_RETURN_NONE;
    PyObject *sw = self->py_switch;
    PyObject *out_dict = PyObject_GetAttrString(sw, "_out");
    if (out_dict == NULL)
        return NULL;
    /* count wired directions */
    Py_ssize_t nout = 0, pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(out_dict, &pos, &key, &value))
        if (value != Py_None)
            nout++;
    self->outs = PyMem_Calloc((size_t)(nout ? nout : 1), sizeof(OutPort));
    if (self->outs == NULL) {
        Py_DECREF(out_dict);
        PyErr_NoMemory();
        return NULL;
    }
    pos = 0;
    while (PyDict_Next(out_dict, &pos, &key, &value)) {
        if (value == Py_None)
            continue;
        OutPort *out = &self->outs[self->nout];
        /* (link, downstream, downstream_port, shared, vns, vcc, grid,
         *  cids, fwd_label) */
        PyObject *link = PyTuple_GET_ITEM(value, 0);
        PyObject *downstream = PyTuple_GET_ITEM(value, 1);
        PyObject *down_port = PyTuple_GET_ITEM(value, 2);
        int shared = PyObject_IsTrue(PyTuple_GET_ITEM(value, 3));
        long vns = PyLong_AsLong(PyTuple_GET_ITEM(value, 4));
        long vcc = PyLong_AsLong(PyTuple_GET_ITEM(value, 5));
        PyObject *grid = PyTuple_GET_ITEM(value, 6);
        PyObject *fwd_label = PyTuple_GET_ITEM(value, 8);
        if (shared < 0 || ((vns == -1 || vcc == -1) && PyErr_Occurred()))
            goto fail;
        Py_INCREF(key);
        out->dir = key;
        Py_INCREF(link);
        out->link = link;
        out->ser_cache = PyObject_GetAttrString(link, "_ser_cache");
        if (out->ser_cache == NULL)
            goto fail;
        out->ser_method = PyObject_GetAttrString(link,
                                                 "serialization_cycles");
        if (out->ser_method == NULL)
            goto fail;
        long long lat;
        if (getattr_ll(link, S.latency_cycles_attr, &lat) < 0)
            goto fail;
        out->latency_cycles = lat;
        PyObject *down_core = PyObject_GetAttr(downstream, S.core_attr);
        if (down_core == NULL)
            goto fail;
        if (!Py_IS_TYPE(down_core, &CSwitchCore_Type)) {
            Py_DECREF(down_core);
            PyErr_SetString(PyExc_TypeError,
                            "downstream switch has no compiled core");
            goto fail;
        }
        out->down = (CSwitchCore *)down_core;
        out->shared = shared;
        out->vns = vns;
        out->vcc = vcc;
        Py_INCREF(fwd_label);
        out->fwd_label = fwd_label;
        /* Allocate by the grid's *actual* shape (1x1 in the shared no-VC
         * design even though vns keeps the configured count; selection
         * short-circuits to (0, 0) there). */
        Py_ssize_t g_rows = PyList_GET_SIZE(grid);
        Py_ssize_t g_cols = g_rows ? PyList_GET_SIZE(PyList_GET_ITEM(grid, 0))
                                   : 0;
        out->ndslots = (long)(g_rows * g_cols);
        out->dslots = PyMem_Calloc(
            (size_t)(out->ndslots ? out->ndslots : 1), sizeof(GridSlot));
        if (out->dslots == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
        /* downstream mask bits come from its _slot_grid[port][vn][vc] */
        PyObject *down_grid = PyObject_GetAttrString(downstream,
                                                     "_slot_grid");
        if (down_grid == NULL)
            goto fail;
        PyObject *port_grid = PyObject_GetItem(down_grid, down_port);
        Py_DECREF(down_grid);
        if (port_grid == NULL)
            goto fail;
        for (Py_ssize_t vn = 0; vn < g_rows; vn++) {
            PyObject *buf_row = PyList_GET_ITEM(grid, vn);
            PyObject *slot_row = PyList_GET_ITEM(port_grid, vn);
            for (Py_ssize_t vc = 0; vc < g_cols; vc++) {
                PyObject *buf = PyList_GET_ITEM(buf_row, vc);
                PyObject *slot_entry = PyList_GET_ITEM(slot_row, vc);
                unsigned long long bit = PyLong_AsUnsignedLongLong(
                    PyTuple_GET_ITEM(slot_entry, 2));
                if (bit == (unsigned long long)-1 && PyErr_Occurred()) {
                    Py_DECREF(port_grid);
                    goto fail;
                }
                if (grid_slot_init(&out->dslots[vn * g_cols + vc], buf,
                                   (uint64_t)bit) < 0) {
                    Py_DECREF(port_grid);
                    goto fail;
                }
            }
        }
        Py_DECREF(port_grid);
        self->nout++;
    }
    Py_DECREF(out_dict);

    /* per-slot credit wake targets from _credit_wake[port] */
    for (Py_ssize_t i = 0; i < self->nslots; i++) {
        ScanSlot *slot = &self->slots[i];
        PyObject *upstream = PyObject_GetItem(self->credit_wake_dict,
                                              slot->port);
        if (upstream == NULL)
            return NULL;
        if (upstream == Py_None) {
            slot->credit_local = 1;
            Py_DECREF(upstream);
        }
        else {
            PyObject *up_core = PyObject_GetAttr(upstream, S.core_attr);
            Py_DECREF(upstream);
            if (up_core == NULL)
                return NULL;
            if (!Py_IS_TYPE(up_core, &CSwitchCore_Type)) {
                Py_DECREF(up_core);
                PyErr_SetString(PyExc_TypeError,
                                "upstream switch has no compiled core");
                return NULL;
            }
            slot->credit_up = (CSwitchCore *)up_core;
        }
    }
    self->bound = 1;
    Py_RETURN_NONE;

fail:
    Py_DECREF(out_dict);
    return NULL;
}

/* --------------------------------------------------- SwitchCore: hot path */

/* Channel selection shared by inject (local geometry) and forward
 * (downstream geometry): vn = msg.vnet (mod vns), vc = (src*31+dst) % vcc. */
static int
select_channel(PyObject *message, int shared, long vns, long vcc,
               long *vn_out, long *vc_out)
{
    if (shared) {
        *vn_out = 0;
        *vc_out = 0;
        return 0;
    }
    long long vnet, src, dst;
    if (getattr_ll(message, S.vnet, &vnet) < 0 ||
        getattr_ll(message, S.src, &src) < 0 ||
        getattr_ll(message, S.dst, &dst) < 0)
        return -1;
    long vn = (long)vnet;
    if (vn >= vns)
        vn = vn % vns;
    *vn_out = vn;
    *vc_out = (long)((src * 31 + dst) % vcc);
    return 0;
}

static PyObject *
Core_inject(CSwitchCore *self, PyObject *message)
{
    long vn, vc;
    if (select_channel(message, self->local_shared, self->local_vns,
                       self->local_vcc, &vn, &vc) < 0)
        return NULL;
    GridSlot *slot = &self->local_slots[vn * self->local_vcc + vc];
    long long reserved;
    if (getattr_ll(slot->buf, S.reserved, &reserved) < 0)
        return NULL;
    Py_ssize_t qlen = PyObject_Size(slot->deque);
    if (qlen < 0)
        return NULL;
    if ((long long)qlen + reserved >= slot->capacity) {
        if (core_count(self, self->lbl_injection_blocked) < 0)
            return NULL;
        Py_RETURN_FALSE;
    }
    PyObject *res = PyObject_CallOneArg(slot->append, message);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    if (addattr_ll(slot->buf, S.total_enqueued, 1) < 0)
        return NULL;
    long long occupancy = (long long)qlen + 1 + reserved;
    long long peak;
    if (getattr_ll(slot->buf, S.peak_occupancy, &peak) < 0)
        return NULL;
    if (occupancy > peak &&
        setattr_ll(slot->buf, S.peak_occupancy, occupancy) < 0)
        return NULL;
    self->active_mask |= slot->bit;
    PyObject *counter = core_lazy_counter(self, &self->c_injected,
                                          S.c_injected, self->name_injected);
    if (counter == NULL || counter_add(counter, 1) < 0)
        return NULL;
    if (core_wake_scan_now(self) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

static PyObject *
Core_receive_from_link(CSwitchCore *self, PyObject *const *args,
                       Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *message, *input_port, *channel, *epoch = Py_None;
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (total < 3 || total > 4 || nargs < 3) {
        PyErr_SetString(PyExc_TypeError,
                        "receive_from_link(message, input_port, channel, "
                        "epoch=None)");
        return NULL;
    }
    message = args[0];
    input_port = args[1];
    channel = args[2];
    if (nargs == 4)
        epoch = args[3];
    else if (kwnames && PyTuple_GET_SIZE(kwnames) == 1)
        epoch = args[3];
    if (epoch != Py_None) {
        long long e = PyLong_AsLongLong(epoch);
        if (e == -1 && PyErr_Occurred())
            return NULL;
        long long cur;
        if (getattr_ll(self->network, S.flush_epoch, &cur) < 0)
            return NULL;
        if (e != cur) {
            if (core_count(self, self->lbl_squashed) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
    }
    /* generic slot lookup (thunks bypass this method entirely; it exists
     * for API parity and external callers/tests) */
    PyObject *grid = PyObject_GetAttrString(self->py_switch, "_slot_grid");
    if (grid == NULL)
        return NULL;
    PyObject *port_grid = PyObject_GetItem(grid, input_port);
    Py_DECREF(grid);
    if (port_grid == NULL)
        return NULL;
    PyObject *vn_obj = PyObject_GetAttrString(channel, "virtual_network");
    PyObject *vc_obj = PyObject_GetAttrString(channel, "virtual_channel");
    if (vn_obj == NULL || vc_obj == NULL) {
        Py_XDECREF(vn_obj);
        Py_XDECREF(vc_obj);
        Py_DECREF(port_grid);
        return NULL;
    }
    long vn = PyLong_AsLong(vn_obj);
    long vc = PyLong_AsLong(vc_obj);
    Py_DECREF(vn_obj);
    Py_DECREF(vc_obj);
    if ((vn == -1 || vc == -1) && PyErr_Occurred()) {
        Py_DECREF(port_grid);
        return NULL;
    }
    PyObject *row = PyList_GET_ITEM(port_grid, vn);
    PyObject *entry = PyList_GET_ITEM(row, vc);
    PyObject *buf = PyTuple_GET_ITEM(entry, 0);
    PyObject *deque = PyTuple_GET_ITEM(entry, 1);
    unsigned long long bit = PyLong_AsUnsignedLongLong(
        PyTuple_GET_ITEM(entry, 2));
    if (bit == (unsigned long long)-1 && PyErr_Occurred()) {
        Py_DECREF(port_grid);
        return NULL;
    }
    PyObject *append = PyObject_GetAttr(deque, S.append);
    if (append == NULL) {
        Py_DECREF(port_grid);
        return NULL;
    }
    int rc = core_receive_into_slot(self, message, buf, deque, append,
                                    (uint64_t)bit, 1);
    Py_DECREF(append);
    Py_DECREF(port_grid);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Core_schedule_scan(CSwitchCore *self, PyObject *const *args,
                   Py_ssize_t nargs, PyObject *kwnames)
{
    long long delay = 0;
    if (nargs == 1) {
        delay = PyLong_AsLongLong(args[0]);
        if (delay == -1 && PyErr_Occurred())
            return NULL;
    }
    else if (kwnames && PyTuple_GET_SIZE(kwnames) == 1) {
        delay = PyLong_AsLongLong(args[nargs]);
        if (delay == -1 && PyErr_Occurred())
            return NULL;
    }
    else if (nargs != 0 || (kwnames && PyTuple_GET_SIZE(kwnames))) {
        PyErr_SetString(PyExc_TypeError, "schedule_scan(delay=0)");
        return NULL;
    }
    if (self->scan_scheduled)
        Py_RETURN_NONE;
    self->scan_scheduled = 1;
    if (core_push_scan(self, self->sim->now + delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* One forwarding pass -- the port of Switch._scan. */
static PyObject *
Core_scan(CSwitchCore *self, PyObject *Py_UNUSED(ignored))
{
    self->scan_scheduled = 0;
    if (!self->active_mask)
        Py_RETURN_NONE;
    int progressed = 0;
    int have_retry = 0;
    long long retry_at = 0;
    long long now = self->sim->now;
    int pos = 0;
    for (;;) {
        uint64_t rest = self->active_mask >> pos;
        if (!rest)
            break;
        int index = pos + __builtin_ctzll(rest);
        pos = index + 1;
        ScanSlot *slot = &self->slots[index];
        uint64_t bit = (uint64_t)1 << index;
        Py_ssize_t qlen = PyObject_Size(slot->deque);
        if (qlen < 0)
            return NULL;
        if (qlen == 0) {
            self->active_mask &= ~bit;   /* heal a stale bit */
            continue;
        }
        PyObject *message = PySequence_GetItem(slot->deque, 0);
        if (message == NULL)
            return NULL;
        /* route */
        PyObject *direction;
        if (self->route_row != NULL) {
            long long dst;
            if (getattr_ll(message, S.dst, &dst) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            direction = PyList_GET_ITEM(self->route_row, dst);  /* borrowed */
            Py_INCREF(direction);
        }
        else {
            direction = PyObject_CallFunctionObjArgs(
                self->route_fn, self->switch_id_obj, message,
                self->congestion_fn, NULL);
            if (direction == NULL) {
                Py_DECREF(message);
                return NULL;
            }
        }
        if (direction == Direction_LOCAL) {
            Py_DECREF(direction);
            /* can_eject is identically True unless the no-VC design is
             * active; skip the Python call in the common case. */
            if (!self->always_eject) {
                PyObject *ok = PyObject_CallOneArg(self->can_eject,
                                                   self->switch_id_obj);
                if (ok == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                int can = PyObject_IsTrue(ok);
                Py_DECREF(ok);
                if (can < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                if (!can) {
                    if (core_count(self, self->lbl_ejection_blocked) < 0) {
                        Py_DECREF(message);
                        return NULL;
                    }
                    long long wake = now + 16;
                    if (!have_retry || wake < retry_at) {
                        have_retry = 1;
                        retry_at = wake;
                    }
                    Py_DECREF(message);
                    continue;
                }
            }
            PyObject *res = PyObject_CallNoArgs(slot->popleft);
            if (res == NULL) {
                Py_DECREF(message);
                return NULL;
            }
            Py_DECREF(res);
            if (qlen == 1)
                self->active_mask &= ~bit;
            if (addattr_ll(self->py_switch, S.messages_ejected, 1) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            PyObject *counter = core_lazy_counter(self, &self->c_ejected,
                                                  S.c_ejected,
                                                  self->name_ejected);
            if (counter == NULL || counter_add(counter, 1) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            if (core_deliver_local(self, message) < 0) {
                Py_DECREF(message);
                return NULL;
            }
            Py_DECREF(message);
        }
        else {
            /* find the out-port for this direction (identity match; <= 4
             * wired directions, linear scan beats a dict) */
            OutPort *out = NULL;
            for (Py_ssize_t i = 0; i < self->nout; i++) {
                if (self->outs[i].dir == direction) {
                    out = &self->outs[i];
                    break;
                }
            }
            Py_DECREF(direction);
            if (out == NULL) {
                /* degenerate 1-wide geometry: local loopback */
                PyObject *res = PyObject_CallNoArgs(slot->popleft);
                if (res == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_DECREF(res);
                if (qlen == 1)
                    self->active_mask &= ~bit;
                if (core_deliver_local(self, message) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_DECREF(message);
            }
            else {
                long d_vn, d_vc;
                if (select_channel(message, out->shared, out->vns, out->vcc,
                                   &d_vn, &d_vc) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                GridSlot *dslot = &out->dslots[d_vn * out->vcc + d_vc];
                long long d_reserved;
                if (getattr_ll(dslot->buf, S.reserved, &d_reserved) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_ssize_t d_qlen = PyObject_Size(dslot->deque);
                if (d_qlen < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                if ((long long)d_qlen + d_reserved >= dslot->capacity) {
                    if (addattr_ll(self->py_switch, S.blocked_events, 1) < 0
                        || core_count(self,
                                      self->lbl_blocked_on_buffer) < 0) {
                        Py_DECREF(message);
                        return NULL;
                    }
                    Py_DECREF(message);
                    continue;
                }
                long long busy_until;
                if (getattr_ll(out->link, S.busy_until, &busy_until) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                if (now < busy_until) {
                    if (!have_retry || busy_until < retry_at) {
                        have_retry = 1;
                        retry_at = busy_until;
                    }
                    Py_DECREF(message);
                    continue;
                }
                if (setattr_ll(dslot->buf, S.reserved, d_reserved + 1) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                PyObject *res = PyObject_CallNoArgs(slot->popleft);
                if (res == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_DECREF(res);
                if (qlen == 1)
                    self->active_mask &= ~bit;
                /* inline of link.occupy() */
                PyObject *size_obj = PyObject_GetAttr(message, S.size_bytes);
                if (size_obj == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                long long ser;
                PyObject *ser_obj = PyDict_GetItemWithError(out->ser_cache,
                                                            size_obj);
                if (ser_obj != NULL)
                    ser = PyLong_AsLongLong(ser_obj);
                else {
                    if (PyErr_Occurred()) {
                        Py_DECREF(size_obj);
                        Py_DECREF(message);
                        return NULL;
                    }
                    PyObject *computed = PyObject_CallOneArg(out->ser_method,
                                                             size_obj);
                    if (computed == NULL) {
                        Py_DECREF(size_obj);
                        Py_DECREF(message);
                        return NULL;
                    }
                    ser = PyLong_AsLongLong(computed);
                    Py_DECREF(computed);
                }
                if (ser == -1 && PyErr_Occurred()) {
                    Py_DECREF(size_obj);
                    Py_DECREF(message);
                    return NULL;
                }
                long long size = PyLong_AsLongLong(size_obj);
                Py_DECREF(size_obj);
                if (size == -1 && PyErr_Occurred()) {
                    Py_DECREF(message);
                    return NULL;
                }
                long long new_busy = now + ser;
                if (setattr_ll(out->link, S.busy_until, new_busy) < 0 ||
                    addattr_ll(out->link, S.busy_cycles, ser) < 0 ||
                    addattr_ll(out->link, S.messages_carried, 1) < 0 ||
                    addattr_ll(out->link, S.bytes_carried, size) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                long long arrival = new_busy + out->latency_cycles;
                if (addattr_ll(self->py_switch, S.messages_forwarded,
                               1) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                PyObject *counter = core_lazy_counter(self,
                                                      &self->c_forwarded,
                                                      S.c_forwarded,
                                                      self->name_forwarded);
                if (counter == NULL || counter_add(counter, 1) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                /* flush epoch captured at send time, like the lambda's
                 * default argument in the pure tier */
                long long epoch;
                if (getattr_ll(self->network, S.flush_epoch, &epoch) < 0) {
                    Py_DECREF(message);
                    return NULL;
                }
                CForwardThunk *thunk = PyObject_GC_New(CForwardThunk,
                                                       &CForwardThunk_Type);
                if (thunk == NULL) {
                    Py_DECREF(message);
                    return NULL;
                }
                Py_INCREF(out->down);
                thunk->down = out->down;
                thunk->message = message;        /* steal our reference */
                Py_INCREF(dslot->buf);
                thunk->buf = dslot->buf;
                Py_INCREF(dslot->deque);
                thunk->deque = dslot->deque;
                Py_INCREF(dslot->append);
                thunk->append = dslot->append;
                thunk->bit = dslot->bit;
                thunk->epoch = epoch;
                PyObject_GC_Track((PyObject *)thunk);
                message = NULL;
                PyObject *ev = queue_push_internal(self->cqueue, arrival, 0,
                                                   (PyObject *)thunk,
                                                   out->fwd_label);
                Py_DECREF(thunk);
                if (ev == NULL)
                    return NULL;
                Py_DECREF(ev);
            }
        }
        /* a head moved: release the credit for its input port */
        progressed = 1;
        if (slot->credit_local) {
            PyObject *res = PyObject_CallOneArg(self->notify_space,
                                                self->switch_id_obj);
            if (res == NULL)
                return NULL;
            Py_DECREF(res);
        }
        else if (slot->credit_up != NULL &&
                 !slot->credit_up->scan_scheduled) {
            slot->credit_up->scan_scheduled = 1;
            if (core_push_scan(slot->credit_up, now + 1) < 0)
                return NULL;
        }
    }
    if (progressed) {
        if (!self->scan_scheduled) {
            self->scan_scheduled = 1;
            if (core_push_scan(self, now + 1) < 0)
                return NULL;
        }
    }
    else if (have_retry && retry_at > now) {
        if (!self->scan_scheduled) {
            self->scan_scheduled = 1;
            if (core_push_scan(self, now + (retry_at - now)) < 0)
                return NULL;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Core_clear_mask(CSwitchCore *self, PyObject *Py_UNUSED(ignored))
{
    self->active_mask = 0;
    Py_RETURN_NONE;
}

static PyObject *
Core_get_active_mask(CSwitchCore *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->active_mask);
}

static PyObject *
Core_get_scan_scheduled(CSwitchCore *self, void *closure)
{
    return PyBool_FromLong(self->scan_scheduled);
}

static PyObject *
Core_get_scan_event(CSwitchCore *self, void *closure)
{
    Py_INCREF(self->scan_event);
    return (PyObject *)self->scan_event;
}

static PyGetSetDef Core_getset[] = {
    {"active_mask", (getter)Core_get_active_mask, NULL, NULL, NULL},
    {"scan_scheduled", (getter)Core_get_scan_scheduled, NULL, NULL, NULL},
    {"scan_event", (getter)Core_get_scan_event, NULL, NULL, NULL},
    {NULL}
};

static PyMethodDef Core_methods[] = {
    {"bind", (PyCFunction)Core_bind, METH_NOARGS,
     "Resolve cross-switch references (run once all cores exist)."},
    {"inject", (PyCFunction)Core_inject, METH_O,
     "Inject a message from the local endpoint; False when full."},
    {"receive_from_link",
     (PyCFunction)(void (*)(void))Core_receive_from_link,
     METH_FASTCALL | METH_KEYWORDS,
     "A message arrives from an upstream switch into a reserved slot."},
    {"schedule_scan", (PyCFunction)(void (*)(void))Core_schedule_scan,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule a forwarding scan if one is not already pending."},
    {"scan", (PyCFunction)Core_scan, METH_NOARGS,
     "One forwarding pass: try to move every occupied head-of-line."},
    {"clear_mask", (PyCFunction)Core_clear_mask, METH_NOARGS,
     "Reset the occupancy mask (switch drain during system recovery)."},
    {NULL}
};

static PyTypeObject CSwitchCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.SwitchCore",
    .tp_basicsize = sizeof(CSwitchCore),
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled hot path of one interconnect switch.",
    .tp_traverse = (traverseproc)Core_traverse,
    .tp_clear = (inquiry)Core_clear_gc,
    .tp_methods = Core_methods,
    .tp_getset = Core_getset,
    .tp_new = Core_new,
};

/* --------------------------------------------------------- undo-log path */

/* C twin of repro.safetynet.log.UndoRecord: same attribute surface, same
 * equality semantics (field-wise, same-type only), allocated directly by
 * the compiled observer below.  Recovery and occupancy accounting only read
 * the six attributes, so pure and compiled records are interchangeable. */
typedef struct {
    PyObject_HEAD
    long long checkpoint_seq;
    PyObject *target_id;
    PyObject *address;
    PyObject *field;
    PyObject *old_value;
    long long logged_at;
} CUndoRecord;

static PyTypeObject CUndoRecord_Type;

static int
Undo_traverse(CUndoRecord *self, visitproc visit, void *arg)
{
    Py_VISIT(self->target_id);
    Py_VISIT(self->address);
    Py_VISIT(self->field);
    Py_VISIT(self->old_value);
    return 0;
}

static int
Undo_clear_gc(CUndoRecord *self)
{
    Py_CLEAR(self->target_id);
    Py_CLEAR(self->address);
    Py_CLEAR(self->field);
    Py_CLEAR(self->old_value);
    return 0;
}

static void
Undo_dealloc(CUndoRecord *self)
{
    PyObject_GC_UnTrack(self);
    Undo_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
Undo_richcompare(PyObject *a, PyObject *b, int op)
{
    if ((op != Py_EQ && op != Py_NE) ||
        !Py_IS_TYPE(a, &CUndoRecord_Type) ||
        !Py_IS_TYPE(b, &CUndoRecord_Type))
        Py_RETURN_NOTIMPLEMENTED;
    CUndoRecord *x = (CUndoRecord *)a, *y = (CUndoRecord *)b;
    int eq = x->checkpoint_seq == y->checkpoint_seq &&
        x->logged_at == y->logged_at;
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->target_id, y->target_id, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->address, y->address, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->field, y->field, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (eq) {
        int cmp = PyObject_RichCompareBool(x->old_value, y->old_value, Py_EQ);
        if (cmp < 0)
            return NULL;
        eq = cmp;
    }
    if (op == Py_NE)
        eq = !eq;
    return PyBool_FromLong(eq);
}

static PyObject *
Undo_repr(CUndoRecord *self)
{
    return PyUnicode_FromFormat(
        "UndoRecord(seq=%lld, target=%R, addr=%S, field=%R, old=%R)",
        self->checkpoint_seq, self->target_id, self->address, self->field,
        self->old_value);
}

static PyObject *
Undo_get_seq(CUndoRecord *self, void *c)
{
    return PyLong_FromLongLong(self->checkpoint_seq);
}

static PyObject *
Undo_get_logged_at(CUndoRecord *self, void *c)
{
    return PyLong_FromLongLong(self->logged_at);
}

static PyObject *
Undo_get_member(CUndoRecord *self, void *closure)
{
    PyObject *v = *(PyObject **)((char *)self + (Py_ssize_t)closure);
    Py_INCREF(v);
    return v;
}

static PyGetSetDef Undo_getset[] = {
    {"checkpoint_seq", (getter)Undo_get_seq, NULL, NULL, NULL},
    {"logged_at", (getter)Undo_get_logged_at, NULL, NULL, NULL},
    {"target_id", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, target_id)},
    {"address", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, address)},
    {"field", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, field)},
    {"old_value", (getter)Undo_get_member, NULL, NULL,
     (void *)offsetof(CUndoRecord, old_value)},
    {NULL}
};

static PyTypeObject CUndoRecord_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.UndoRecord",
    .tp_basicsize = sizeof(CUndoRecord),
    .tp_dealloc = (destructor)Undo_dealloc,
    .tp_repr = (reprfunc)Undo_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "One logged state change (compiled tier).",
    .tp_traverse = (traverseproc)Undo_traverse,
    .tp_clear = (inquiry)Undo_clear_gc,
    .tp_richcompare = Undo_richcompare,
    .tp_getset = Undo_getset,
};

/* The change observer returned by SafetyNet.register_store on the compiled
 * tier: one observer per logged store, fired for every logged state change.
 * Builds the undo record and performs CheckpointLogBuffer.append inline
 * against the same Python-visible buffer state (tail cache, occupancy
 * counters), so commit_through / discard_since / records_since work
 * unchanged on the pure buffer object. */
typedef struct {
    PyObject_HEAD
    PyObject *log;              /* CheckpointLogBuffer */
    PyObject *records;          /* log._records dict (never reassigned) */
    PyObject *checkpoints;      /* SafetyNet._checkpoints list */
    PyObject *target_id;
    CSimulator *sim;
    long long capacity_entries;
} CLogObserver;

static PyTypeObject CLogObserver_Type;

static struct {
    PyObject *seq, *tail_seq, *tail, *total_logged, *occupancy,
        *peak_occupancy, *overflow_stalls;
} LS;

static int
LogObs_traverse(CLogObserver *self, visitproc visit, void *arg)
{
    Py_VISIT(self->log);
    Py_VISIT(self->records);
    Py_VISIT(self->checkpoints);
    Py_VISIT(self->target_id);
    Py_VISIT(self->sim);
    return 0;
}

static int
LogObs_clear_gc(CLogObserver *self)
{
    Py_CLEAR(self->log);
    Py_CLEAR(self->records);
    Py_CLEAR(self->checkpoints);
    Py_CLEAR(self->target_id);
    Py_CLEAR(self->sim);
    return 0;
}

static void
LogObs_dealloc(CLogObserver *self)
{
    PyObject_GC_UnTrack(self);
    LogObs_clear_gc(self);
    PyObject_GC_Del(self);
}

static PyObject *
LogObs_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *log, *checkpoints, *target_id, *sim;
    if (!PyArg_ParseTuple(args, "OOOO", &log, &checkpoints, &target_id, &sim))
        return NULL;
    if (!Py_IS_TYPE(sim, &CSimulator_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "LogObserver requires a compiled Simulator");
        return NULL;
    }
    if (!PyList_Check(checkpoints)) {
        PyErr_SetString(PyExc_TypeError, "checkpoints must be a list");
        return NULL;
    }
    PyObject *records = PyObject_GetAttrString(log, "_records");
    if (records == NULL)
        return NULL;
    if (!PyDict_Check(records)) {
        Py_DECREF(records);
        PyErr_SetString(PyExc_TypeError, "log._records must be a dict");
        return NULL;
    }
    long long capacity;
    PyObject *cap_obj = PyObject_GetAttrString(log, "capacity_entries");
    if (cap_obj == NULL) {
        Py_DECREF(records);
        return NULL;
    }
    capacity = PyLong_AsLongLong(cap_obj);
    Py_DECREF(cap_obj);
    if (capacity == -1 && PyErr_Occurred()) {
        Py_DECREF(records);
        return NULL;
    }
    CLogObserver *self = PyObject_GC_New(CLogObserver, &CLogObserver_Type);
    if (self == NULL) {
        Py_DECREF(records);
        return NULL;
    }
    Py_INCREF(log);
    self->log = log;
    self->records = records;
    Py_INCREF(checkpoints);
    self->checkpoints = checkpoints;
    Py_INCREF(target_id);
    self->target_id = target_id;
    Py_INCREF(sim);
    self->sim = (CSimulator *)sim;
    self->capacity_entries = capacity;
    PyObject_GC_Track((PyObject *)self);
    return (PyObject *)self;
}

static PyObject *
LogObs_call(CLogObserver *self, PyObject *args, PyObject *kwds)
{
    PyObject *address, *field, *old_value, *new_value;
    if (!PyArg_UnpackTuple(args, "observer", 4, 4, &address, &field,
                           &old_value, &new_value))
        return NULL;
    (void)new_value;
    Py_ssize_t ncp = PyList_GET_SIZE(self->checkpoints);
    if (ncp == 0) {
        PyErr_SetString(PyExc_IndexError, "no checkpoints");
        return NULL;
    }
    PyObject *cp = PyList_GET_ITEM(self->checkpoints, ncp - 1);
    PyObject *seq_obj = PyObject_GetAttr(cp, LS.seq);
    if (seq_obj == NULL)
        return NULL;
    long long seq = PyLong_AsLongLong(seq_obj);
    if (seq == -1 && PyErr_Occurred()) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    CUndoRecord *rec = PyObject_GC_New(CUndoRecord, &CUndoRecord_Type);
    if (rec == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    rec->checkpoint_seq = seq;
    Py_INCREF(self->target_id);
    rec->target_id = self->target_id;
    Py_INCREF(address);
    rec->address = address;
    Py_INCREF(field);
    rec->field = field;
    Py_INCREF(old_value);
    rec->old_value = old_value;
    rec->logged_at = self->sim->now;
    PyObject_GC_Track((PyObject *)rec);

    /* Inline of CheckpointLogBuffer.append. */
    PyObject *log = self->log;
    PyObject *tail;
    PyObject *tail_seq_obj = PyObject_GetAttr(log, LS.tail_seq);
    if (tail_seq_obj == NULL)
        goto fail;
    int tail_hit = 0;
    if (PyLong_Check(tail_seq_obj)) {
        long long tail_seq = PyLong_AsLongLong(tail_seq_obj);
        if (tail_seq == -1 && PyErr_Occurred()) {
            Py_DECREF(tail_seq_obj);
            goto fail;
        }
        tail_hit = (tail_seq == seq);
    }
    Py_DECREF(tail_seq_obj);
    if (tail_hit) {
        tail = PyObject_GetAttr(log, LS.tail);
        if (tail == NULL)
            goto fail;
    }
    else {
        tail = PyDict_GetItemWithError(self->records, seq_obj);
        if (tail != NULL)
            Py_INCREF(tail);
        else {
            if (PyErr_Occurred())
                goto fail;
            tail = PyList_New(0);
            if (tail == NULL)
                goto fail;
            if (PyDict_SetItem(self->records, seq_obj, tail) < 0) {
                Py_DECREF(tail);
                goto fail;
            }
        }
        if (PyObject_SetAttr(log, LS.tail_seq, seq_obj) < 0 ||
            PyObject_SetAttr(log, LS.tail, tail) < 0) {
            Py_DECREF(tail);
            goto fail;
        }
    }
    Py_DECREF(seq_obj);
    seq_obj = NULL;
    {
        int rc = PyList_Append(tail, (PyObject *)rec);
        Py_DECREF(tail);
        Py_DECREF(rec);
        rec = NULL;
        if (rc < 0)
            return NULL;
    }
    if (addattr_ll(log, LS.total_logged, 1) < 0)
        return NULL;
    long long occupancy;
    if (getattr_ll(log, LS.occupancy, &occupancy) < 0)
        return NULL;
    occupancy += 1;
    if (setattr_ll(log, LS.occupancy, occupancy) < 0)
        return NULL;
    long long peak;
    if (getattr_ll(log, LS.peak_occupancy, &peak) < 0)
        return NULL;
    if (occupancy > peak &&
        setattr_ll(log, LS.peak_occupancy, occupancy) < 0)
        return NULL;
    if (occupancy > self->capacity_entries &&
        addattr_ll(log, LS.overflow_stalls, 1) < 0)
        return NULL;
    Py_RETURN_NONE;

fail:
    Py_XDECREF(seq_obj);
    Py_XDECREF(rec);
    return NULL;
}

static PyTypeObject CLogObserver_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.LogObserver",
    .tp_basicsize = sizeof(CLogObserver),
    .tp_dealloc = (destructor)LogObs_dealloc,
    .tp_call = (ternaryfunc)LogObs_call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled change observer: UndoRecord construction + log "
              "append in one call.",
    .tp_traverse = (traverseproc)LogObs_traverse,
    .tp_clear = (inquiry)LogObs_clear_gc,
    .tp_new = LogObs_new,
};

/* ------------------------------------------------------------ module def */

static PyMethodDef module_methods[] = {
    {NULL}
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._ckernel",
    .m_doc = "Compiled kernel tier (byte-identical to the pure-Python "
             "kernel; see repro.kernel for selection).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *engine = PyImport_ImportModule("repro.sim.engine");
    if (engine == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(engine, "SimulationError");
    Py_DECREF(engine);
    if (SimulationError == NULL)
        return NULL;
    empty_string = PyUnicode_InternFromString("");
    if (empty_string == NULL)
        return NULL;

    if (PyType_Ready(&CEvent_Type) < 0 ||
        PyType_Ready(&CEventQueue_Type) < 0 ||
        PyType_Ready(&CDrainIter_Type) < 0 ||
        PyType_Ready(&CSimulator_Type) < 0 ||
        PyType_Ready(&CSwitchCore_Type) < 0 ||
        PyType_Ready(&CForwardThunk_Type) < 0 ||
        PyType_Ready(&CDeliverThunk_Type) < 0 ||
        PyType_Ready(&CUndoRecord_Type) < 0 ||
        PyType_Ready(&CLogObserver_Type) < 0)
        return NULL;

    /* Interned attribute names for the switch-core hot paths. */
#define INTERN(field, text)                                             \
    do {                                                                \
        S.field = PyUnicode_InternFromString(text);                     \
        if (S.field == NULL)                                            \
            return NULL;                                                \
    } while (0)
    INTERN(reserved, "_reserved");
    INTERN(total_enqueued, "total_enqueued");
    INTERN(peak_occupancy, "peak_occupancy");
    INTERN(name, "name");
    INTERN(busy_until, "busy_until");
    INTERN(busy_cycles, "busy_cycles");
    INTERN(messages_carried, "messages_carried");
    INTERN(bytes_carried, "bytes_carried");
    INTERN(hops, "hops");
    INTERN(dst, "dst");
    INTERN(src, "src");
    INTERN(vnet, "vnet");
    INTERN(size_bytes, "size_bytes");
    INTERN(value, "value");
    INTERN(flush_epoch, "flush_epoch");
    INTERN(messages_forwarded, "messages_forwarded");
    INTERN(messages_ejected, "messages_ejected");
    INTERN(blocked_events, "blocked_events");
    INTERN(c_injected, "_c_injected");
    INTERN(c_ejected, "_c_ejected");
    INTERN(c_forwarded, "_c_forwarded");
    INTERN(queue_attr, "_queue");
    INTERN(popleft, "popleft");
    INTERN(append, "append");
    INTERN(core_attr, "_core");
    INTERN(capacity_attr, "capacity");
    INTERN(latency_cycles_attr, "latency_cycles");
    INTERN(delivered_at, "delivered_at");
    INTERN(injected_at, "injected_at");
    INTERN(messages_delivered, "messages_delivered");
    INTERN(total_message_latency, "total_message_latency");
    INTERN(delivered, "delivered");
    INTERN(receive, "receive");
    INTERN(ordering, "ordering");
    INTERN(note_delivery, "note_delivery");
    INTERN(deliver_label, "deliver");
    INTERN(squashed_net, "network.squashed_in_flight");
    INTERN(delivered_name, "delivered");
    INTERN(reordered_name, "reordered");
#undef INTERN
#define INTERN(field, text)                                             \
    do {                                                                \
        LS.field = PyUnicode_InternFromString(text);                    \
        if (LS.field == NULL)                                           \
            return NULL;                                                \
    } while (0)
    INTERN(seq, "seq");
    INTERN(tail_seq, "_tail_seq");
    INTERN(tail, "_tail");
    INTERN(total_logged, "total_logged");
    INTERN(occupancy, "_occupancy");
    INTERN(peak_occupancy, "peak_occupancy");
    INTERN(overflow_stalls, "overflow_stalls");
#undef INTERN
    delay_kwnames = Py_BuildValue("(s)", "delay");
    if (delay_kwnames == NULL)
        return NULL;

    /* Class constants mirrored from the pure tier (read by callers and
     * tests; the C code itself uses the compile-time macros). */
    if (PyDict_SetItemString(CEventQueue_Type.tp_dict, "COMPACT_MIN_ENTRIES",
                             PyLong_FromLong(COMPACT_MIN_ENTRIES)) < 0 ||
        PyDict_SetItemString(CEventQueue_Type.tp_dict, "FREELIST_MAX",
                             PyLong_FromLong(FREELIST_MAX)) < 0)
        return NULL;

    PyObject *mod = PyModule_Create(&ckernel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "Event", (PyObject *)&CEvent_Type) < 0 ||
        PyModule_AddObjectRef(mod, "EventQueue",
                              (PyObject *)&CEventQueue_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Simulator",
                              (PyObject *)&CSimulator_Type) < 0 ||
        PyModule_AddObjectRef(mod, "SwitchCore",
                              (PyObject *)&CSwitchCore_Type) < 0 ||
        PyModule_AddObjectRef(mod, "UndoRecord",
                              (PyObject *)&CUndoRecord_Type) < 0 ||
        PyModule_AddObjectRef(mod, "LogObserver",
                              (PyObject *)&CLogObserver_Type) < 0 ||
        PyModule_AddStringConstant(mod, "COMPILER", CKERNEL_COMPILER) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
